"""Tests for repro.naming (names, hash space, consistent hashing)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.naming.consistent_hash import ConsistentHashRing
from repro.naming.hashspace import (
    HASH_BITS,
    HASH_SPACE,
    circular_distance,
    clockwise_distance,
    common_prefix_length,
    hash_prefix,
    in_clockwise_interval,
)
from repro.naming.names import FlatName, name_for_node

positions = st.integers(min_value=0, max_value=HASH_SPACE - 1)


class TestHashSpace:
    def test_clockwise_distance_basic(self):
        assert clockwise_distance(10, 15) == 5
        assert clockwise_distance(15, 10) == HASH_SPACE - 5
        assert clockwise_distance(7, 7) == 0

    def test_circular_distance_symmetric(self):
        assert circular_distance(10, 15) == 5
        assert circular_distance(15, 10) == 5

    def test_circular_distance_wraps(self):
        assert circular_distance(0, HASH_SPACE - 1) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            clockwise_distance(-1, 0)
        with pytest.raises(ValueError):
            clockwise_distance(0, HASH_SPACE)

    def test_in_clockwise_interval(self):
        assert in_clockwise_interval(5, 1, 10)
        assert not in_clockwise_interval(1, 1, 10)  # start excluded
        assert in_clockwise_interval(10, 1, 10)  # end included by default
        assert not in_clockwise_interval(10, 1, 10, inclusive_end=False)

    def test_in_clockwise_interval_wraps(self):
        assert in_clockwise_interval(2, HASH_SPACE - 5, 10)
        assert not in_clockwise_interval(HASH_SPACE - 10, HASH_SPACE - 5, 10)

    def test_empty_interval(self):
        assert in_clockwise_interval(7, 7, 7)
        assert not in_clockwise_interval(8, 7, 7)

    def test_common_prefix_length(self):
        assert common_prefix_length(0, 0) == HASH_BITS
        assert common_prefix_length(0, 1 << (HASH_BITS - 1)) == 0
        assert common_prefix_length(0b1100 << 60, 0b1101 << 60) == 3

    def test_common_prefix_length_limited_bits(self):
        assert common_prefix_length(0, 1, bits=8) == 8

    def test_common_prefix_invalid_bits(self):
        with pytest.raises(ValueError):
            common_prefix_length(0, 0, bits=0)

    def test_hash_prefix(self):
        value = 0b1011 << (HASH_BITS - 4)
        assert hash_prefix(value, 4) == 0b1011
        assert hash_prefix(value, 0) == 0
        assert hash_prefix(value, 2) == 0b10

    def test_hash_prefix_invalid(self):
        with pytest.raises(ValueError):
            hash_prefix(0, HASH_BITS + 1)

    @given(positions, positions)
    def test_circular_distance_bounds(self, a, b):
        dist = circular_distance(a, b)
        assert 0 <= dist <= HASH_SPACE // 2
        assert dist == circular_distance(b, a)

    @given(positions, positions)
    def test_clockwise_distances_sum_to_ring(self, a, b):
        if a == b:
            return
        assert clockwise_distance(a, b) + clockwise_distance(b, a) == HASH_SPACE

    @given(positions, positions)
    def test_prefix_relation_to_common_prefix(self, a, b):
        shared = common_prefix_length(a, b)
        if shared > 0:
            assert hash_prefix(a, shared) == hash_prefix(b, shared)
        if shared < HASH_BITS:
            assert hash_prefix(a, shared + 1) != hash_prefix(b, shared + 1)


class TestFlatName:
    def test_from_string(self):
        name = FlatName("host-17")
        assert name.label == "host-17"
        assert name.raw == b"host-17"
        assert 0 <= name.hash_value < HASH_SPACE

    def test_from_bytes(self):
        name = FlatName(b"\x01\x02")
        assert name.label == "0102"

    def test_equality_and_hash(self):
        assert FlatName("a") == FlatName("a")
        assert FlatName("a") != FlatName("b")
        assert hash(FlatName("a")) == hash(FlatName("a"))
        assert len({FlatName("a"), FlatName("a"), FlatName("b")}) == 2

    def test_ordering_by_hash_value(self):
        a, b = FlatName("a"), FlatName("b")
        assert (a < b) == (a.hash_value < b.hash_value)

    def test_deterministic_hash(self):
        assert FlatName("alpha").hash_value == FlatName("alpha").hash_value

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FlatName("")
        with pytest.raises(ValueError):
            FlatName(b"")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            FlatName(123)  # type: ignore[arg-type]

    def test_repr_and_str(self):
        name = FlatName("web-server")
        assert "web-server" in repr(name)
        assert str(name) == "web-server"

    def test_name_for_node(self):
        assert name_for_node(5).label == "node-5"
        assert name_for_node(5, prefix="as").label == "as-5"
        with pytest.raises(ValueError):
            name_for_node(-1)

    @given(st.text(min_size=1, max_size=40))
    def test_hash_uniform_range(self, label):
        assert 0 <= FlatName(label).hash_value < HASH_SPACE


class TestConsistentHashRing:
    def test_requires_servers_for_lookup(self):
        ring = ConsistentHashRing()
        with pytest.raises(LookupError):
            ring.owner(5)

    def test_single_server_owns_everything(self):
        ring = ConsistentHashRing(["only"])
        assert ring.owner(0) == "only"
        assert ring.owner(HASH_SPACE - 1) == "only"

    def test_add_remove(self):
        ring = ConsistentHashRing([1, 2, 3])
        assert len(ring) == 3
        ring.remove_server(2)
        assert len(ring) == 2
        assert 2 not in ring
        with pytest.raises(KeyError):
            ring.remove_server(2)

    def test_add_duplicate_noop(self):
        ring = ConsistentHashRing([1])
        ring.add_server(1)
        assert len(ring) == 1

    def test_owner_deterministic(self):
        ring_a = ConsistentHashRing(range(10))
        ring_b = ConsistentHashRing(range(10))
        for key in range(0, HASH_SPACE, HASH_SPACE // 17):
            assert ring_a.owner(key) == ring_b.owner(key)

    def test_monotone_consistency_on_removal(self):
        """Removing a server only moves keys that it owned (consistency)."""
        ring = ConsistentHashRing(range(8), virtual_nodes=4)
        keys = [FlatName(f"k{i}").hash_value for i in range(200)]
        before = {key: ring.owner(key) for key in keys}
        ring.remove_server(3)
        after = {key: ring.owner(key) for key in keys}
        for key in keys:
            if before[key] != 3:
                assert after[key] == before[key]
            else:
                assert after[key] != 3

    def test_virtual_nodes_balance_load(self):
        keys = [FlatName(f"key-{i}").hash_value for i in range(3000)]
        flat = ConsistentHashRing(range(10), virtual_nodes=1)
        smooth = ConsistentHashRing(range(10), virtual_nodes=50)

        def imbalance(ring):
            loads = ring.load_distribution(keys)
            mean = sum(loads.values()) / len(loads)
            return max(loads.values()) / mean

        assert imbalance(smooth) <= imbalance(flat)

    def test_owners_replication(self):
        ring = ConsistentHashRing(range(5))
        owners = ring.owners(12345, 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3

    def test_owners_capped_at_server_count(self):
        ring = ConsistentHashRing([1, 2])
        assert len(ring.owners(7, 10)) == 2

    def test_owners_invalid_count(self):
        ring = ConsistentHashRing([1])
        with pytest.raises(ValueError):
            ring.owners(0, 0)

    def test_closest_key_owner(self):
        ring = ConsistentHashRing([1])
        assert ring.closest_key_owner(10, [15, 40, 9]) == 15

    def test_closest_key_owner_empty(self):
        ring = ConsistentHashRing([1])
        with pytest.raises(ValueError):
            ring.closest_key_owner(10, [])

    def test_load_distribution_includes_all_servers(self):
        ring = ConsistentHashRing(range(4))
        loads = ring.load_distribution([1, 2, 3])
        assert set(loads) == set(range(4))
        assert sum(loads.values()) == 3

    def test_invalid_virtual_nodes(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([1], virtual_nodes=0)
