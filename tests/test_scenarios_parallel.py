"""Determinism under sharding: parallel output is byte-identical to serial.

This is the differential test backing ``repro run --workers N``: for a fast
scenario subset, a 2-worker process-pool run (scenarios *and* shards fanned
out, artifact cache shared on disk) must produce byte-identical JSON
documents and text reports to a serial run.  Also covers the shared-memory
CSR publication used by the intra-scenario fan-out.
"""

from __future__ import annotations

import json

from repro.experiments.config import ExperimentScale
from repro.graphs.csr import CSRGraph, SharedCSR
from repro.graphs.generators import geometric_random_graph, gnm_random_graph
from repro.scenarios.engine import run_scenarios

TINY = ExperimentScale(
    comparison_nodes=64,
    large_nodes=64,
    as_level_nodes=64,
    router_level_nodes=72,
    pair_sample=40,
    messaging_sweep=(20, 24),
    scaling_sweep=(40, 48),
    seed=17,
    label="tiny-parallel",
)

# A fast subset that exercises both shard shapes (topology panels and a
# scale-dependent sweep) plus an unsharded scenario.
SUBSET = ["fig02-state-cdf", "fig09-scaling", "addr-sizes"]


class TestDeterminismUnderSharding:
    def test_workers_produce_byte_identical_json_and_reports(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_scenarios(
            SUBSET, scale=TINY, workers=1, json_dir=serial_dir, cache=None
        )
        parallel = run_scenarios(
            SUBSET,
            scale=TINY,
            workers=2,
            json_dir=parallel_dir,
            cache=tmp_path / "cache",
        )
        for scenario_id in SUBSET:
            assert parallel[scenario_id].report == serial[scenario_id].report
            serial_bytes = (serial_dir / f"{scenario_id}.json").read_bytes()
            parallel_bytes = (
                parallel_dir / f"{scenario_id}.json"
            ).read_bytes()
            assert parallel_bytes == serial_bytes

    def test_protocol_shards_are_byte_identical(self, tmp_path):
        """Figs. 4/5 (per-protocol) and ablations (per-study) shards must
        reproduce the serial output byte for byte."""
        subset = [
            "fig04-gnm-comparison",
            "fig05-geometric-comparison",
            "ablations",
        ]
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_scenarios(
            subset, scale=TINY, workers=1, json_dir=serial_dir, cache=None
        )
        parallel = run_scenarios(
            subset,
            scale=TINY,
            workers=2,
            json_dir=parallel_dir,
            cache=tmp_path / "cache",
        )
        for scenario_id in subset:
            assert parallel[scenario_id].report == serial[scenario_id].report
            assert (parallel_dir / f"{scenario_id}.json").read_bytes() == (
                serial_dir / f"{scenario_id}.json"
            ).read_bytes()

    def test_manifest_records_run_bookkeeping(self, tmp_path):
        run_scenarios(
            ["addr-sizes"],
            scale=TINY,
            workers=2,
            json_dir=tmp_path,
            cache=None,
        )
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["workers"] == 2
        assert manifest["scale_label"] == "tiny-parallel"
        assert "addr-sizes" in manifest["scenarios"]
        # Cache off: the per-scenario counts are explicitly null.
        assert manifest["scenarios"]["addr-sizes"]["cache"] is None

    def test_manifest_records_per_scenario_cache_counts(self, tmp_path):
        run_scenarios(
            ["addr-sizes", "fig07-state-bytes"],
            scale=TINY,
            workers=1,
            json_dir=tmp_path / "json",
            cache=tmp_path / "cache",
        )
        manifest = json.loads(
            (tmp_path / "json" / "manifest.json").read_text()
        )
        per_scenario = manifest["scenarios"]
        totals = [0, 0]
        for entry in per_scenario.values():
            assert entry["cache"]["hits"] >= 0
            assert entry["cache"]["misses"] >= 0
            totals[0] += entry["cache"]["hits"]
            totals[1] += entry["cache"]["misses"]
        # Per-scenario counts must sum to the run totals, and fig07 must
        # have hit the router-level substrate addr-sizes already built.
        assert totals == [manifest["cache"]["hits"], manifest["cache"]["misses"]]
        assert manifest["cache"]["hits"] >= 1

    def test_warm_disk_cache_keeps_output_identical(self, tmp_path):
        cache_root = tmp_path / "cache"
        cold = run_scenarios(
            ["fig02-state-cdf"], scale=TINY, workers=2, cache=cache_root
        )
        warm = run_scenarios(
            ["fig02-state-cdf"], scale=TINY, workers=2, cache=cache_root
        )
        assert (
            warm["fig02-state-cdf"].report == cold["fig02-state-cdf"].report
        )


class TestSharedMemorySnapshots:
    def test_from_shared_is_bit_identical(self):
        for topology in (
            gnm_random_graph(150, seed=3, average_degree=6.0),
            geometric_random_graph(150, seed=4, average_degree=6.0),
        ):
            csr = topology.csr()
            with SharedCSR(csr) as shared:
                view = CSRGraph.from_shared(shared.handle)
                assert view.kernel == csr.kernel
                assert view.num_edges == csr.num_edges
                for source in (0, 75, 149):
                    assert view.dijkstra(source) == csr.dijkstra(source)
                assert view.dijkstra_k_nearest(
                    5, 20
                ) == csr.dijkstra_k_nearest(5, 20)
                assert view.dijkstra_radius(5, 2.5) == csr.dijkstra_radius(
                    5, 2.5
                )

    def test_forced_kernel_propagates_through_handle(self):
        topology = gnm_random_graph(150, seed=3, average_degree=6.0)
        csr = CSRGraph.from_topology(topology, kernel="heap")
        with SharedCSR(csr, kernel="heap") as shared:
            view = CSRGraph.from_shared(shared.handle)
            assert view.kernel == "heap"
            assert view.dijkstra(0) == csr.dijkstra(0)

    def test_publisher_close_is_idempotent(self):
        topology = gnm_random_graph(64, seed=3, average_degree=6.0)
        shared = SharedCSR(topology.csr())
        shared.close()
        shared.close()


class TestChurnScenarioSharding:
    """The churn engine lifted churn-cost's serial-by-design pin: its trial
    and event-segment shards (state handoff at segment boundaries) must be
    byte-identical to the serial run for any worker count, alongside the
    fig08 convergence sweep it extends."""

    SUBSET = ["churn-cost", "fig08-messaging"]

    def test_churn_shards_byte_identical_with_cache_parity(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_scenarios(
            self.SUBSET,
            scale=TINY,
            workers=1,
            json_dir=serial_dir,
            cache=tmp_path / "cache-serial",
        )
        parallel = run_scenarios(
            self.SUBSET,
            scale=TINY,
            workers=2,
            json_dir=parallel_dir,
            cache=tmp_path / "cache-parallel",
        )
        for scenario_id in self.SUBSET:
            assert parallel[scenario_id].report == serial[scenario_id].report
            assert (parallel_dir / f"{scenario_id}.json").read_bytes() == (
                serial_dir / f"{scenario_id}.json"
            ).read_bytes()
        # Manifest bookkeeping: the fan-out makes the same artifact
        # requests per scenario (hit/miss totals match; the cold split is
        # schedule-dependent when two workers race the same prerequisite),
        # and against a warm cache the counts are fully deterministic and
        # identical between serial and parallel runs.
        serial_manifest = json.loads(
            (serial_dir / "manifest.json").read_text()
        )
        parallel_manifest = json.loads(
            (parallel_dir / "manifest.json").read_text()
        )
        for scenario_id in self.SUBSET:
            serial_cache = serial_manifest["scenarios"][scenario_id]["cache"]
            parallel_cache = parallel_manifest["scenarios"][scenario_id][
                "cache"
            ]
            assert sum(parallel_cache.values()) == sum(serial_cache.values())
        warm_serial_dir = tmp_path / "warm-serial"
        warm_parallel_dir = tmp_path / "warm-parallel"
        run_scenarios(
            self.SUBSET,
            scale=TINY,
            workers=1,
            json_dir=warm_serial_dir,
            cache=tmp_path / "cache-serial",
        )
        run_scenarios(
            self.SUBSET,
            scale=TINY,
            workers=2,
            json_dir=warm_parallel_dir,
            cache=tmp_path / "cache-parallel",
        )
        warm_serial = json.loads(
            (warm_serial_dir / "manifest.json").read_text()
        )
        warm_parallel = json.loads(
            (warm_parallel_dir / "manifest.json").read_text()
        )
        for scenario_id in self.SUBSET:
            assert (
                warm_parallel["scenarios"][scenario_id]["cache"]
                == warm_serial["scenarios"][scenario_id]["cache"]
            )
            assert (warm_parallel_dir / f"{scenario_id}.json").read_bytes() == (
                serial_dir / f"{scenario_id}.json"
            ).read_bytes()

    def test_event_engine_matches_replay_oracle_json(
        self, tmp_path, monkeypatch
    ):
        """REPRO_DYNAMICS=replay (per-event full reconvergence, the seed
        era's engine) and the default event engine must produce
        byte-identical churn-cost scenario JSON."""
        monkeypatch.setenv("REPRO_DYNAMICS", "event")
        event_dir = tmp_path / "event"
        run_scenarios(
            ["churn-cost"],
            scale=TINY,
            workers=2,
            json_dir=event_dir,
            cache=tmp_path / "cache-event",
        )
        monkeypatch.setenv("REPRO_DYNAMICS", "replay")
        replay_dir = tmp_path / "replay"
        run_scenarios(
            ["churn-cost"],
            scale=TINY,
            workers=1,
            json_dir=replay_dir,
            cache=None,
        )
        assert (event_dir / "churn-cost.json").read_bytes() == (
            replay_dir / "churn-cost.json"
        ).read_bytes()
