"""Tests for the discrete-event simulator core (events, simulator, network)."""

from __future__ import annotations

import pytest

from repro.graphs.generators import line_graph
from repro.sim.events import EventQueue
from repro.sim.messages import Message, RouteAdvertisement
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.sim.agents.base import Agent


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append(1))
        queue.push(1.0, lambda: fired.append(2))
        queue.pop().action()
        queue.pop().action()
        assert fired == [1, 2]

    def test_cancel(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(event)
        assert queue.pop().time == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(5.0, lambda: None)
        assert queue.peek_time() == 5.0

    def test_len(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2


class TestSimulator:
    def test_runs_in_time_order(self):
        simulator = Simulator()
        trace = []
        simulator.schedule_in(2.0, lambda: trace.append(("b", simulator.now)))
        simulator.schedule_in(1.0, lambda: trace.append(("a", simulator.now)))
        simulator.run()
        assert trace == [("a", 1.0), ("b", 2.0)]

    def test_nested_scheduling(self):
        simulator = Simulator()
        trace = []

        def first():
            trace.append("first")
            simulator.schedule_in(1.0, lambda: trace.append("second"))

        simulator.schedule_in(1.0, first)
        simulator.run()
        assert trace == ["first", "second"]
        assert simulator.now == 2.0

    def test_until_limit(self):
        simulator = Simulator()
        fired = []
        simulator.schedule_in(1.0, lambda: fired.append(1))
        simulator.schedule_in(10.0, lambda: fired.append(2))
        simulator.run(until=5.0)
        assert fired == [1]
        assert simulator.now == 5.0
        assert simulator.pending_events == 1

    def test_max_events_limit(self):
        simulator = Simulator()
        for _ in range(10):
            simulator.schedule_in(1.0, lambda: None)
        simulator.run(max_events=3)
        assert simulator.events_processed == 3

    def test_cannot_schedule_in_past(self):
        simulator = Simulator()
        simulator.schedule_in(1.0, lambda: None)
        simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_cancel_through_simulator(self):
        simulator = Simulator()
        fired = []
        event = simulator.schedule_in(1.0, lambda: fired.append(1))
        simulator.cancel(event)
        simulator.run()
        assert fired == []


class _EchoAgent(Agent):
    """Test agent: node 0 pings its neighbors once; others echo back."""

    def __init__(self, node, network):
        super().__init__(node, network)
        self.received: list[Message] = []

    def start(self) -> None:
        if self.node == 0:
            for neighbor in self.neighbors():
                self.send(neighbor, "ping")

    def on_message(self, message: Message) -> None:
        self.received.append(message)
        if message.kind == "ping":
            self.send(message.sender, "pong")


class TestNetwork:
    def test_message_delivery_and_counters(self):
        topology = line_graph(3)
        simulator = Simulator()
        network = Network(topology, simulator)
        agents = [_EchoAgent(v, network) for v in topology.nodes()]
        network.start()
        simulator.run()
        # Node 0 pings node 1; node 1 pongs back.
        assert [m.kind for m in agents[1].received] == ["ping"]
        assert [m.kind for m in agents[0].received] == ["pong"]
        assert network.counters(0).messages_sent == 1
        assert network.counters(1).messages_sent == 1
        assert network.counters(1).messages_received == 1
        assert network.total_messages() == 2

    def test_latency_respected(self):
        topology = line_graph(2)
        topology_weighted = line_graph(2)
        simulator = Simulator()
        network = Network(topology_weighted, simulator, processing_delay=0.0)
        received_at = {}

        class Recorder(Agent):
            def start(self) -> None:
                if self.node == 0:
                    self.send(1, "ping")

            def on_message(self, message: Message) -> None:
                received_at[self.node] = self.now

        Recorder(0, network)
        Recorder(1, network)
        network.start()
        simulator.run()
        assert received_at[1] == pytest.approx(1.0)  # edge weight 1.0

    def test_send_between_non_adjacent_rejected(self):
        topology = line_graph(3)
        network = Network(topology, Simulator())
        with pytest.raises(ValueError):
            network.send(Message(sender=0, receiver=2, kind="x"))

    def test_duplicate_agent_rejected(self):
        topology = line_graph(2)
        network = Network(topology, Simulator())
        _EchoAgent(0, network)
        with pytest.raises(ValueError):
            _EchoAgent(0, network)

    def test_entries_accounting(self):
        topology = line_graph(2)
        simulator = Simulator()
        network = Network(topology, simulator)

        class Bulk(Agent):
            def start(self) -> None:
                if self.node == 0:
                    self.send(1, "routes", size_entries=17)

            def on_message(self, message: Message) -> None:
                pass

        Bulk(0, network)
        Bulk(1, network)
        network.start()
        simulator.run()
        assert network.total_entries() == 17
        assert network.entries_per_node() == pytest.approx(8.5)

    def test_invalid_processing_delay(self):
        with pytest.raises(ValueError):
            Network(line_graph(2), Simulator(), processing_delay=-1.0)


class TestMessageObjects:
    def test_message_validation(self):
        with pytest.raises(ValueError):
            Message(sender=0, receiver=1, kind="x", size_entries=-1)

    def test_route_advertisement_fields(self):
        advertisement = RouteAdvertisement(destination=5, path=(1, 2, 5), cost=2.0)
        assert advertisement.destination == 5
        assert not advertisement.withdrawn
        assert advertisement.origin_landmark_distance is None
