"""Tests for repro.addressing.block_addresses (§4.2 fixed-size alternative)."""

from __future__ import annotations

import pytest

from repro.addressing.block_addresses import BlockAddressAllocator
from repro.core.nddisco import NDDiscoRouting
from repro.graphs.generators import gnm_random_graph, line_graph, star_graph
from repro.graphs.shortest_paths import dijkstra


def tree_parents_for(topology, root):
    """Full shortest-path-tree parent map rooted at ``root`` (root -> -1)."""
    _, parents = dijkstra(topology, root)
    full = {node: parents.get(node, -1) for node in topology.nodes()}
    full[root] = -1
    return full


@pytest.fixture(scope="module")
def gnm_allocator():
    topology = gnm_random_graph(120, seed=6, average_degree=6.0)
    allocator = BlockAddressAllocator(topology, 0, tree_parents_for(topology, 0))
    return topology, allocator


class TestAllocation:
    def test_covers_every_node(self, gnm_allocator):
        topology, allocator = gnm_allocator
        assert allocator.covered_nodes() == set(topology.nodes())

    def test_offsets_unique(self, gnm_allocator):
        topology, allocator = gnm_allocator
        offsets = [allocator.address_of(v).offset for v in topology.nodes()]
        assert len(set(offsets)) == topology.num_nodes

    def test_offsets_within_block(self, gnm_allocator):
        topology, allocator = gnm_allocator
        limit = 1 << allocator.block_bits
        for node in topology.nodes():
            assert 0 <= allocator.address_of(node).offset < limit

    def test_block_bits_is_logarithmic(self, gnm_allocator):
        topology, allocator = gnm_allocator
        assert allocator.block_bits <= 12  # ceil(log2(120)) + 2 = 9

    def test_child_ranges_nested_in_parent(self, gnm_allocator):
        topology, allocator = gnm_allocator
        parents = tree_parents_for(topology, 0)
        for node in topology.nodes():
            parent = parents[node]
            if parent < 0:
                continue
            child_start, child_size = allocator.range_of(node)
            parent_start, parent_size = allocator.range_of(parent)
            assert parent_start <= child_start
            assert child_start + child_size <= parent_start + parent_size

    def test_address_size_fixed(self, gnm_allocator):
        topology, allocator = gnm_allocator
        sizes = {allocator.address_of(v).size_bytes for v in topology.nodes()}
        assert len(sizes) == 1  # every address has the same (fixed) size

    def test_block_too_small_rejected(self):
        line = line_graph(40)
        with pytest.raises(ValueError):
            BlockAddressAllocator(line, 0, tree_parents_for(line, 0), block_bits=3)


class TestForwarding:
    def test_route_reaches_every_node(self, gnm_allocator):
        topology, allocator = gnm_allocator
        parents = tree_parents_for(topology, 0)
        for node in list(topology.nodes())[::7]:
            offset = allocator.address_of(node).offset
            path = allocator.route(offset)
            assert path[0] == 0
            assert path[-1] == node
            # The forwarding path follows tree edges.
            for child, parent in zip(path[1:], path):
                assert parents[child] == parent

    def test_forward_rejects_foreign_offset(self, gnm_allocator):
        topology, allocator = gnm_allocator
        # A leaf's block contains only its own offset.
        leaf = max(
            topology.nodes(),
            key=lambda v: (allocator.range_of(v)[1] == 1, v),
        )
        start, size = allocator.range_of(leaf)
        if size == 1:
            foreign = (start + 1) % (1 << allocator.block_bits)
            with pytest.raises(ValueError):
                allocator.forward(leaf, foreign)

    def test_star_topology(self):
        star = star_graph(12)
        allocator = BlockAddressAllocator(star, 0, tree_parents_for(star, 0))
        for leaf in range(1, 13):
            assert allocator.route(allocator.address_of(leaf).offset) == [0, leaf]

    def test_line_topology_deep_tree(self):
        line = line_graph(50)
        allocator = BlockAddressAllocator(line, 0, tree_parents_for(line, 0))
        assert allocator.route(allocator.address_of(49).offset) == list(range(50))


class TestPaperClaim:
    def test_block_addresses_larger_than_explicit_on_internet_like(self):
        """§4.2: the fixed-block design 'actually increase[s] the mean address
        size in practice' compared to explicit routes."""
        from repro.graphs.generators import internet_router_level

        topology = internet_router_level(300, seed=9)
        nddisco = NDDiscoRouting(topology, seed=9)
        explicit_mean = sum(
            a.route.size_bytes for a in nddisco.addresses
        ) / topology.num_nodes

        landmark = nddisco.closest_landmark(0)
        allocator = BlockAddressAllocator(
            topology, landmark, tree_parents_for(topology, landmark)
        )
        block_mean = sum(
            allocator.address_of(v).size_bytes for v in topology.nodes()
        ) / topology.num_nodes
        assert block_mean > explicit_mean
