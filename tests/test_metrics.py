"""Tests for repro.metrics (state, stretch, congestion)."""

from __future__ import annotations

import pytest

from repro.metrics.congestion import measure_congestion
from repro.metrics.state import measure_state
from repro.metrics.stretch import measure_stretch, stretch_of_route
from repro.protocols.base import RouteResult
from repro.protocols.shortest_path import ShortestPathRouting


class TestMeasureState:
    def test_all_nodes_by_default(self, disco_small, small_gnm):
        report = measure_state(disco_small)
        assert report.nodes == tuple(range(small_gnm.num_nodes))
        assert len(report.entries) == small_gnm.num_nodes
        assert report.scheme == "Disco"

    def test_node_sampling(self, disco_small):
        report = measure_state(disco_small, node_sample=10, seed=1)
        assert len(report.nodes) == 10
        assert len(set(report.nodes)) == 10

    def test_explicit_nodes(self, disco_small):
        report = measure_state(disco_small, nodes=[1, 2, 3])
        assert report.nodes == (1, 2, 3)
        assert report.entries[0] == disco_small.state_entries(1)

    def test_empty_nodes_rejected(self, disco_small):
        with pytest.raises(ValueError):
            measure_state(disco_small, nodes=[])

    def test_bytes_ordering(self, disco_small):
        report = measure_state(disco_small, nodes=[0, 1])
        assert all(
            v6 > v4 for v4, v6 in zip(report.bytes_ipv4, report.bytes_ipv6)
        )

    def test_cdf_and_summary(self, disco_small):
        report = measure_state(disco_small)
        cdf = report.entry_cdf()
        assert cdf[-1][1] == pytest.approx(1.0)
        assert report.entry_summary.maximum == max(report.entries)

    def test_kilobytes_row_keys(self, disco_small):
        row = measure_state(disco_small).kilobytes_row()
        assert set(row) == {
            "entries_mean",
            "entries_max",
            "kb_ipv4_mean",
            "kb_ipv4_max",
            "kb_ipv6_mean",
            "kb_ipv6_max",
        }
        assert row["kb_ipv6_mean"] > row["kb_ipv4_mean"]


class TestMeasureStretch:
    def test_shortest_path_has_stretch_one(self, small_gnm):
        routing = ShortestPathRouting(small_gnm)
        report = measure_stretch(routing, pair_sample=100, seed=1)
        assert report.first_summary.mean == pytest.approx(1.0)
        assert report.later_summary.maximum == pytest.approx(1.0)
        assert report.failures == 0

    def test_explicit_pairs(self, disco_small):
        pairs = [(0, 5), (10, 20)]
        report = measure_stretch(disco_small, pairs=pairs)
        assert report.pairs == tuple(pairs)
        assert len(report.first_packet) == 2

    def test_self_pairs_filtered(self, disco_small):
        report = measure_stretch(disco_small, pairs=[(0, 0), (0, 5)])
        assert report.pairs == ((0, 5),)

    def test_no_pairs_rejected(self, disco_small):
        with pytest.raises(ValueError):
            measure_stretch(disco_small, pairs=[(3, 3)])

    def test_stretch_at_least_one(self, disco_small):
        report = measure_stretch(disco_small, pair_sample=150, seed=2)
        assert min(report.first_packet) >= 1.0 - 1e-9
        assert min(report.later_packets) >= 1.0 - 1e-9

    def test_cdfs_end_at_one(self, disco_small):
        report = measure_stretch(disco_small, pair_sample=50, seed=3)
        assert report.first_cdf()[-1][1] == pytest.approx(1.0)
        assert report.later_cdf()[-1][1] == pytest.approx(1.0)

    def test_stretch_of_route_validation(self, small_gnm):
        route = RouteResult(path=(0, 1), mechanism="x")
        with pytest.raises(ValueError):
            stretch_of_route(small_gnm, route, 0.0)
        with pytest.raises(ValueError):
            stretch_of_route(
                small_gnm, RouteResult(path=(), mechanism="x", delivered=False), 1.0
            )

    def test_stretch_of_route_value(self, weighted_diamond):
        route = RouteResult(path=(0, 2, 3), mechanism="x")  # length 6
        assert stretch_of_route(weighted_diamond, route, 2.0) == pytest.approx(3.0)


class TestMeasureCongestion:
    def test_default_workload_one_flow_per_node(self, disco_small, small_gnm):
        report = measure_congestion(disco_small, seed=1)
        assert report.flows == small_gnm.num_nodes
        assert set(report.edge_usage) == {
            (u, v) for u, v, _ in small_gnm.edges()
        }

    def test_total_usage_matches_hops(self, small_gnm):
        routing = ShortestPathRouting(small_gnm)
        pairs = [(0, 10), (5, 20)]
        report = measure_congestion(routing, pairs=pairs)
        expected_hops = sum(
            routing.first_packet_route(s, t).hop_count for s, t in pairs
        )
        assert sum(report.usage_values) == expected_hops

    def test_unused_edges_counted_as_zero(self, small_gnm):
        routing = ShortestPathRouting(small_gnm)
        report = measure_congestion(routing, pairs=[(0, 1)])
        assert 0 in report.usage_values

    def test_self_flows_ignored(self, small_gnm):
        routing = ShortestPathRouting(small_gnm)
        report = measure_congestion(routing, pairs=[(3, 3)])
        assert sum(report.usage_values) == 0

    def test_first_vs_later_packet_choice(self, disco_small):
        later = measure_congestion(disco_small, seed=2, use_later_packets=True)
        first = measure_congestion(disco_small, seed=2, use_later_packets=False)
        assert later.use_later_packets
        assert not first.use_later_packets
        # First packets travel at least as far in aggregate.
        assert sum(first.usage_values) >= sum(later.usage_values)

    def test_fraction_above_and_max(self, disco_small):
        report = measure_congestion(disco_small, seed=3)
        assert report.fraction_above(report.max_usage()) == 0.0
        assert 0.0 < report.fraction_above(-1) <= 1.0

    def test_cdf_reaches_one(self, disco_small):
        report = measure_congestion(disco_small, seed=4)
        assert report.cdf()[-1][1] == pytest.approx(1.0)
