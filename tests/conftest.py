"""Shared fixtures for the test suite.

Fixtures are deliberately small (tens to a few hundred nodes) so the whole
suite runs in well under a minute; the scale-sensitive behaviour (state
growth, stretch bounds at size) is exercised by the benchmark harness.
Session-scoped fixtures cache the expensive converged protocol builds that
many test modules share.
"""

from __future__ import annotations

import pytest

from repro.core.disco import DiscoRouting
from repro.core.nddisco import NDDiscoRouting
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    grid_graph,
    internet_as_level,
    line_graph,
    ring_graph,
    star_graph,
)
from repro.graphs.topology import Topology
from repro.protocols.s4 import S4Routing
from repro.protocols.vrr import VirtualRingRouting


@pytest.fixture(scope="session")
def small_gnm() -> Topology:
    """A 64-node connected G(n,m) graph with unit weights."""
    return gnm_random_graph(64, seed=1, average_degree=6.0)


@pytest.fixture(scope="session")
def medium_gnm() -> Topology:
    """A 150-node connected G(n,m) graph with unit weights."""
    return gnm_random_graph(150, seed=2, average_degree=8.0)


@pytest.fixture(scope="session")
def small_geometric() -> Topology:
    """A 100-node geometric graph with latency weights."""
    return geometric_random_graph(100, seed=3, average_degree=8.0)


@pytest.fixture(scope="session")
def small_internet() -> Topology:
    """A 120-node Internet-like (preferential attachment) graph."""
    return internet_as_level(120, seed=4)


@pytest.fixture(scope="session")
def tiny_line() -> Topology:
    """A 6-node path graph, handy for hand-checkable routing cases."""
    return line_graph(6)


@pytest.fixture(scope="session")
def tiny_ring() -> Topology:
    """A 12-node ring."""
    return ring_graph(12)


@pytest.fixture(scope="session")
def tiny_grid() -> Topology:
    """A 4x5 grid."""
    return grid_graph(4, 5)


@pytest.fixture(scope="session")
def tiny_star() -> Topology:
    """A star with 10 leaves."""
    return star_graph(10)


@pytest.fixture()
def weighted_diamond() -> Topology:
    """A 4-node diamond with asymmetric weights: two distinct s-t paths.

        0 --1-- 1 --1-- 3
         \\--5-- 2 --1--/
    """
    topology = Topology(4, name="diamond")
    topology.add_edge(0, 1, 1.0)
    topology.add_edge(1, 3, 1.0)
    topology.add_edge(0, 2, 5.0)
    topology.add_edge(2, 3, 1.0)
    return topology


@pytest.fixture(scope="session")
def nddisco_small(small_gnm: Topology) -> NDDiscoRouting:
    """Converged NDDisco on the 64-node graph."""
    return NDDiscoRouting(small_gnm, seed=1)


@pytest.fixture(scope="session")
def disco_small(small_gnm: Topology, nddisco_small: NDDiscoRouting) -> DiscoRouting:
    """Converged Disco on the 64-node graph (shares NDDisco's substrate)."""
    return DiscoRouting(small_gnm, seed=1, nddisco=nddisco_small)


@pytest.fixture(scope="session")
def disco_medium(medium_gnm: Topology) -> DiscoRouting:
    """Converged Disco on the 150-node graph."""
    return DiscoRouting(medium_gnm, seed=2)


@pytest.fixture(scope="session")
def s4_small(small_gnm: Topology) -> S4Routing:
    """Converged S4 on the 64-node graph."""
    return S4Routing(small_gnm, seed=1)


@pytest.fixture(scope="session")
def vrr_small(small_gnm: Topology) -> VirtualRingRouting:
    """Converged VRR on the 64-node graph."""
    return VirtualRingRouting(small_gnm, seed=1)
