"""Substrate persistence v2: shells rewire onto one shared object graph.

The v2 artifact store persists the converged ND-Disco substrate once and
stores every other scheme as a lightweight shell whose pickle references
the substrate's components by ``(kind, key, path)``.  These tests pin the
resulting invariants: a fully warm run holds exactly one substrate object
graph in memory (cold-run parity), results are identical either way,
eviction of a referenced artifact degrades to a rebuild, and topology
mutation can never smuggle a stale object through a persistent reference.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import gnm_random_graph
from repro.scenarios.cache import (
    ArtifactCache,
    SUBSTRATE_SCHEMES,
    activated,
    scheme_key,
)
from repro.staticsim.simulation import StaticSimulation

PROTOCOLS = ("disco", "nd-disco", "s4", "vrr")


def _build_topology():
    return gnm_random_graph(72, seed=5, average_degree=6.0)


def _warm_simulation(root, protocols=PROTOCOLS):
    """Cold-populate ``root``, then rebuild everything from disk alone."""
    with activated(ArtifactCache(root)) as cache:
        topology = cache.topology(("gnm", 72, 5, 6.0), _build_topology)
        cold = StaticSimulation(topology, protocols, seed=3)
    with activated(ArtifactCache(root)) as cache:
        topology = cache.topology(
            ("gnm", 72, 5, 6.0), lambda: pytest.fail("topology must hit disk")
        )
        warm = StaticSimulation(topology, protocols, seed=3)
        assert cache.misses == 0, "warm run must be all hits"
    return cold, warm, topology


class TestWarmRewire:
    def test_warm_schemes_share_one_substrate_object_graph(self, tmp_path):
        _, warm, topology = _warm_simulation(tmp_path / "cache")
        nd = warm.scheme("nd-disco")
        s4 = warm.scheme("s4")
        disco = warm.scheme("disco")
        # Disco embeds the very substrate object.
        assert disco.nddisco is nd
        # S4 reattaches to the substrate's rows/addresses, not copies.
        for landmark in nd.landmarks:
            assert (
                s4._landmark_distances[landmark]
                is nd.landmark_spts[landmark][0]
            )
            assert (
                s4._landmark_parents[landmark]
                is nd.landmark_spts[landmark][1]
            )
        closest, closest_distance = nd.closest_landmark_rows
        assert s4._closest_landmark is closest
        assert s4._landmark_distance_of is closest_distance
        for node in range(topology.num_nodes):
            assert s4._addresses[node] is nd.addresses[node]
            assert s4._names[node] is nd.names[node]
        assert s4._codec is nd.codec

    def test_exactly_one_substrate_graph_in_memory(self, tmp_path):
        """The acceptance invariant: warm holds ONE substrate, like cold."""
        cold, warm, _ = _warm_simulation(tmp_path / "cache")
        for simulation in (cold, warm):
            nd = simulation.scheme("nd-disco")
            spt_row_ids = {
                id(rows[index])
                for rows in nd.landmark_spts.values()
                for index in (0, 1)
            }
            for name in ("s4", "disco"):
                scheme = simulation.scheme(name)
                if name == "disco":
                    scheme = scheme.nddisco
                for landmark, distances in scheme._landmark_distances.items():
                    assert id(distances) in spt_row_ids
                for landmark, parents in scheme._landmark_parents.items():
                    assert id(parents) in spt_row_ids

    def test_every_warm_scheme_shares_the_workload_topology(self, tmp_path):
        _, warm, topology = _warm_simulation(tmp_path / "cache")
        for name in PROTOCOLS:
            assert warm.scheme(name).topology is topology

    def test_warm_results_identical_to_cold(self, tmp_path):
        cold, warm, _ = _warm_simulation(tmp_path / "cache")
        cold_results = cold.run(pair_sample=40, measure_congestion_flag=True)
        warm_results = warm.run(pair_sample=40, measure_congestion_flag=True)
        assert cold_results.state.keys() == warm_results.state.keys()
        for name in cold_results.state:
            assert (
                cold_results.state[name].entry_summary
                == warm_results.state[name].entry_summary
            )
            assert (
                cold_results.stretch[name].first_summary
                == warm_results.stretch[name].first_summary
            )
            assert (
                cold_results.congestion[name].summary
                == warm_results.congestion[name].summary
            )

    def test_shells_are_lightweight_on_disk(self, tmp_path):
        import os
        import pickle

        root = tmp_path / "cache"
        cold, _, _ = _warm_simulation(root, protocols=("nd-disco", "s4"))
        plain = len(pickle.dumps(cold.scheme("s4"), protocol=4))
        (shell,) = [
            os.path.getsize(os.path.join(root, "scheme", name))
            for name in os.listdir(root / "scheme")
            if name.endswith(".pkl")
        ]
        # The shell drops the embedded substrate copy (SPT rows, addresses,
        # codec, topology), so it must be clearly smaller than the full
        # pickle -- the exact ratio varies with n.
        assert shell < plain * 0.8


class TestDegradation:
    def test_evicted_substrate_demotes_shells_to_misses(self, tmp_path):
        import glob
        import os

        root = tmp_path / "cache"
        cold, _, _ = _warm_simulation(root, protocols=("nd-disco", "s4"))
        for path in glob.glob(str(root / "substrate" / "*")):
            os.unlink(path)
        with activated(ArtifactCache(root)) as cache:
            rebuilt = StaticSimulation(
                _build_topology(), ("nd-disco", "s4"), seed=3
            )
            assert cache.misses >= 1  # the substrate (and its dependents)
        for node in (0, 35, 71):
            assert rebuilt.scheme("s4").state_entries(
                node
            ) == cold.scheme("s4").state_entries(node)

    def test_mutated_topology_is_never_smuggled_through_a_reference(
        self, tmp_path
    ):
        root = tmp_path / "cache"
        with activated(ArtifactCache(root)) as cache:
            topology = cache.topology(("gnm", 72, 5, 6.0), _build_topology)
            topology.add_edge(0, 71, 2.0)
            StaticSimulation(topology, ("vrr",), seed=3)
        mutated = _build_topology()
        mutated.add_edge(0, 71, 2.0)
        with activated(ArtifactCache(root)) as cache:
            warm = StaticSimulation(mutated, ("vrr",), seed=3)
            assert cache.hits >= 1
        # The warm shell must carry the mutated edge set, not the stale
        # pre-mutation topology artifact.
        assert warm.scheme("vrr").topology == mutated

    def test_substrate_keys_use_their_own_namespace(self):
        topology = _build_topology()
        assert "nd-disco" in SUBSTRATE_SCHEMES
        substrate = scheme_key(topology, "nd-disco", seed=3)
        scheme = scheme_key(topology, "s4", seed=3)
        assert substrate != scheme
