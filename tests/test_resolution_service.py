"""Property-based differential suite for the sharded resolution service.

The serving layer (:mod:`repro.resolution`) re-implements the converged
§4.3/§4.4 structures with serving-grade data structures (bisect rings,
prefix-range contact lookup, arc-scoped rebalance).  Every one of those
re-implementations is pinned here against brute-force recomputation or
the converged-state oracles:

* :class:`VNodeRing` vs :func:`naive_successors` and
  :class:`ConsistentHashRing` across randomized memberships, virtual-node
  counts, and churn sequences -- including a forced token-collision run
  that exercises the nudge fallback;
* :class:`ShardedResolutionService` at r=1 vs
  :class:`LandmarkResolutionDatabase` (home shards, load distribution,
  lookups, expiry);
* arc-filtered rebalance vs full placement recomputation under random
  join/leave sequences;
* :class:`SloppyGrouping` one-bit-disagreement core-group invariant under
  factor-of-two estimate skew, and :class:`GroupContactIndex` vs the
  oracle's full-scan contact selection;
* soft-state 2t+1 expiry driven through the :class:`EventCalendar`
  (no record served past its window; refreshes never reshuffle placement);
* the traffic engine's determinism and tick-segment merge equality, and
  the resolution scenarios' serial-vs-workers byte identity.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.naming.consistent_hash as consistent_hash_module
import repro.resolution.service as service_module
from repro.addressing.address import Address
from repro.addressing.explicit_route import ExplicitRoute
from repro.core.nddisco import NDDiscoRouting
from repro.core.resolution import LandmarkResolutionDatabase
from repro.core.sloppy_groups import SloppyGrouping
from repro.dynamics.calendar import EventCalendar
from repro.dynamics.stream import DynEvent
from repro.experiments.config import ExperimentScale
from repro.graphs.generators import gnm_random_graph
from repro.naming import HASH_SPACE, ConsistentHashRing, name_for_node
from repro.naming.hashspace import common_prefix_length
from repro.resolution import (
    GroupContactIndex,
    ShardedResolutionService,
    TrafficReport,
    VNodeRing,
    generate_lookup_workload,
    run_traffic,
)
from repro.resolution.service import naive_successors
from repro.scenarios.engine import run_scenarios

_SETTINGS = settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_servers = st.lists(
    st.integers(min_value=0, max_value=10**6),
    min_size=1,
    max_size=20,
    unique=True,
)
_vnodes = st.integers(min_value=1, max_value=6)
_keys = st.integers(min_value=0, max_value=HASH_SPACE - 1)


def _address(node: int) -> Address:
    """A minimal valid address (the node is its own landmark)."""
    return Address(
        node=node,
        landmark=node,
        route=ExplicitRoute(path=(node,), labels=(), bits=0),
    )


def _names(count: int):
    return [name_for_node(node) for node in range(count)]


class TestVNodeRingOracle:
    @_SETTINGS
    @given(servers=_servers, vnodes=_vnodes, key=_keys)
    def test_successor_matches_oracle_ring_and_naive_scan(
        self, servers, vnodes, key
    ):
        ring = VNodeRing(servers, virtual_nodes=vnodes)
        oracle = ConsistentHashRing(sorted(servers), virtual_nodes=vnodes)
        assert ring.successor(key) == oracle.owner(key)
        assert ring.successor(key) == naive_successors(
            servers, key, 1, virtual_nodes=vnodes
        )[0]

    @_SETTINGS
    @given(
        servers=_servers,
        vnodes=_vnodes,
        key=_keys,
        count=st.integers(min_value=1, max_value=6),
    )
    def test_replica_sets_match_naive_scan(self, servers, vnodes, key, count):
        ring = VNodeRing(servers, virtual_nodes=vnodes)
        assert ring.successors(key, count) == naive_successors(
            servers, key, count, virtual_nodes=vnodes
        )

    @_SETTINGS
    @given(
        initial=_servers,
        vnodes=_vnodes,
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=40)),
            max_size=12,
        ),
    )
    def test_incremental_churn_matches_from_scratch(self, initial, vnodes, ops):
        ring = VNodeRing(initial, virtual_nodes=vnodes)
        members = set(initial)
        for add, server in ops:
            if add:
                ring = ring.with_server(server)
                members.add(server)
            elif server in members and len(members) > 1:
                ring = ring.without_server(server)
                members.discard(server)
            scratch = VNodeRing(sorted(members), virtual_nodes=vnodes)
            assert ring.servers == scratch.servers
            assert ring.tokens == scratch.tokens
            for token in scratch.tokens:
                assert ring.successor(token) == scratch.successor(token)
                assert ring.successor(token + 1) == scratch.successor(token + 1)

    def test_forced_collision_nudge_matches_oracle(self, monkeypatch):
        # A degenerate point function that collides constantly forces the
        # deterministic nudge on both sides; the incremental paths must
        # detect it and fall back to from-scratch rebuilds.
        def colliding_point(server, replica):
            return (1000 * ((server % 4) + 1)) % HASH_SPACE

        monkeypatch.setattr(service_module, "ring_point", colliding_point)
        monkeypatch.setattr(consistent_hash_module, "_point_for", colliding_point)
        members = [3, 7, 11, 19, 23]
        ring = VNodeRing(members, virtual_nodes=3)
        probes = list(range(0, 6000, 37)) + [HASH_SPACE - 1]
        for churned in (5, 7, 42, 11):
            if churned in ring:
                ring = ring.without_server(churned)
                members.remove(churned)
            else:
                ring = ring.with_server(churned)
                members.append(churned)
            oracle = ConsistentHashRing(sorted(members), virtual_nodes=3)
            for key in probes:
                assert ring.successor(key) == oracle.owner(key)


class TestServiceVsOracleDatabase:
    @_SETTINGS
    @given(
        landmarks=_servers,
        vnodes=st.integers(min_value=1, max_value=4),
        num_names=st.integers(min_value=1, max_value=48),
    )
    def test_single_home_placement_matches_oracle(
        self, landmarks, vnodes, num_names
    ):
        service = ShardedResolutionService(
            landmarks, virtual_nodes=vnodes, replicas=1
        )
        oracle = LandmarkResolutionDatabase(landmarks, virtual_nodes=vnodes)
        names = _names(num_names)
        addresses = [_address(node) for node in range(num_names)]
        service.populate(names, addresses)
        oracle.populate(names, addresses)
        for name in names:
            assert service.home_shard(name) == oracle.home_landmark(name)
            assert service.placement_of(name) == (oracle.home_landmark(name),)
            assert service.lookup(name) == oracle.lookup(name)
        assert service.load_distribution() == oracle.load_distribution()

    @_SETTINGS
    @given(
        landmarks=_servers,
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=32,
        ),
        now=st.floats(min_value=0.0, max_value=150.0),
    )
    def test_expiry_matches_oracle(self, landmarks, times, now):
        service = ShardedResolutionService(landmarks, refresh_interval=10.0)
        oracle = LandmarkResolutionDatabase(landmarks, refresh_interval=10.0)
        names = _names(len(times))
        for node, inserted_at in enumerate(times):
            service.insert(names[node], _address(node), now=inserted_at)
            oracle.insert(names[node], _address(node), now=inserted_at)
        assert service.expire_older_than(now) == oracle.expire_older_than(now)
        for name in names:
            assert service.lookup(name) == oracle.lookup(name)
        assert service.load_distribution() == oracle.load_distribution()


class TestRebalanceDifferential:
    @_SETTINGS
    @given(
        initial=st.lists(
            st.integers(min_value=0, max_value=60),
            min_size=1,
            max_size=10,
            unique=True,
        ),
        replicas=st.integers(min_value=1, max_value=3),
        vnodes=st.integers(min_value=1, max_value=4),
        num_names=st.integers(min_value=1, max_value=40),
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=60)),
            max_size=10,
        ),
    )
    def test_arc_scoped_rebalance_equals_bruteforce(
        self, initial, replicas, vnodes, num_names, ops
    ):
        service = ShardedResolutionService(
            initial, virtual_nodes=vnodes, replicas=replicas
        )
        names = _names(num_names)
        service.populate(names, [_address(node) for node in range(num_names)])
        members = set(initial)
        for add, shard in ops:
            if add and shard not in members:
                service.add_shard(shard)
                members.add(shard)
            elif not add and shard in members and len(members) > 1:
                # Graceful drain keeps every record, so placements stay
                # comparable against the brute-force oracle.
                service.remove_shard(shard, lost=False)
                members.discard(shard)
            counts = {shard: 0 for shard in members}
            for name in names:
                expected = naive_successors(
                    sorted(members),
                    name.hash_value,
                    replicas,
                    virtual_nodes=vnodes,
                )
                assert service.placement_of(name) == expected
                assert service.compute_placement(name) == expected
                for holder in expected:
                    counts[holder] += 1
            assert service.load_distribution() == counts

    def test_lost_shard_drops_sole_copies_until_refresh(self):
        landmarks = list(range(8))
        names = _names(64)
        addresses = [_address(node) for node in range(64)]
        service = ShardedResolutionService(landmarks, replicas=1)
        service.populate(names, addresses)
        victim = service.home_shard(names[0])
        homed = [name for name in names if service.home_shard(name) == victim]
        report = service.remove_shard(victim, lost=True)
        assert report.kind == "leave"
        assert report.lost_records == len(homed)
        for name in names:
            if name in homed:
                assert service.lookup(name) is None
            else:
                assert service.lookup(name) is not None
        # The owner's next soft-state refresh restores the record.
        service.insert(names[0], addresses[0], now=1.0)
        assert service.lookup(names[0]) is not None

    def test_replicated_records_survive_shard_loss(self):
        landmarks = list(range(8))
        names = _names(64)
        service = ShardedResolutionService(landmarks, replicas=2)
        service.populate(names, [_address(node) for node in range(64)])
        victim = landmarks[3]
        affected = [
            name for name in names if victim in service.placement_of(name)
        ]
        report = service.remove_shard(victim, lost=True)
        assert report.lost_records == 0
        # Every affected record re-replicates exactly its lost copy.
        assert report.moved_copies == len(affected)
        for name in names:
            assert service.lookup(name) is not None
            assert victim not in service.placement_of(name)

    def test_join_scan_is_arc_scoped(self):
        service = ShardedResolutionService(range(16), replicas=1)
        names = _names(256)
        service.populate(names, [_address(node) for node in range(256)])
        report = service.add_shard(99)
        assert not report.whole_ring
        assert report.scanned < len(names)
        assert report.moved_copies == service.entries_at(99)


class TestSloppyGroupingSkew:
    @_SETTINGS
    @given(
        num_nodes=st.integers(min_value=16, max_value=96),
        factors=st.lists(
            st.floats(min_value=0.5, max_value=2.0),
            min_size=96,
            max_size=96,
        ),
    )
    def test_core_groups_survive_factor_two_estimate_skew(
        self, num_nodes, factors
    ):
        estimates = {
            node: num_nodes * factors[node] for node in range(num_nodes)
        }
        grouping = SloppyGrouping(_names(num_nodes), estimates)
        bits = [grouping.prefix_bits_of(node) for node in range(num_nodes)]
        # Factor-of-two skew moves log2(sqrt(n)) by at most 1/2 either way,
        # so any two nodes' prefix lengths disagree by at most one bit.
        assert max(bits) - min(bits) <= 1
        k_max = max(bits)
        for u in range(num_nodes):
            for v in range(u + 1, num_nodes):
                if (
                    common_prefix_length(
                        grouping.hash_of(u), grouping.hash_of(v)
                    )
                    >= k_max
                ):
                    assert grouping.stores_address_of(u, v)
                    assert grouping.stores_address_of(v, u)

    @_SETTINGS
    @given(
        num_nodes=st.integers(min_value=8, max_value=64),
        estimate=st.floats(min_value=4.0, max_value=2.0**24),
        data=st.data(),
    )
    def test_contact_index_matches_full_scan_oracle(
        self, num_nodes, estimate, data
    ):
        grouping = SloppyGrouping(_names(num_nodes), estimate)
        index = GroupContactIndex(grouping)
        source = data.draw(st.integers(min_value=0, max_value=num_nodes - 1))
        members = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=num_nodes - 1),
                min_size=1,
                max_size=num_nodes,
                unique=True,
            )
        )
        distances = {
            node: data.draw(
                st.floats(min_value=0.0, max_value=50.0), label=f"d{node}"
            )
            for node in members
        }
        for target in range(num_nodes):
            expected = grouping.best_group_contact(target, distances)
            assert index.best_contact(source, target, distances) == expected
            # Cached-table path must answer identically.
            assert index.best_contact(source, target, distances) == expected


class TestSoftStateCalendar:
    def test_expiry_through_event_calendar(self):
        """Refresh events through the calendar: 2t+1 served-staleness cap."""
        refresh_interval = 4.0
        num_nodes = 24
        names = _names(num_nodes)
        service = ShardedResolutionService(
            range(6), replicas=2, refresh_interval=refresh_interval
        )
        timeout = service.timeout
        horizon = 64
        calendar = EventCalendar()
        last_insert = {}
        # Node v refreshes every (3 + v % 9) ticks -- some inside, some
        # far outside the 2t+1 = 9 tick window.
        for node in range(num_nodes):
            for tick in range(0, horizon, 3 + node % 9):
                calendar.schedule(DynEvent(tick, "node-join", node))
        pending = calendar.pop()
        for tick in range(horizon):
            while pending is not None and pending.tick == tick:
                node = pending.u
                before = (
                    service.placement_of(names[node])
                    if names[node] in {n for n in last_insert}
                    else None
                )
                service.insert(names[node], _address(node), now=float(tick))
                if before is not None:
                    # Membership never changed, so a refresh never
                    # reshuffles placement.
                    assert service.placement_of(names[node]) == before
                last_insert[names[node]] = float(tick)
                pending = calendar.pop()
            dropped = service.expire_older_than(float(tick))
            expected_dropped = [
                name
                for name, inserted in last_insert.items()
                if inserted < tick - timeout
            ]
            assert dropped == len(expected_dropped)
            for name in expected_dropped:
                del last_insert[name]
            for node in range(num_nodes):
                record = service.lookup_record(names[node], now=float(tick))
                if record is not None:
                    assert tick - record.inserted_at <= timeout
                    assert record.inserted_at == last_insert[names[node]]

    def test_stale_record_not_served_before_sweep(self):
        service = ShardedResolutionService(range(4), refresh_interval=2.0)
        name = name_for_node(0)
        service.insert(name, _address(0), now=0.0)
        assert service.lookup(name, now=service.timeout) is not None
        # Past 2t+1 the record is dead even though no sweep dropped it yet.
        assert service.lookup(name, now=service.timeout + 1.5) is None
        assert len(service) == 1


@pytest.fixture(scope="module")
def small_routing():
    topology = gnm_random_graph(64, seed=5, average_degree=6.0)
    return NDDiscoRouting(topology, seed=5)


class TestTrafficEngine:
    def test_workload_is_deterministic_and_well_formed(self):
        workload = generate_lookup_workload(
            50,
            num_lookups=600,
            duration_ticks=40,
            seed=9,
            flash=(10, 18, 3.0),
        )
        again = generate_lookup_workload(
            50,
            num_lookups=600,
            duration_ticks=40,
            seed=9,
            flash=(10, 18, 3.0),
        )
        assert workload == again
        assert workload.num_lookups == 600
        assert list(workload.ticks) == sorted(workload.ticks)
        assert all(0 <= t < 40 for t in workload.ticks)
        assert all(
            requester != target
            for requester, target in zip(workload.requesters, workload.targets)
        )
        per_tick = [0] * 40
        for tick in workload.ticks:
            per_tick[tick] += 1
        flash_mean = sum(per_tick[10:18]) / 8
        calm_mean = sum(per_tick[:10] + per_tick[18:]) / 32
        assert flash_mean > 2 * calm_mean
        other_seed = generate_lookup_workload(
            50, num_lookups=600, duration_ticks=40, seed=10
        )
        assert other_seed != workload

    def test_zipf_popularity_is_skewed(self):
        workload = generate_lookup_workload(
            64, num_lookups=4000, duration_ticks=8, seed=2, zipf_exponent=1.0
        )
        counts: dict[int, int] = {}
        for target in workload.targets:
            counts[target] = counts.get(target, 0) + 1
        top = max(counts.values())
        assert top > 3 * (4000 / 64)

    def test_run_is_deterministic(self, small_routing):
        workload = generate_lookup_workload(
            64, num_lookups=800, duration_ticks=32, seed=4
        )
        kwargs = dict(replicas=2, virtual_nodes=4, refresh_interval=8)
        assert run_traffic(small_routing, workload, **kwargs) == run_traffic(
            small_routing, workload, **kwargs
        )

    def test_segment_merge_matches_serial(self, small_routing):
        workload = generate_lookup_workload(
            64, num_lookups=800, duration_ticks=32, seed=4, flash=(8, 12, 3.0)
        )
        landmarks = sorted(small_routing.landmarks)
        events = [
            DynEvent(6, "node-leave", landmarks[0]),
            DynEvent(20, "node-join", landmarks[0]),
        ]
        kwargs = dict(
            replicas=2,
            virtual_nodes=4,
            refresh_interval=8,
            shard_events=events,
        )
        serial = run_traffic(small_routing, workload, **kwargs)
        segments = [
            run_traffic(small_routing, workload, bill_ticks=bounds, **kwargs)
            for bounds in [(0, 7), (7, 19), (19, 32)]
        ]
        merged = TrafficReport.merge(segments)
        # Everything except the cache stats is independent of how the
        # timeline is split; the per-segment caches start cold, so their
        # counters sum rather than reproduce the single warm cache.
        assert merged.lookups == serial.lookups
        assert merged.group_hits == serial.group_hits
        assert merged.ring_hits == serial.ring_hits
        assert merged.misses == serial.misses
        assert merged.latencies == serial.latencies
        assert merged.staleness == serial.staleness
        assert merged.hops == serial.hops
        assert merged.shard_loads == serial.shard_loads
        assert merged.expired_records == serial.expired_records
        assert merged.rebalances == serial.rebalances
        assert merged.bill_ticks == serial.bill_ticks

    def test_served_staleness_capped_by_timeout(self, small_routing):
        workload = generate_lookup_workload(
            64, num_lookups=800, duration_ticks=48, seed=6
        )
        landmarks = sorted(small_routing.landmarks)
        events = [
            DynEvent(5, "node-leave", landmarks[1]),
            DynEvent(25, "node-join", landmarks[1]),
        ]
        report = run_traffic(
            small_routing,
            workload,
            replicas=1,
            refresh_interval=8,
            shard_events=events,
        )
        timeout = 2 * 8 + 1
        assert report.lookups == 800
        assert all(age <= timeout for age in report.staleness)
        assert all(math.isfinite(latency) for latency in report.latencies)


class TestResolutionScenarios:
    def test_scenarios_byte_identical_under_workers(self, tmp_path):
        scale = ExperimentScale(
            comparison_nodes=64,
            large_nodes=64,
            as_level_nodes=64,
            router_level_nodes=72,
            pair_sample=40,
            messaging_sweep=(20, 24),
            scaling_sweep=(40, 48),
            seed=17,
            label="tiny-resolution",
        )
        subset = [
            "resolution-latency",
            "resolution-staleness",
            "resolution-balance",
        ]
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_scenarios(
            subset, scale=scale, workers=1, json_dir=serial_dir, cache=None
        )
        parallel = run_scenarios(
            subset,
            scale=scale,
            workers=2,
            json_dir=parallel_dir,
            cache=tmp_path / "cache",
        )
        for scenario_id in subset:
            assert parallel[scenario_id].report == serial[scenario_id].report
            assert (parallel_dir / f"{scenario_id}.json").read_bytes() == (
                serial_dir / f"{scenario_id}.json"
            ).read_bytes()
