"""Tests for shortest-path, path-vector, and the protocol registry."""

from __future__ import annotations

import pytest

from repro.graphs.shortest_paths import dijkstra, path_length
from repro.graphs.topology import Topology
from repro.protocols.base import RouteResult
from repro.protocols.pathvector import PathVectorRouting
from repro.protocols.registry import available_schemes, build_scheme
from repro.protocols.shortest_path import ShortestPathRouting


class TestRouteResult:
    def test_hop_count(self):
        assert RouteResult(path=(1, 2, 3), mechanism="x").hop_count == 2
        assert RouteResult(path=(1,), mechanism="x").hop_count == 0
        assert RouteResult(path=(), mechanism="x", delivered=False).hop_count == 0

    def test_length(self, weighted_diamond):
        result = RouteResult(path=(0, 1, 3), mechanism="x")
        assert result.length(weighted_diamond) == pytest.approx(2.0)

    def test_length_single_node(self, weighted_diamond):
        assert RouteResult(path=(2,), mechanism="x").length(weighted_diamond) == 0.0


class TestShortestPathRouting:
    def test_state_entries(self, small_gnm):
        routing = ShortestPathRouting(small_gnm)
        assert routing.state_entries(0) == small_gnm.num_nodes - 1
        assert routing.state_bytes(0, name_bytes=4) == (small_gnm.num_nodes - 1) * 5.0

    def test_routes_are_shortest(self, small_gnm):
        routing = ShortestPathRouting(small_gnm)
        distances, _ = dijkstra(small_gnm, 3)
        for target in (10, 40, 63):
            result = routing.first_packet_route(3, target)
            assert result.path[0] == 3
            assert result.path[-1] == target
            assert path_length(small_gnm, list(result.path)) == pytest.approx(
                distances[target]
            )

    def test_first_equals_later(self, small_gnm):
        routing = ShortestPathRouting(small_gnm)
        assert (
            routing.first_packet_route(0, 20).path
            == routing.later_packet_route(0, 20).path
        )

    def test_self_route(self, small_gnm):
        routing = ShortestPathRouting(small_gnm)
        assert routing.shortest_path(5, 5) == [5]
        assert routing.distance(5, 5) == 0.0

    def test_distance_query(self, weighted_diamond):
        routing = ShortestPathRouting(weighted_diamond)
        assert routing.distance(0, 3) == pytest.approx(2.0)

    def test_rejects_disconnected(self):
        with pytest.raises(ValueError):
            ShortestPathRouting(Topology.from_edges(4, [(0, 1), (2, 3)]))

    def test_out_of_range(self, small_gnm):
        routing = ShortestPathRouting(small_gnm)
        with pytest.raises(ValueError):
            routing.first_packet_route(0, 999)


class TestPathVectorRouting:
    def test_data_plane_matches_shortest_path(self, small_gnm):
        routing = PathVectorRouting(small_gnm)
        assert routing.state_entries(7) == small_gnm.num_nodes - 1
        assert routing.first_packet_route(7, 30).path[-1] == 30

    def test_control_state_scales_with_degree(self, small_gnm):
        routing = PathVectorRouting(small_gnm)
        node = max(range(small_gnm.num_nodes), key=small_gnm.degree)
        expected = (small_gnm.num_nodes - 1) * small_gnm.degree(node)
        assert routing.control_state_entries(node) == expected

    def test_forgetful_mode_collapses_control_state(self, small_gnm):
        routing = PathVectorRouting(small_gnm, forgetful=True)
        assert routing.forgetful
        assert routing.control_state_entries(0) == small_gnm.num_nodes - 1

    def test_name(self, small_gnm):
        assert PathVectorRouting(small_gnm).name == "Path-Vector"


class TestRegistry:
    def test_available_schemes(self):
        names = available_schemes()
        assert "disco" in names
        assert "vrr" in names
        assert len(names) == 6

    def test_build_each_scheme(self, small_gnm):
        expected_types = {
            "disco": "DiscoRouting",
            "nd-disco": "NDDiscoRouting",
            "s4": "S4Routing",
            "vrr": "VirtualRingRouting",
            "path-vector": "PathVectorRouting",
            "shortest-path": "ShortestPathRouting",
        }
        for name, type_name in expected_types.items():
            scheme = build_scheme(name, small_gnm, seed=1)
            assert type(scheme).__name__ == type_name

    def test_case_insensitive(self, small_gnm):
        assert type(build_scheme("S4", small_gnm)).__name__ == "S4Routing"
        assert type(build_scheme("NDDisco", small_gnm)).__name__ == "NDDiscoRouting"

    def test_unknown_name(self, small_gnm):
        with pytest.raises(KeyError):
            build_scheme("ospf", small_gnm)

    def test_kwargs_forwarded(self, small_gnm):
        vrr = build_scheme("vrr", small_gnm, seed=1, vset_size=6)
        assert vrr.vset_size == 6
