"""Tests for repro.addressing (labels, explicit routes, addresses)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.addressing.address import Address, NAME_BYTES_IPV4, NAME_BYTES_IPV6
from repro.addressing.explicit_route import ExplicitRoute
from repro.addressing.labels import LabelCodec, hop_label_bits, route_label_bits
from repro.graphs.generators import gnm_random_graph, ring_graph, star_graph
from repro.graphs.shortest_paths import shortest_path
from repro.graphs.topology import Topology


class TestHopLabelBits:
    def test_small_degrees(self):
        assert hop_label_bits(0) == 1
        assert hop_label_bits(1) == 1
        assert hop_label_bits(2) == 1
        assert hop_label_bits(3) == 2
        assert hop_label_bits(4) == 2
        assert hop_label_bits(5) == 3

    def test_large_degree(self):
        assert hop_label_bits(1024) == 10
        assert hop_label_bits(1025) == 11

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hop_label_bits(-1)


class TestLabelCodec:
    def test_encode_decode_round_trip(self, small_gnm):
        codec = LabelCodec(small_gnm)
        path = shortest_path(small_gnm, 0, small_gnm.num_nodes - 1)
        labels = codec.encode_path(path)
        assert len(labels) == len(path) - 1
        assert codec.decode_path(path[0], labels) == path

    def test_label_for_and_neighbor_for_inverse(self, small_gnm):
        codec = LabelCodec(small_gnm)
        for node in range(10):
            for neighbor in small_gnm.neighbors(node):
                label = codec.label_for(node, neighbor)
                assert codec.neighbor_for(node, label) == neighbor

    def test_labels_bounded_by_degree(self, small_gnm):
        codec = LabelCodec(small_gnm)
        for node in range(small_gnm.num_nodes):
            for neighbor in small_gnm.neighbors(node):
                assert 0 <= codec.label_for(node, neighbor) < small_gnm.degree(node)

    def test_invalid_path_rejected(self, small_gnm):
        codec = LabelCodec(small_gnm)
        # Find two non-adjacent nodes.
        non_neighbor = next(
            v for v in range(small_gnm.num_nodes)
            if v != 0 and not small_gnm.has_edge(0, v)
        )
        with pytest.raises(ValueError):
            codec.encode_path([0, non_neighbor])

    def test_invalid_label_rejected(self, small_gnm):
        codec = LabelCodec(small_gnm)
        with pytest.raises(ValueError):
            codec.decode_path(0, [small_gnm.degree(0)])

    def test_missing_neighbor_raises(self, small_gnm):
        codec = LabelCodec(small_gnm)
        non_neighbor = next(
            v for v in range(small_gnm.num_nodes)
            if v != 0 and not small_gnm.has_edge(0, v)
        )
        with pytest.raises(KeyError):
            codec.label_for(0, non_neighbor)

    def test_path_bits_matches_function(self, small_gnm):
        codec = LabelCodec(small_gnm)
        path = shortest_path(small_gnm, 1, 40)
        assert codec.path_bits(path) == route_label_bits(small_gnm, path)
        assert codec.path_bytes(path) == codec.path_bits(path) / 8.0

    def test_single_node_path_zero_bits(self, small_gnm):
        codec = LabelCodec(small_gnm)
        assert codec.path_bits([3]) == 0
        assert codec.encode_path([3]) == []

    def test_star_hub_labels(self):
        star = star_graph(8)
        codec = LabelCodec(star)
        # Hub has degree 8 -> 3 bits per hop from the hub.
        assert route_label_bits(star, [0, 5]) == 3
        # Leaf has degree 1 -> 1 bit per hop from the leaf.
        assert route_label_bits(star, [5, 0]) == 1

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_round_trip_random_paths(self, seed):
        topology = gnm_random_graph(30, seed=seed, average_degree=4.0)
        codec = LabelCodec(topology)
        path = shortest_path(topology, 0, topology.num_nodes - 1)
        assert codec.decode_path(0, codec.encode_path(path)) == path


class TestExplicitRoute:
    def test_from_path(self, small_gnm):
        codec = LabelCodec(small_gnm)
        path = shortest_path(small_gnm, 0, 30)
        route = ExplicitRoute.from_path(codec, path)
        assert route.source == 0
        assert route.destination == 30
        assert route.hop_count == len(path) - 1
        assert route.bits == codec.path_bits(path)
        assert route.size_bytes == route.bits / 8.0
        assert route.wire_bytes == math.ceil(route.bits / 8.0)

    def test_single_node_route(self, small_gnm):
        codec = LabelCodec(small_gnm)
        route = ExplicitRoute.from_path(codec, [5])
        assert route.hop_count == 0
        assert route.bits == 0
        assert route.wire_bytes == 0

    def test_reversed_route(self, small_gnm):
        codec = LabelCodec(small_gnm)
        path = shortest_path(small_gnm, 2, 50)
        route = ExplicitRoute.from_path(codec, path)
        reverse = route.reversed_route(codec)
        assert reverse.path == tuple(reversed(path))
        assert reverse.source == route.destination
        assert reverse.destination == route.source

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplicitRoute(path=(), labels=(), bits=0)
        with pytest.raises(ValueError):
            ExplicitRoute(path=(1, 2), labels=(), bits=0)
        with pytest.raises(ValueError):
            ExplicitRoute(path=(1,), labels=(), bits=-1)

    def test_len(self, small_gnm):
        codec = LabelCodec(small_gnm)
        path = shortest_path(small_gnm, 0, 10)
        assert len(ExplicitRoute.from_path(codec, path)) == len(path)

    def test_ring_addresses_are_long(self):
        """The §4.2 worst case: ring addresses grow with the path length."""
        ring = ring_graph(64)
        codec = LabelCodec(ring)
        path = list(range(0, 33))  # half way around
        route = ExplicitRoute.from_path(codec, path)
        assert route.bits == 32  # 1 bit per hop at degree-2 nodes
        assert route.size_bytes == 4.0


class TestAddress:
    def _address(self, topology: Topology, landmark: int, node: int) -> Address:
        codec = LabelCodec(topology)
        path = shortest_path(topology, landmark, node)
        return Address(
            node=node, landmark=landmark, route=ExplicitRoute.from_path(codec, path)
        )

    def test_valid_address(self, small_gnm):
        address = self._address(small_gnm, 0, 20)
        assert address.node == 20
        assert address.landmark == 0
        assert not address.is_landmark_self

    def test_self_landmark(self, small_gnm):
        address = self._address(small_gnm, 7, 7)
        assert address.is_landmark_self
        assert address.route.hop_count == 0

    def test_route_endpoint_validation(self, small_gnm):
        codec = LabelCodec(small_gnm)
        path = shortest_path(small_gnm, 0, 20)
        route = ExplicitRoute.from_path(codec, path)
        with pytest.raises(ValueError):
            Address(node=21, landmark=0, route=route)
        with pytest.raises(ValueError):
            Address(node=20, landmark=1, route=route)

    def test_size_bytes(self, small_gnm):
        address = self._address(small_gnm, 0, 20)
        assert address.size_bytes(NAME_BYTES_IPV4) == pytest.approx(
            4.0 + address.route.size_bytes
        )
        assert address.size_bytes(NAME_BYTES_IPV6) == pytest.approx(
            16.0 + address.route.size_bytes
        )

    def test_mapping_entry_bytes(self, small_gnm):
        address = self._address(small_gnm, 0, 20)
        assert address.mapping_entry_bytes(4) == pytest.approx(
            4.0 + address.size_bytes(4)
        )

    def test_invalid_name_bytes(self, small_gnm):
        address = self._address(small_gnm, 0, 20)
        with pytest.raises(ValueError):
            address.size_bytes(0)

    def test_repr(self, small_gnm):
        address = self._address(small_gnm, 0, 20)
        assert "landmark=0" in repr(address)
