"""End-to-end integration tests: the full pipeline and the examples."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro.graphs.generators import geometric_random_graph
from repro.staticsim.simulation import StaticSimulation

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestFullPipeline:
    """One medium topology through every protocol and every metric."""

    @pytest.fixture(scope="class")
    def results(self):
        topology = geometric_random_graph(180, seed=31, average_degree=8.0)
        simulation = StaticSimulation(
            topology, ("disco", "nd-disco", "s4", "vrr", "path-vector"), seed=31
        )
        return simulation.run(
            measure_state_flag=True,
            measure_stretch_flag=True,
            measure_congestion_flag=True,
            pair_sample=150,
        )

    def test_paper_state_ordering(self, results):
        """Mean state: S4 < ND-Disco < Disco < Path-Vector (Fig. 7 shape)."""
        means = {
            name: report.entry_summary.mean for name, report in results.state.items()
        }
        assert means["S4"] < means["ND-Disco"] < means["Disco"]
        assert means["Disco"] < means["Path-Vector"] * 3  # still same order of n here

    def test_disco_state_balanced_vrr_not(self, results):
        disco = results.state["Disco"].entry_summary
        vrr = results.state["VRR"].entry_summary
        assert disco.maximum / disco.mean < vrr.maximum / vrr.mean

    def test_paper_stretch_ordering(self, results):
        """First-packet stretch: Disco well below S4 and VRR (Fig. 5 shape)."""
        disco = results.stretch["Disco"].first_summary
        s4 = results.stretch["S4"].first_summary
        vrr = results.stretch["VRR"].first_summary
        assert disco.mean < s4.mean
        assert disco.mean < vrr.mean
        assert disco.maximum < s4.maximum

    def test_later_packet_bounds(self, results):
        assert results.stretch["Disco"].later_summary.maximum <= 3.0 + 1e-9
        assert results.stretch["S4"].later_summary.maximum <= 3.0 + 1e-9
        assert results.stretch["Path-Vector"].later_summary.maximum == pytest.approx(
            1.0
        )

    def test_congestion_close_to_shortest_path(self, results):
        """Compact routing's congestion stays comparable to shortest paths."""
        disco = results.congestion["Disco"].max_usage()
        shortest = results.congestion["Path-Vector"].max_usage()
        assert disco <= 5 * shortest

    def test_every_protocol_measured_on_same_workload(self, results):
        flows = {report.flows for report in results.congestion.values()}
        assert len(flows) == 1


class TestExamples:
    """Each example script runs to completion (smoke tests)."""

    def _run(self, name: str, capsys) -> str:
        script = EXAMPLES_DIR / name
        assert script.exists(), f"missing example {name}"
        argv_backup = sys.argv
        sys.argv = [str(script)]
        try:
            runpy.run_path(str(script), run_name="__main__")
        finally:
            sys.argv = argv_backup
        return capsys.readouterr().out

    def test_quickstart(self, capsys):
        output = self._run("quickstart.py", capsys)
        assert "network-wide measurements" in output
        assert "stretch" in output

    def test_sensor_network(self, capsys):
        output = self._run("sensor_network.py", capsys)
        assert "S4" in output
        assert "Disco" in output

    def test_enterprise_flat_names(self, capsys):
        output = self._run("enterprise_flat_names.py", capsys)
        assert "name after move: unchanged" in output

    def test_internet_routing(self, capsys):
        output = self._run("internet_routing.py", capsys)
        assert "VRR" in output
        assert "Path-Vector" in output

    def test_reproduce_paper_list(self, capsys):
        script = EXAMPLES_DIR / "reproduce_paper.py"
        argv_backup = sys.argv
        sys.argv = [str(script), "--list"]
        try:
            with pytest.raises(SystemExit) as excinfo:
                runpy.run_path(str(script), run_name="__main__")
            assert excinfo.value.code == 0
        finally:
            sys.argv = argv_backup
        output = capsys.readouterr().out
        assert "fig02-state-cdf" in output
