"""Cross-cutting property-based tests on the protocol invariants.

These use hypothesis to sweep topology families, sizes, and seeds, checking
the invariants the paper proves:

* Theorem 1 -- Disco later-packet stretch ≤ 3 and (with the group-contact
  mechanism available) first-packet stretch ≤ 7;
* Theorem 2 -- per-node state well below Θ(n) and concentrated;
* S4 later-packet stretch ≤ 3 (Thorup-Zwick);
* routes produced by every protocol are valid walks ending at the target;
* explicit-route label encoding round-trips on arbitrary shortest paths.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.disco import DiscoRouting
from repro.core.nddisco import NDDiscoRouting
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_as_level,
)
from repro.graphs.sampling import sample_pairs
from repro.graphs.shortest_paths import all_pairs_sampled_distances
from repro.metrics.stretch import measure_stretch
from repro.protocols.s4 import S4Routing

# Building a converged protocol is costly, so property tests use modest
# example counts and sizes; the deterministic unit tests cover the rest.
_SETTINGS = settings(
    deadline=None,
    max_examples=8,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_topology_strategies = st.sampled_from(["gnm", "geometric", "internet"])


def _build_topology(kind: str, n: int, seed: int):
    if kind == "gnm":
        return gnm_random_graph(n, seed=seed, average_degree=6.0)
    if kind == "geometric":
        return geometric_random_graph(n, seed=seed, average_degree=7.0)
    return internet_as_level(n, seed=seed)


class TestDiscoInvariants:
    @_SETTINGS
    @given(
        kind=_topology_strategies,
        n=st.integers(min_value=48, max_value=120),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_stretch_bounds_and_delivery(self, kind, n, seed):
        topology = _build_topology(kind, n, seed)
        disco = DiscoRouting(topology, seed=seed)
        pairs = sample_pairs(topology, 40, seed=seed + 1)
        distances = all_pairs_sampled_distances(topology, pairs)
        for source, target in pairs:
            first = disco.first_packet_route(source, target)
            later = disco.later_packet_route(source, target)
            assert first.path[0] == source and first.path[-1] == target
            assert later.path[0] == source and later.path[-1] == target
            shortest = distances[(source, target)]
            assert later.length(topology) <= 3.0 * shortest + 1e-6
            if first.mechanism != "resolution-fallback":
                assert first.length(topology) <= 7.0 * shortest + 1e-6

    @_SETTINGS
    @given(
        n=st.integers(min_value=60, max_value=140),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_state_concentrated(self, n, seed):
        topology = gnm_random_graph(n, seed=seed, average_degree=6.0)
        disco = DiscoRouting(topology, seed=seed)
        entries = [disco.state_entries(v) for v in topology.nodes()]
        mean = sum(entries) / len(entries)
        assert max(entries) <= 2.5 * mean
        # Never worse than flat per-destination tables by more than the
        # name-independence constant (group mappings + overlay links).
        assert max(entries) <= 4 * n


class TestS4Invariants:
    @_SETTINGS
    @given(
        kind=_topology_strategies,
        n=st.integers(min_value=48, max_value=120),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_later_packet_stretch_bound(self, kind, n, seed):
        topology = _build_topology(kind, n, seed)
        s4 = S4Routing(topology, seed=seed)
        report = measure_stretch(s4, pair_sample=40, seed=seed + 2)
        assert report.later_summary.maximum <= 3.0 + 1e-9


class TestNDDiscoInvariants:
    @_SETTINGS
    @given(
        n=st.integers(min_value=48, max_value=120),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_pure_name_dependent_first_packet_bound(self, n, seed):
        topology = gnm_random_graph(n, seed=seed, average_degree=6.0)
        nddisco = NDDiscoRouting(topology, seed=seed, resolve_first_packet=False)
        report = measure_stretch(nddisco, pair_sample=40, seed=seed + 3)
        assert report.first_summary.maximum <= 5.0 + 1e-9
        assert report.later_summary.maximum <= 3.0 + 1e-9

    @_SETTINGS
    @given(
        n=st.integers(min_value=48, max_value=120),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_addresses_decode_to_their_nodes(self, n, seed):
        topology = internet_as_level(n, seed=seed)
        nddisco = NDDiscoRouting(topology, seed=seed)
        codec = nddisco.codec
        for node in range(0, n, 7):
            address = nddisco.address_of(node)
            decoded = codec.decode_path(address.landmark, list(address.route.labels))
            assert decoded[-1] == node
            assert decoded == list(address.route.path)
