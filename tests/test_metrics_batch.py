"""Batched measurement engine vs the per-pair/per-node loops.

The batched routers (:mod:`repro.metrics.batch`) and the batched state
profiles must be byte-identical to the historical loops -- same paths,
same mechanisms, same floats -- across topology families, protocols
(including the generic fallback for VRR), and every shortcut mode.
"""

from __future__ import annotations

import pytest

from repro.core.shortcutting import ShortcutMode
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_router_level,
)
from repro.graphs.sampling import sample_pairs
from repro.graphs.shortest_paths import all_pairs_sampled_distances
from repro.metrics.batch import PairRouter, make_router, route_pairs_batch
from repro.metrics.congestion import measure_congestion
from repro.metrics.state import measure_state
from repro.metrics.stretch import measure_stretch
from repro.staticsim.simulation import StaticSimulation


def _topologies():
    return [
        gnm_random_graph(140, seed=3, average_degree=6.0),
        geometric_random_graph(110, seed=4, average_degree=7.0),
        internet_router_level(120, seed=5),
    ]


class TestBatchedStretch:
    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_batch_equals_per_pair_loop(self, index):
        topology = _topologies()[index]
        simulation = StaticSimulation(
            topology, ("disco", "nd-disco", "s4", "vrr"), seed=1
        )
        pairs = sample_pairs(topology, 200, seed=7)
        for name, scheme in simulation.schemes.items():
            loop = measure_stretch(scheme, pairs=pairs, batch=False)
            batched = measure_stretch(scheme, pairs=pairs, batch=True)
            assert loop == batched, name

    def test_shared_distance_table_is_identical(self, medium_gnm):
        simulation = StaticSimulation(medium_gnm, ("nd-disco", "s4"), seed=1)
        pairs = sample_pairs(medium_gnm, 120, seed=3)
        distances = all_pairs_sampled_distances(medium_gnm, pairs)
        for scheme in simulation.schemes.values():
            assert measure_stretch(scheme, pairs=pairs) == measure_stretch(
                scheme, pairs=pairs, distances=distances
            )

    @pytest.mark.parametrize("mode", list(ShortcutMode))
    def test_every_shortcut_mode(self, mode):
        topology = gnm_random_graph(120, seed=9, average_degree=6.0)
        simulation = StaticSimulation(
            topology, ("disco", "nd-disco"), seed=2, shortcut_mode=mode
        )
        pairs = sample_pairs(topology, 120, seed=3)
        for name, scheme in simulation.schemes.items():
            loop = measure_stretch(scheme, pairs=pairs, batch=False)
            batched = measure_stretch(scheme, pairs=pairs, batch=True)
            assert loop == batched, (mode, name)

    def test_dict_backend_routers_also_identical(self):
        from repro.core.tables import use_backend

        topology = gnm_random_graph(100, seed=6, average_degree=6.0)
        with use_backend("dict"):
            simulation = StaticSimulation(
                topology, ("disco", "nd-disco", "s4"), seed=1
            )
            pairs = sample_pairs(topology, 120, seed=5)
            for name, scheme in simulation.schemes.items():
                loop = measure_stretch(scheme, pairs=pairs, batch=False)
                batched = measure_stretch(scheme, pairs=pairs, batch=True)
                assert loop == batched, name


class TestBatchedRoutes:
    def test_route_pairs_batch_matches_scheme_methods(self, medium_gnm):
        simulation = StaticSimulation(medium_gnm, ("disco", "s4"), seed=1)
        pairs = sample_pairs(medium_gnm, 80, seed=11)
        for scheme in simulation.schemes.values():
            batched = route_pairs_batch(scheme, pairs)
            for (source, target), (first, later) in zip(pairs, batched):
                assert first == scheme.first_packet_route(source, target)
                assert later == scheme.later_packet_route(source, target)

    def test_route_length_matches_route_result(self, medium_gnm):
        simulation = StaticSimulation(medium_gnm, ("nd-disco",), seed=1)
        scheme = simulation.scheme("nd-disco")
        router = make_router(scheme)
        for source, target in sample_pairs(medium_gnm, 40, seed=2):
            result = router.later(source, target)
            assert router.route_length(result.path) == result.length(medium_gnm)

    def test_unknown_scheme_falls_back(self, medium_gnm):
        simulation = StaticSimulation(medium_gnm, ("vrr",), seed=1)
        router = make_router(simulation.scheme("vrr"))
        assert type(router) is PairRouter

    def test_desynchronized_disco_mode_falls_back(self, medium_gnm):
        simulation = StaticSimulation(medium_gnm, ("disco",), seed=1)
        disco = simulation.scheme("disco")
        disco.nddisco.shortcut_mode = ShortcutMode.NONE
        assert type(make_router(disco)) is PairRouter


class TestBatchedStateAndCongestion:
    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_state_profile_equals_per_node_loop(self, index):
        topology = _topologies()[index]
        simulation = StaticSimulation(
            topology, ("disco", "nd-disco", "s4", "vrr"), seed=1
        )
        for name, scheme in simulation.schemes.items():
            loop = measure_state(scheme, batch=False)
            batched = measure_state(scheme, batch=True)
            assert loop == batched, name

    def test_congestion_batch_identical(self, medium_gnm):
        simulation = StaticSimulation(
            medium_gnm, ("disco", "nd-disco", "s4"), seed=1
        )
        for name, scheme in simulation.schemes.items():
            for later in (True, False):
                loop = measure_congestion(
                    scheme, batch=False, use_later_packets=later
                )
                batched = measure_congestion(
                    scheme, batch=True, use_later_packets=later
                )
                assert loop == batched, (name, later)

    def test_staticsim_run_matches_unbatched_measurement(self, medium_gnm):
        simulation = StaticSimulation(
            medium_gnm, ("disco", "nd-disco", "s4"), seed=1
        )
        results = simulation.run(measure_congestion_flag=True, pair_sample=120)
        pairs = sample_pairs(medium_gnm, 120, seed=simulation._seed + 1)
        for name, scheme in simulation.schemes.items():
            display = scheme.name
            assert results.state[display] == measure_state(scheme, batch=False)
            assert results.stretch[display] == measure_stretch(
                scheme, pairs=pairs, batch=False
            )
            assert results.congestion[display] == measure_congestion(
                scheme,
                pairs=None,
                seed=simulation._seed + 2,
                batch=False,
            )
