"""Tests for repro.core.shortcutting."""

from __future__ import annotations

import pytest

from repro.core.shortcutting import (
    ShortcutMode,
    apply_shortcuts,
    truncate_at_destination,
)
from repro.core.vicinity import compute_vicinities
from repro.graphs.generators import gnm_random_graph
from repro.graphs.shortest_paths import path_length
from repro.graphs.topology import Topology


@pytest.fixture()
def chain_with_shortcut() -> Topology:
    """A 6-node chain 0-1-2-3-4-5 plus a shortcut edge 1-4.

    The relay route 0->1->2->3->4->5 can be shortened at node 1 (which knows
    the shortcut to 4 and, with a large enough vicinity, to 5).
    """
    topology = Topology(6, name="chain-with-shortcut")
    for node in range(5):
        topology.add_edge(node, node + 1, 1.0)
    topology.add_edge(1, 4, 1.0)
    return topology


class TestShortcutMode:
    def test_reverse_route_usage(self):
        assert not ShortcutMode.NONE.uses_reverse_route
        assert not ShortcutMode.TO_DESTINATION.uses_reverse_route
        assert ShortcutMode.SHORTER_REVERSE_FORWARD.uses_reverse_route
        assert ShortcutMode.NO_PATH_KNOWLEDGE.uses_reverse_route
        assert not ShortcutMode.UP_DOWN_STREAM.uses_reverse_route
        assert ShortcutMode.PATH_KNOWLEDGE.uses_reverse_route

    def test_per_hop_heuristics(self):
        assert ShortcutMode.NONE.per_hop_heuristic == "none"
        assert ShortcutMode.TO_DESTINATION.per_hop_heuristic == "to-destination"
        assert ShortcutMode.NO_PATH_KNOWLEDGE.per_hop_heuristic == "to-destination"
        assert ShortcutMode.UP_DOWN_STREAM.per_hop_heuristic == "up-down-stream"
        assert ShortcutMode.PATH_KNOWLEDGE.per_hop_heuristic == "up-down-stream"

    def test_all_modes_have_labels(self):
        assert len({mode.value for mode in ShortcutMode}) == 6


class TestTruncateAtDestination:
    def test_no_occurrence_before_end(self):
        assert truncate_at_destination([1, 2, 3]) == [1, 2, 3]

    def test_truncates_at_first_occurrence(self):
        assert truncate_at_destination([1, 3, 2, 3]) == [1, 3]

    def test_empty(self):
        assert truncate_at_destination([]) == []

    def test_single_node(self):
        assert truncate_at_destination([4]) == [4]


class TestApplyShortcuts:
    def test_none_mode_returns_truncated_route(self, chain_with_shortcut):
        vicinities = compute_vicinities(chain_with_shortcut, size=2)
        route = [0, 1, 2, 3, 4, 5]
        result = apply_shortcuts(
            chain_with_shortcut, vicinities, route, ShortcutMode.NONE
        )
        assert result == route

    def test_to_destination_splices_direct_path(self, chain_with_shortcut):
        # Vicinity size 6 = whole graph, so node 1 knows a 2-hop path to 5.
        vicinities = compute_vicinities(chain_with_shortcut, size=6)
        route = [0, 1, 2, 3, 4, 5]
        result = apply_shortcuts(
            chain_with_shortcut, vicinities, route, ShortcutMode.TO_DESTINATION
        )
        assert result[0] == 0
        assert result[-1] == 5
        assert path_length(chain_with_shortcut, result) < path_length(
            chain_with_shortcut, route
        )

    def test_up_down_stream_at_least_as_good_as_to_destination(
        self, chain_with_shortcut
    ):
        vicinities = compute_vicinities(chain_with_shortcut, size=3)
        route = [0, 1, 2, 3, 4, 5]
        to_dest = apply_shortcuts(
            chain_with_shortcut, vicinities, route, ShortcutMode.TO_DESTINATION
        )
        up_down = apply_shortcuts(
            chain_with_shortcut, vicinities, route, ShortcutMode.UP_DOWN_STREAM
        )
        assert path_length(chain_with_shortcut, up_down) <= path_length(
            chain_with_shortcut, to_dest
        )

    def test_reverse_selection_picks_shorter_direction(self, chain_with_shortcut):
        vicinities = compute_vicinities(chain_with_shortcut, size=2)
        forward = [0, 1, 2, 3, 4, 5]          # length 5
        reverse = [5, 4, 1, 0]                # length 3 (uses the shortcut)
        result = apply_shortcuts(
            chain_with_shortcut,
            vicinities,
            forward,
            ShortcutMode.SHORTER_REVERSE_FORWARD,
            reverse_route=reverse,
        )
        assert result == [0, 1, 4, 5]

    def test_reverse_required_when_mode_uses_it(self, chain_with_shortcut):
        vicinities = compute_vicinities(chain_with_shortcut, size=2)
        with pytest.raises(ValueError):
            apply_shortcuts(
                chain_with_shortcut,
                vicinities,
                [0, 1, 2],
                ShortcutMode.NO_PATH_KNOWLEDGE,
            )

    def test_reverse_endpoints_validated(self, chain_with_shortcut):
        vicinities = compute_vicinities(chain_with_shortcut, size=2)
        with pytest.raises(ValueError):
            apply_shortcuts(
                chain_with_shortcut,
                vicinities,
                [0, 1, 2],
                ShortcutMode.NO_PATH_KNOWLEDGE,
                reverse_route=[1, 0],
            )

    def test_empty_route_rejected(self, chain_with_shortcut):
        vicinities = compute_vicinities(chain_with_shortcut, size=2)
        with pytest.raises(ValueError):
            apply_shortcuts(chain_with_shortcut, vicinities, [], ShortcutMode.NONE)

    def test_route_through_destination_truncated(self, chain_with_shortcut):
        vicinities = compute_vicinities(chain_with_shortcut, size=2)
        route = [0, 1, 4, 5, 4]  # destination is 4, touched earlier
        result = apply_shortcuts(
            chain_with_shortcut, vicinities, route, ShortcutMode.NONE
        )
        assert result == [0, 1, 4]

    def test_modes_never_lengthen_routes(self):
        """Every heuristic returns a route no longer than the raw relay route."""
        topology = gnm_random_graph(60, seed=12, average_degree=5.0)
        vicinities = compute_vicinities(topology)
        from repro.graphs.shortest_paths import shortest_path

        # Build a deliberately bad relay route: s -> hub -> t via shortest paths.
        source, hub, target = 0, 30, 59
        forward = (
            shortest_path(topology, source, hub)
            + shortest_path(topology, hub, target)[1:]
        )
        reverse = (
            shortest_path(topology, target, hub)
            + shortest_path(topology, hub, source)[1:]
        )
        base_length = path_length(topology, truncate_at_destination(forward))
        for mode in ShortcutMode:
            result = apply_shortcuts(
                topology, vicinities, forward, mode, reverse_route=reverse
            )
            assert result[0] == source
            assert result[-1] == target
            assert path_length(topology, result) <= base_length + 1e-9

    def test_endpoints_always_preserved(self, chain_with_shortcut):
        vicinities = compute_vicinities(chain_with_shortcut, size=6)
        for mode in ShortcutMode:
            result = apply_shortcuts(
                chain_with_shortcut,
                vicinities,
                [0, 1, 2, 3, 4, 5],
                mode,
                reverse_route=[5, 4, 3, 2, 1, 0],
            )
            assert result[0] == 0
            assert result[-1] == 5
            # Consecutive nodes are adjacent.
            for a, b in zip(result, result[1:]):
                assert chain_with_shortcut.has_edge(a, b)
