"""Tests for repro.protocols.s4."""

from __future__ import annotations

import pytest

from repro.core.nddisco import NDDiscoRouting
from repro.graphs.generators import two_level_tree
from repro.graphs.shortest_paths import dijkstra, path_length
from repro.metrics.state import measure_state
from repro.metrics.stretch import measure_stretch
from repro.protocols.s4 import S4Routing


class TestClusters:
    def test_cluster_definition(self, s4_small, small_gnm):
        """w ∈ C(v) iff d(v, w) < d(w, ℓw)."""
        landmark_distance = {}
        for node in range(small_gnm.num_nodes):
            landmark = s4_small.closest_landmark(node)
            landmark_distance[node] = dijkstra(small_gnm, landmark)[0][node]
        for holder in (0, 7, 21):
            distances, _ = dijkstra(small_gnm, holder)
            for member in range(small_gnm.num_nodes):
                if member == holder:
                    continue
                expected = distances[member] < landmark_distance[member]
                assert s4_small.in_cluster(holder, member) == expected

    def test_cluster_size_consistency(self, s4_small, small_gnm):
        for node in range(0, small_gnm.num_nodes, 5):
            explicit = sum(
                1
                for member in range(small_gnm.num_nodes)
                if s4_small.in_cluster(node, member)
            )
            assert s4_small.cluster_size(node) == explicit

    def test_node_not_in_own_cluster(self, s4_small):
        assert not s4_small.in_cluster(4, 4)

    def test_cluster_path_is_shortest(self, s4_small, small_gnm):
        holder = next(
            v for v in range(small_gnm.num_nodes) if s4_small.cluster_size(v) > 0
        )
        member = next(
            m
            for m in range(small_gnm.num_nodes)
            if s4_small.in_cluster(holder, m)
        )
        path = s4_small.cluster_path(holder, member)
        distances, _ = dijkstra(small_gnm, holder)
        assert path[0] == holder
        assert path[-1] == member
        assert path_length(small_gnm, path) == pytest.approx(distances[member])

    def test_cluster_path_non_member_raises(self, s4_small, small_gnm):
        outsider = next(
            m for m in range(1, small_gnm.num_nodes) if not s4_small.in_cluster(0, m)
        )
        with pytest.raises(ValueError):
            s4_small.cluster_path(0, outsider)


class TestStateExplosion:
    def test_two_level_tree_root_has_large_cluster(self):
        """The footnote-6 construction: the root's cluster is Θ(n)."""
        topology = two_level_tree(12)  # 157 nodes
        # Choose landmarks among the grandchildren only, so neither the root
        # nor the children are landmarks -- the adversarial case the paper
        # describes (random selection hits it with high probability at scale).
        grandchildren = list(range(1 + 12, topology.num_nodes))
        landmarks = set(grandchildren[::20]) or {grandchildren[0]}
        s4 = S4Routing(topology, landmarks=landmarks)
        root_cluster = s4.cluster_size(0)
        assert root_cluster >= 0.5 * len(grandchildren)

    def test_disco_stays_bounded_on_same_tree(self):
        topology = two_level_tree(12)
        grandchildren = list(range(1 + 12, topology.num_nodes))
        landmarks = set(grandchildren[::20]) or {grandchildren[0]}
        s4 = S4Routing(topology, landmarks=landmarks)
        nddisco = NDDiscoRouting(topology, landmarks=landmarks)
        s4_max = max(s4.state_entries(v) for v in topology.nodes())
        nd_max = max(nddisco.state_entries(v) for v in topology.nodes())
        assert nd_max < s4_max

    def test_state_imbalance_on_internet_like_graph(self, small_internet):
        s4 = S4Routing(small_internet, seed=2)
        report = measure_state(s4)
        summary = report.entry_summary
        # Heavy tail: max well above the mean on preferential-attachment graphs.
        assert summary.maximum >= 1.5 * summary.mean


class TestRouting:
    def test_self_route(self, s4_small):
        assert s4_small.first_packet_route(3, 3).path == (3,)

    def test_routes_are_walks(self, s4_small, small_gnm):
        for source, target in [(0, 63), (10, 50), (45, 2)]:
            for result in (
                s4_small.first_packet_route(source, target),
                s4_small.later_packet_route(source, target),
            ):
                assert result.path[0] == source
                assert result.path[-1] == target
                for a, b in zip(result.path, result.path[1:]):
                    assert small_gnm.has_edge(a, b)

    def test_later_packet_stretch_bound(self, s4_small):
        """S4 (Thorup-Zwick) guarantees stretch 3 once the label is known."""
        report = measure_stretch(s4_small, pair_sample=250, seed=4)
        assert report.later_summary.maximum <= 3.0 + 1e-9

    def test_first_packet_resolution_detour_can_exceed_3(self, small_geometric):
        """With the location-service detour the first packet has no stretch
        bound; on latency-weighted graphs it visibly exceeds 3."""
        s4 = S4Routing(small_geometric, seed=3)
        report = measure_stretch(s4, pair_sample=300, seed=5)
        assert report.first_summary.maximum > 3.0

    def test_first_packet_without_resolution_bounded(self, small_gnm):
        s4 = S4Routing(small_gnm, seed=1, resolve_first_packet=False)
        report = measure_stretch(s4, pair_sample=250, seed=6)
        assert report.first_summary.maximum <= 3.0 + 1e-9

    def test_shares_landmarks_with_nddisco_when_given(self, small_gnm, nddisco_small):
        s4 = S4Routing(small_gnm, landmarks=nddisco_small.landmarks)
        assert s4.landmarks == nddisco_small.landmarks

    def test_out_of_range(self, s4_small):
        with pytest.raises(ValueError):
            s4_small.first_packet_route(0, 10_000)

    def test_names_length_validated(self, small_gnm):
        from repro.naming.names import name_for_node

        with pytest.raises(ValueError):
            S4Routing(small_gnm, names=[name_for_node(0)])
