"""Tests for repro.core.landmarks and repro.core.vicinity."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.landmarks import LandmarkSet, landmark_probability, select_landmarks
from repro.core.vicinity import VicinityTable, compute_vicinities, vicinity_size
from repro.graphs.generators import gnm_random_graph, line_graph
from repro.graphs.shortest_paths import dijkstra


class TestLandmarkProbability:
    def test_formula(self):
        n = 1000
        assert landmark_probability(n) == pytest.approx(math.sqrt(math.log(n) / n))

    def test_tiny_networks_clamped(self):
        assert landmark_probability(1) == 1.0
        assert landmark_probability(2) <= 1.0

    def test_decreases_with_n(self):
        assert landmark_probability(100) > landmark_probability(10_000)

    def test_invalid(self):
        with pytest.raises(ValueError):
            landmark_probability(0)


class TestSelectLandmarks:
    def test_never_empty(self):
        for n in (1, 2, 5, 50):
            assert len(select_landmarks(n, seed=0)) >= 1

    def test_deterministic(self):
        assert select_landmarks(200, seed=3) == select_landmarks(200, seed=3)

    def test_seed_changes_selection(self):
        assert select_landmarks(500, seed=1) != select_landmarks(500, seed=2)

    def test_expected_count_order(self):
        n = 2000
        landmarks = select_landmarks(n, seed=4)
        expected = n * landmark_probability(n)
        assert 0.4 * expected <= len(landmarks) <= 2.5 * expected

    def test_probability_override(self):
        assert len(select_landmarks(100, seed=0, probability=1.0)) == 100

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            select_landmarks(10, probability=1.5)

    def test_draws_depend_only_on_seed_and_node_id(self):
        """With the probability pinned, adding nodes never changes earlier
        nodes' decisions -- each node's draw depends only on (seed, node id)."""
        probability = 0.2
        full = select_landmarks(300, seed=9, probability=probability)
        partial = select_landmarks(150, seed=9, probability=probability)
        assert {v for v in full if v < 150} == partial

    @settings(deadline=None, max_examples=20)
    @given(
        n=st.integers(min_value=1, max_value=400),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_always_valid_ids(self, n, seed):
        landmarks = select_landmarks(n, seed=seed)
        assert landmarks
        assert all(0 <= v < n for v in landmarks)


class TestLandmarkSet:
    def test_create_from_topology(self, small_gnm):
        landmark_set = LandmarkSet.create(small_gnm, seed=1)
        assert len(landmark_set) >= 1
        assert all(v in landmark_set for v in landmark_set.landmarks)

    def test_create_from_int(self):
        landmark_set = LandmarkSet.create(100, seed=1)
        assert len(landmark_set) >= 1

    def test_reconsider_hysteresis(self):
        landmark_set = LandmarkSet.create(100, seed=1)
        # Less than a factor-2 change: no flips allowed.
        assert landmark_set.reconsider(0, 150) is False
        assert landmark_set.reconsider(0, 51) is False

    def test_reconsider_large_change_may_flip(self):
        landmark_set = LandmarkSet.create(64, seed=1)
        changed = [landmark_set.reconsider(node, 100_000) for node in range(64)]
        # With n growing 1500x the landmark probability collapses, so at least
        # one previously selected landmark steps down.
        assert any(changed)

    def test_reconsider_updates_population_record(self):
        landmark_set = LandmarkSet.create(64, seed=1)
        landmark_set.reconsider(5, 1000)
        assert landmark_set.population_at_last_change[5] == 1000

    def test_reconsider_invalid_n(self):
        landmark_set = LandmarkSet.create(10, seed=1)
        with pytest.raises(ValueError):
            landmark_set.reconsider(0, 0)

    def test_expected_count(self):
        landmark_set = LandmarkSet.create(100, seed=1)
        assert landmark_set.expected_count(100) == pytest.approx(
            100 * landmark_probability(100)
        )


class TestVicinitySize:
    def test_formula(self):
        n = 1024
        assert vicinity_size(n) == math.ceil(math.sqrt(n * math.log(n)))

    def test_clamped_to_n(self):
        assert vicinity_size(4) <= 4
        assert vicinity_size(1) == 1

    def test_scale_factor(self):
        assert vicinity_size(1024, scale=2.0) == 2 * vicinity_size(1024) or (
            vicinity_size(1024, scale=2.0) >= vicinity_size(1024)
        )

    def test_monotone_in_n(self):
        assert vicinity_size(100) < vicinity_size(10_000)

    def test_invalid(self):
        with pytest.raises(ValueError):
            vicinity_size(0)
        with pytest.raises(ValueError):
            vicinity_size(10, scale=0)


class TestComputeVicinities:
    def test_sizes(self, small_gnm):
        vicinities = compute_vicinities(small_gnm)
        expected = vicinity_size(small_gnm.num_nodes)
        assert len(vicinities) == small_gnm.num_nodes
        assert all(len(v) == expected for v in vicinities)

    def test_owner_included_at_zero(self, small_gnm):
        vicinities = compute_vicinities(small_gnm)
        for table in vicinities:
            assert table.node in table
            assert table.distance_to(table.node) == 0.0

    def test_members_are_truly_closest(self, small_gnm):
        vicinities = compute_vicinities(small_gnm, size=10)
        for node in (0, 5, 17):
            table = vicinities[node]
            full, _ = dijkstra(small_gnm, node)
            radius = table.radius()
            strictly_closer = {v for v, d in full.items() if d < radius}
            assert strictly_closer <= table.members

    def test_paths_are_shortest(self, small_gnm):
        vicinities = compute_vicinities(small_gnm, size=12)
        table = vicinities[3]
        full, _ = dijkstra(small_gnm, 3)
        for member in table.members:
            path = table.path_to(member)
            assert path[0] == 3
            assert path[-1] == member
            length = sum(
                small_gnm.edge_weight(a, b) for a, b in zip(path, path[1:])
            )
            assert length == pytest.approx(full[member])

    def test_path_to_non_member_raises(self, small_gnm):
        vicinities = compute_vicinities(small_gnm, size=5)
        table = vicinities[0]
        outsider = next(v for v in range(small_gnm.num_nodes) if v not in table)
        with pytest.raises(KeyError):
            table.path_to(outsider)

    def test_explicit_size_override(self, small_gnm):
        vicinities = compute_vicinities(small_gnm, size=3)
        assert all(len(v) == 3 for v in vicinities)

    def test_line_graph_vicinity_is_interval(self):
        line = line_graph(20)
        vicinities = compute_vicinities(line, size=5)
        # On a path graph the k nearest nodes form a contiguous interval.
        members = sorted(vicinities[10].members)
        assert members == list(range(members[0], members[0] + 5))
        assert 10 in members

    def test_radius(self, small_gnm):
        table = compute_vicinities(small_gnm, size=8)[2]
        assert table.radius() == max(table.distances.values())

    def test_vicinity_table_is_frozen(self, small_gnm):
        table = compute_vicinities(small_gnm, size=4)[0]
        assert isinstance(table, VicinityTable)
        with pytest.raises(AttributeError):
            table.node = 5  # type: ignore[misc]
