"""Tests for repro.core.overlay and repro.core.dissemination."""

from __future__ import annotations

import pytest

from repro.core.dissemination import AddressDissemination
from repro.core.overlay import DisseminationOverlay
from repro.core.sloppy_groups import SloppyGrouping
from repro.naming.names import name_for_node


def make_grouping(n: int, estimated_n=None) -> SloppyGrouping:
    return SloppyGrouping([name_for_node(v) for v in range(n)], estimated_n)


@pytest.fixture(scope="module")
def grouping_200() -> SloppyGrouping:
    return make_grouping(200)


@pytest.fixture(scope="module")
def overlay_200(grouping_200) -> DisseminationOverlay:
    return DisseminationOverlay(grouping_200, num_fingers=1, seed=1)


class TestOverlayStructure:
    def test_ring_is_a_permutation(self, overlay_200, grouping_200):
        ring = overlay_200.ring_nodes()
        assert sorted(ring) == list(range(grouping_200.num_nodes))
        hashes = [grouping_200.hash_of(v) for v in ring]
        assert hashes == sorted(hashes)

    def test_successor_predecessor_inverse(self, overlay_200, grouping_200):
        for node in range(grouping_200.num_nodes):
            assert overlay_200.predecessor(overlay_200.successor(node)) == node
            assert overlay_200.successor(overlay_200.predecessor(node)) == node

    def test_successor_is_next_on_ring(self, overlay_200, grouping_200):
        ring = overlay_200.ring_nodes()
        n = len(ring)
        for index, node in enumerate(ring):
            assert overlay_200.successor(node) == ring[(index + 1) % n]

    def test_neighbors_symmetric(self, overlay_200, grouping_200):
        for node in range(grouping_200.num_nodes):
            for neighbor in overlay_200.neighbors(node):
                assert node in overlay_200.neighbors(neighbor)

    def test_no_self_neighbors(self, overlay_200, grouping_200):
        for node in range(grouping_200.num_nodes):
            assert node not in overlay_200.neighbors(node)

    def test_ring_links_present(self, overlay_200, grouping_200):
        for node in range(grouping_200.num_nodes):
            neighbors = overlay_200.neighbors(node)
            assert overlay_200.successor(node) in neighbors
            assert overlay_200.predecessor(node) in neighbors

    def test_outgoing_finger_count(self, grouping_200):
        overlay = DisseminationOverlay(grouping_200, num_fingers=3, seed=2)
        counts = [len(overlay.outgoing_fingers(v)) for v in range(200)]
        assert max(counts) <= 3
        assert sum(counts) > 0

    def test_average_degree_matches_paper(self, grouping_200):
        """~4 connections with 1 finger, ~8 with 3 (counting both directions)."""
        one = DisseminationOverlay(grouping_200, num_fingers=1, seed=3)
        three = DisseminationOverlay(grouping_200, num_fingers=3, seed=3)
        assert 3.0 <= one.average_degree() <= 5.5
        assert 6.0 <= three.average_degree() <= 9.5

    def test_zero_fingers_is_pure_ring(self, grouping_200):
        overlay = DisseminationOverlay(grouping_200, num_fingers=0, seed=1)
        assert all(len(overlay.outgoing_fingers(v)) == 0 for v in range(200))
        assert overlay.average_degree() == pytest.approx(2.0)

    def test_deterministic(self, grouping_200):
        a = DisseminationOverlay(grouping_200, num_fingers=2, seed=9)
        b = DisseminationOverlay(grouping_200, num_fingers=2, seed=9)
        assert all(
            a.outgoing_fingers(v) == b.outgoing_fingers(v) for v in range(200)
        )

    def test_group_neighbors_subset(self, overlay_200):
        for node in (0, 50, 199):
            assert overlay_200.group_neighbors(node) <= overlay_200.neighbors(node)

    def test_fingers_mostly_within_group(self, grouping_200):
        """Fingers are drawn from the node's own group's hash region."""
        overlay = DisseminationOverlay(grouping_200, num_fingers=3, seed=4)
        total, in_group = 0, 0
        for node in range(200):
            for finger in overlay.outgoing_fingers(node):
                total += 1
                if grouping_200.believes_same_group(node, finger):
                    in_group += 1
        assert total > 0
        assert in_group / total >= 0.8


class TestDissemination:
    def test_origin_always_reached(self, overlay_200):
        dissemination = AddressDissemination(overlay_200)
        reached, messages = dissemination.disseminate_from(0)
        assert reached[0] == 0
        assert messages >= 0

    def test_full_coverage_with_uniform_estimates(self, grouping_200):
        overlay = DisseminationOverlay(grouping_200, num_fingers=1, seed=5)
        report = AddressDissemination(overlay).run()
        assert report.coverage == pytest.approx(1.0)

    def test_coverage_robust_to_factor_two_estimate_error(self):
        n = 256
        estimates = {v: float(n) * (0.6 if v % 2 else 1.7) for v in range(n)}
        grouping = make_grouping(n, estimated_n=estimates)
        overlay = DisseminationOverlay(grouping, num_fingers=1, seed=6)
        report = AddressDissemination(overlay).run()
        assert report.coverage >= 0.98

    def test_hop_distances_positive_and_bounded(self, overlay_200):
        report = AddressDissemination(overlay_200).run(origins=range(40))
        assert report.mean_hop_distance > 0
        assert report.max_hop_distance >= report.mean_hop_distance
        assert report.max_hop_distance <= 200

    def test_more_fingers_reduce_hop_distance(self, grouping_200):
        one = AddressDissemination(
            DisseminationOverlay(grouping_200, num_fingers=1, seed=7)
        ).run()
        three = AddressDissemination(
            DisseminationOverlay(grouping_200, num_fingers=3, seed=7)
        ).run()
        assert three.mean_hop_distance <= one.mean_hop_distance + 0.25

    def test_more_fingers_cost_more_messages(self, grouping_200):
        one = AddressDissemination(
            DisseminationOverlay(grouping_200, num_fingers=1, seed=8)
        ).run()
        three = AddressDissemination(
            DisseminationOverlay(grouping_200, num_fingers=3, seed=8)
        ).run()
        assert three.total_messages >= one.total_messages

    def test_messages_bounded_by_overlay_size(self, overlay_200, grouping_200):
        """Direction-monotone forwarding sends each announcement over an
        overlay link at most twice (once per direction)."""
        dissemination = AddressDissemination(overlay_200)
        total_links = sum(
            len(overlay_200.neighbors(v)) for v in range(grouping_200.num_nodes)
        )
        for origin in range(0, 200, 23):
            _, messages = dissemination.disseminate_from(origin)
            assert messages <= total_links

    def test_stored_addresses_only_at_group_members(self, overlay_200, grouping_200):
        dissemination = AddressDissemination(overlay_200)
        stored = dissemination.stored_addresses_from_dissemination(17)
        for holder in stored:
            assert grouping_200.believes_same_group(holder, 17)

    def test_dissemination_matches_static_storage_model(self, grouping_200):
        """Dynamic propagation reaches exactly the holders the static
        core-group model predicts (uniform estimates)."""
        overlay = DisseminationOverlay(grouping_200, num_fingers=1, seed=9)
        dissemination = AddressDissemination(overlay)
        for origin in (0, 41, 133):
            dynamic = dissemination.stored_addresses_from_dissemination(origin)
            static = {
                holder
                for holder in range(grouping_200.num_nodes)
                if grouping_200.stores_address_of(holder, origin)
            }
            assert static <= dynamic

    def test_run_requires_origins(self, overlay_200):
        with pytest.raises(ValueError):
            AddressDissemination(overlay_200).run(origins=[])

    def test_report_messages_per_node(self, overlay_200, grouping_200):
        report = AddressDissemination(overlay_200).run(origins=range(50))
        assert report.messages_per_node == pytest.approx(
            report.total_messages / grouping_200.num_nodes
        )
        assert report.origins == 50
