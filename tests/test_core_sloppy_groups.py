"""Tests for repro.core.sloppy_groups."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sloppy_groups import SloppyGrouping, group_prefix_bits
from repro.naming.hashspace import HASH_BITS, common_prefix_length
from repro.naming.names import name_for_node


def make_grouping(n: int, estimated_n=None) -> SloppyGrouping:
    return SloppyGrouping([name_for_node(v) for v in range(n)], estimated_n)


class TestGroupPrefixBits:
    def test_formula(self):
        n = 4096
        expected = int(math.floor(math.log2(math.sqrt(n) / math.log(n))))
        assert group_prefix_bits(n) == expected

    def test_small_n_is_zero(self):
        assert group_prefix_bits(2) == 0
        assert group_prefix_bits(10) == 0

    def test_monotone_nondecreasing(self):
        values = [group_prefix_bits(n) for n in (16, 256, 4096, 65536, 10**6)]
        assert values == sorted(values)

    def test_changes_only_with_constant_factor(self):
        """Consistency: k is stable under small changes in the estimate."""
        assert group_prefix_bits(10_000) == group_prefix_bits(10_500)

    def test_invalid(self):
        with pytest.raises(ValueError):
            group_prefix_bits(0)

    def test_capped_at_hash_bits(self):
        assert group_prefix_bits(10.0**30) <= HASH_BITS


class TestSloppyGroupingBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SloppyGrouping([])

    def test_default_estimate_is_true_n(self):
        grouping = make_grouping(50)
        assert grouping.estimate_of(3) == 50.0

    def test_scalar_estimate(self):
        grouping = make_grouping(50, estimated_n=200)
        assert grouping.estimate_of(0) == 200.0
        assert grouping.prefix_bits_of(0) == group_prefix_bits(200)

    def test_per_node_estimates(self):
        grouping = make_grouping(10, estimated_n={0: 100.0, 1: 400.0})
        assert grouping.estimate_of(0) == 100.0
        assert grouping.estimate_of(1) == 400.0
        # Missing nodes default to the true n.
        assert grouping.estimate_of(5) == 10.0

    def test_invalid_estimate(self):
        with pytest.raises(ValueError):
            make_grouping(10, estimated_n=0)

    def test_name_and_hash_accessors(self):
        grouping = make_grouping(5)
        assert grouping.name_of(2).label == "node-2"
        assert grouping.hash_of(2) == name_for_node(2).hash_value


class TestGroupMembership:
    def test_owner_in_own_group(self):
        grouping = make_grouping(300)
        for node in (0, 13, 299):
            assert node in grouping.group_of(node)

    def test_group_definition_matches_prefix(self):
        grouping = make_grouping(300)
        node = 7
        k = grouping.prefix_bits_of(node)
        group = grouping.group_of(node)
        for member in group:
            assert common_prefix_length(
                grouping.hash_of(node), grouping.hash_of(member)
            ) >= k

    def test_symmetric_when_estimates_equal(self):
        grouping = make_grouping(400)
        for a, b in ((3, 200), (10, 11), (0, 399)):
            assert grouping.believes_same_group(a, b) == grouping.believes_same_group(
                b, a
            )
            assert grouping.stores_address_of(a, b) == grouping.stores_address_of(b, a)

    def test_stores_own_address(self):
        grouping = make_grouping(100)
        assert grouping.stores_address_of(42, 42)

    def test_stored_addresses_match_pairwise_checks(self):
        grouping = make_grouping(150)
        holder = 5
        stored = grouping.stored_addresses(holder)
        for owner in range(150):
            assert (owner in stored) == grouping.stores_address_of(holder, owner)

    def test_group_sizes_partition_nodes(self):
        grouping = make_grouping(500)
        sizes = grouping.group_sizes()
        assert sum(sizes.values()) == 500
        k = grouping.prefix_bits_of(0)
        assert len(sizes) <= 2**k

    def test_group_sizes_expected_order(self):
        n = 800
        grouping = make_grouping(n)
        sizes = grouping.group_sizes()
        expected = math.sqrt(n) * math.log(n)
        for size in sizes.values():
            assert size >= 0.2 * expected
            assert size <= 4.0 * expected

    def test_core_group_subset_of_group(self):
        grouping = make_grouping(300)
        node = 9
        assert grouping.core_group_of(node) <= grouping.group_of(node)

    def test_single_group_for_tiny_network(self):
        grouping = make_grouping(8)
        assert grouping.group_of(0) == set(range(8))
        assert grouping.stored_addresses(3) == set(range(8))


class TestDisagreeingEstimates:
    def test_factor_two_estimates_differ_by_at_most_one_bit(self):
        """'Nodes will differ by at most one bit in the number of bits k' (§4.4)."""
        for n in (256, 1024, 4096, 16384):
            low = group_prefix_bits(n / 2)
            high = group_prefix_bits(2 * n)
            assert high - low <= 2  # one bit on each side of the true value

    def test_stores_requires_both_prefixes(self):
        n = 2048
        estimates = {0: float(n), 1: float(4 * n)}
        grouping = make_grouping(n, estimated_n=estimates)
        k0 = grouping.prefix_bits_of(0)
        k1 = grouping.prefix_bits_of(1)
        assert k1 > k0
        needed = max(k0, k1)
        expected = (
            common_prefix_length(grouping.hash_of(0), grouping.hash_of(1)) >= needed
        )
        assert grouping.stores_address_of(0, 1) == expected

    def test_believes_uses_own_prefix_length_only(self):
        """believes_same_group(a, b) is evaluated with a's own k, so nodes with
        different estimates can disagree about shared membership."""
        grouping = make_grouping(256, estimated_n={0: 65536.0})
        k_narrow = grouping.prefix_bits_of(0)
        k_wide = grouping.prefix_bits_of(1)
        assert k_narrow > k_wide
        shared = common_prefix_length(grouping.hash_of(0), grouping.hash_of(1))
        assert grouping.believes_same_group(0, 1) == (shared >= k_narrow)
        assert grouping.believes_same_group(1, 0) == (shared >= k_wide)


class TestBestGroupContact:
    def test_empty_candidates(self):
        grouping = make_grouping(50)
        assert grouping.best_group_contact(3, {}) is None

    def test_prefers_longest_prefix_match(self):
        grouping = make_grouping(600)
        target = 17
        candidates = {v: 1.0 for v in range(100, 140)}
        best = grouping.best_group_contact(target, candidates)
        best_match = common_prefix_length(
            grouping.hash_of(best), grouping.hash_of(target)
        )
        for candidate in candidates:
            match = common_prefix_length(
                grouping.hash_of(candidate), grouping.hash_of(target)
            )
            assert match <= best_match

    def test_distance_breaks_ties(self):
        grouping = make_grouping(10)  # k = 0 -> all prefix matches equal length?
        # With k=0 every candidate has some prefix match; craft equal matches by
        # choosing candidates with identical match lengths to the target.
        target = 0
        matches = {
            v: common_prefix_length(grouping.hash_of(v), grouping.hash_of(target))
            for v in range(1, 10)
        }
        best_length = max(matches.values())
        tied = [v for v, m in matches.items() if m == best_length]
        if len(tied) >= 2:
            candidates = {tied[0]: 5.0, tied[1]: 1.0}
            assert grouping.best_group_contact(target, candidates) == tied[1]

    @settings(deadline=None, max_examples=20)
    @given(
        n=st.integers(min_value=20, max_value=300),
        target=st.integers(min_value=0, max_value=19),
    )
    def test_contact_is_always_a_candidate(self, n, target):
        grouping = make_grouping(n)
        candidates = {v: float(v) for v in range(min(15, n))}
        contact = grouping.best_group_contact(target, candidates)
        assert contact in candidates
