"""Differential tests: CSR kernels vs the dict-based reference engine.

The CSR subsystem (:mod:`repro.graphs.csr`) must be a pure performance
change: for every kernel, every topology family, and every truncation mode,
distances *and* predecessors must match the reference implementation
bit-for-bit -- including the shared equal-distance smaller-predecessor
tie-break that this refactor extended from ``dijkstra`` to the truncated
variants.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import _reference_paths as reference
from repro.graphs.csr import CSRGraph, parallel_k_nearest, parallel_radius
from repro.graphs.engine import get_engine, set_engine, use_engine
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    grid_graph,
    ring_graph,
    star_graph,
    two_level_tree,
)
from repro.graphs.shortest_paths import (
    all_pairs_sampled_distances,
    dijkstra,
    dijkstra_k_nearest,
    dijkstra_radius,
)
from repro.graphs.topology import Topology


def _families() -> dict:
    """Topology families covering unit weights, real weights, and tie-heavy
    regular structure."""
    return {
        "gnm": gnm_random_graph(90, seed=3, average_degree=6.0),
        "geometric": geometric_random_graph(90, seed=4, average_degree=7.0),
        "grid": grid_graph(9, 10),
        "two-level-tree": two_level_tree(8),
    }


@pytest.fixture(params=list(_families()))
def family(request):
    return _families()[request.param]


class TestDifferential:
    def test_dijkstra_matches_reference(self, family):
        csr = family.csr()
        for source in range(0, family.num_nodes, 7):
            assert csr.dijkstra(source) == reference.dijkstra(family, source)

    def test_dijkstra_with_targets_matches_reference(self, family):
        csr = family.csr()
        rng = random.Random(5)
        for source in range(0, family.num_nodes, 11):
            targets = rng.sample(range(family.num_nodes), 6)
            assert csr.dijkstra(source, targets=targets) == reference.dijkstra(
                family, source, targets=targets
            )

    def test_k_nearest_matches_reference(self, family):
        csr = family.csr()
        for source in range(0, family.num_nodes, 9):
            for k in (1, 2, 9, 30, family.num_nodes):
                assert csr.dijkstra_k_nearest(
                    source, k
                ) == reference.dijkstra_k_nearest(family, source, k)

    def test_radius_matches_reference(self, family):
        csr = family.csr()
        for source in range(0, family.num_nodes, 9):
            for radius in (0.0, 1.0, 2.0, 2.5, 4.0, 100.0):
                for inclusive in (False, True):
                    assert csr.dijkstra_radius(
                        source, radius, inclusive=inclusive
                    ) == reference.dijkstra_radius(
                        family, source, radius, inclusive=inclusive
                    )

    def test_spt_rows_match_reference(self, family):
        csr = family.csr()
        n = family.num_nodes
        for source in range(0, n, 13):
            distances, parents = reference.dijkstra(family, source)
            dist_row, parent_row = csr.spt_rows(source)
            assert dist_row == [distances.get(v, 0.0) for v in range(n)]
            assert parent_row == [parents.get(v, -1) for v in range(n)]

    def test_batched_target_distances_match_reference(self, family):
        csr = family.csr()
        rng = random.Random(9)
        pairs = [
            (rng.randrange(family.num_nodes), rng.randrange(family.num_nodes))
            for _ in range(40)
        ]
        assert csr.batched_target_distances(
            pairs
        ) == reference.all_pairs_sampled_distances(family, pairs)

    def test_heap_kernel_matches_bfs_on_unit_weights(self):
        # Force the heap kernel onto a unit-weight graph: both code paths
        # must produce identical results.
        topology = gnm_random_graph(80, seed=6, average_degree=5.0)
        bfs = topology.csr()
        assert bfs.unit_weights
        heap = CSRGraph(
            bfs.num_nodes, bfs.offsets, bfs.neighbors, bfs.weights, False
        )
        for source in range(0, 80, 7):
            assert bfs.dijkstra(source) == heap.dijkstra(source)
            assert bfs.spt_rows(source) == heap.spt_rows(source)
            for k in (1, 11, 80):
                assert bfs.dijkstra_k_nearest(source, k) == heap.dijkstra_k_nearest(
                    source, k
                )
            for radius in (0.0, 2.0, 3.0):
                assert bfs.dijkstra_radius(source, radius) == heap.dijkstra_radius(
                    source, radius
                )
                assert bfs.dijkstra_radius(
                    source, radius, inclusive=True
                ) == heap.dijkstra_radius(source, radius, inclusive=True)


class TestSharedTieBreak:
    """The equal-distance smaller-predecessor rule, in every variant.

    On this diamond, node 3 is reachable at distance 2 through both 1 and 2;
    the deterministic choice is predecessor 1.  The seed implementation only
    guaranteed this for ``dijkstra``.
    """

    @pytest.fixture()
    def diamond(self) -> Topology:
        return Topology.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])

    def test_all_variants_agree_on_tied_predecessor(self, diamond):
        _, full = dijkstra(diamond, 0)
        _, near = dijkstra_k_nearest(diamond, 0, 4)
        _, ball = dijkstra_radius(diamond, 0, 2.0, inclusive=True)
        assert full[3] == 1
        assert near == full
        assert ball == full

    def test_weighted_ties_resolved_identically(self):
        # Two equal-cost weighted paths 0->1->4 and 0->2->4 (cost 3.0), plus
        # a decoy: variants must pick predecessor 1 for node 4.
        topology = Topology.from_edges(
            5,
            [(0, 1, 1.0), (0, 2, 2.0), (1, 4, 2.0), (2, 4, 1.0), (0, 3, 5.0)],
        )
        _, full = dijkstra(topology, 0)
        _, near = dijkstra_k_nearest(topology, 0, 5)
        _, ball = dijkstra_radius(topology, 0, 10.0)
        assert full[4] == 1
        assert near == full
        assert ball == full

    def test_variants_agree_on_random_unit_graphs(self):
        # Unit-weight random graphs are tie-heavy; an untruncated k-nearest /
        # radius search must reproduce the full search's predecessor map.
        for seed in range(5):
            topology = gnm_random_graph(60, seed=seed, average_degree=5.0)
            distances, full = dijkstra(topology, 0)
            _, near = dijkstra_k_nearest(topology, 0, topology.num_nodes)
            _, ball = dijkstra_radius(
                topology, 0, max(distances.values()), inclusive=True
            )
            assert near == full
            assert ball == full


class TestCSRCache:
    def test_snapshot_is_cached(self):
        topology = gnm_random_graph(30, seed=1, average_degree=4.0)
        assert topology.csr() is topology.csr()

    def test_add_edge_invalidates_snapshot(self):
        topology = Topology.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        before = topology.csr()
        assert before.dijkstra(0)[0][3] == 3.0
        topology.add_edge(0, 3, 1.0)
        after = topology.csr()
        assert after is not before
        assert after.dijkstra(0)[0][3] == 1.0
        # The public API picks up the new snapshot transparently.
        assert dijkstra(topology, 0)[0][3] == 1.0

    def test_duplicate_edge_weight_update_invalidates(self):
        topology = Topology.from_edges(3, [(0, 1, 2.0), (1, 2, 2.0)])
        before = topology.csr()
        topology.add_edge(0, 1, 0.5)  # collapses to the smaller weight
        assert topology.csr() is not before
        assert dijkstra(topology, 0)[0][1] == 0.5

    def test_redundant_add_edge_keeps_snapshot(self):
        topology = Topology.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        before = topology.csr()
        topology.add_edge(0, 1, 5.0)  # heavier duplicate: no change
        assert topology.csr() is before

    def test_unit_weight_detection(self):
        unit = Topology.from_edges(3, [(0, 1), (1, 2)])
        weighted = Topology.from_edges(3, [(0, 1), (1, 2, 2.5)])
        assert unit.csr().unit_weights
        assert not weighted.csr().unit_weights

    def test_topology_pickles_without_snapshot(self):
        topology = gnm_random_graph(20, seed=2, average_degree=3.0)
        topology.csr()
        clone = pickle.loads(pickle.dumps(topology))
        assert clone == topology
        assert clone.csr().dijkstra(0) == topology.csr().dijkstra(0)


class TestEngineSwitch:
    def test_default_engine_is_csr(self):
        assert get_engine() == "csr"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            set_engine("numpy")

    def test_use_engine_restores_previous(self):
        with use_engine("reference"):
            assert get_engine() == "reference"
            with use_engine("csr"):
                assert get_engine() == "csr"
            assert get_engine() == "reference"
        assert get_engine() == "csr"

    def test_public_api_identical_across_engines(self):
        topology = geometric_random_graph(70, seed=8, average_degree=6.0)
        pairs = [(0, 5), (3, 40), (3, 9), (22, 61)]
        with use_engine("reference"):
            expected = (
                dijkstra(topology, 3),
                dijkstra_k_nearest(topology, 3, 12),
                dijkstra_radius(topology, 3, 2.0),
                all_pairs_sampled_distances(topology, pairs),
            )
        actual = (
            dijkstra(topology, 3),
            dijkstra_k_nearest(topology, 3, 12),
            dijkstra_radius(topology, 3, 2.0),
            all_pairs_sampled_distances(topology, pairs),
        )
        assert actual == expected


class TestBatchedDrivers:
    def test_batched_spt_matches_single(self):
        topology = gnm_random_graph(50, seed=3, average_degree=5.0)
        csr = topology.csr()
        sources = [0, 7, 21]
        batched = {
            source: (dist_row, parent_row)
            for source, dist_row, parent_row in csr.batched_spt(sources)
        }
        for source in sources:
            assert batched[source] == csr.spt_rows(source)

    def test_batched_k_nearest_matches_single(self):
        topology = geometric_random_graph(40, seed=5, average_degree=5.0)
        csr = topology.csr()
        batched = csr.batched_k_nearest(7)
        for node in range(40):
            assert batched[node] == csr.dijkstra_k_nearest(node, 7)

    def test_batched_radius_matches_single(self):
        topology = gnm_random_graph(40, seed=6, average_degree=5.0)
        csr = topology.csr()
        radii = [1.0 + (node % 3) for node in range(40)]
        batched = csr.batched_radius(radii)
        for node in range(40):
            assert batched[node] == csr.dijkstra_radius(node, radii[node])

    def test_batched_radius_rejects_negative(self):
        topology = gnm_random_graph(10, seed=6, average_degree=3.0)
        with pytest.raises(ValueError):
            topology.csr().batched_radius([-1.0] * 10)

    def test_batched_radius_rejects_short_radii(self):
        topology = gnm_random_graph(10, seed=6, average_degree=3.0)
        with pytest.raises(ValueError):
            topology.csr().batched_radius([1.0] * 9)
        with pytest.raises(ValueError):
            topology.csr().batched_radius([1.0] * 4, nodes=[0, 1, 2])

    def test_parallel_fanout_matches_serial(self):
        topology = gnm_random_graph(48, seed=7, average_degree=5.0)
        k = 9
        serial = parallel_k_nearest(topology, k, workers=1)
        fanned = parallel_k_nearest(topology, k, workers=2)
        assert fanned == serial
        radii = [2.0] * 48
        assert parallel_radius(topology, radii, workers=2) == parallel_radius(
            topology, radii, workers=1
        )

    def test_parallel_radius_length_mismatch(self):
        topology = gnm_random_graph(10, seed=8, average_degree=3.0)
        with pytest.raises(ValueError):
            parallel_radius(topology, [1.0] * 3, workers=1)


class TestKernelValidation:
    def test_source_out_of_range(self):
        topology = gnm_random_graph(10, seed=1, average_degree=3.0)
        with pytest.raises(ValueError):
            topology.csr().dijkstra(10)
        with pytest.raises(ValueError):
            topology.csr().dijkstra(-1)

    def test_invalid_k_and_radius(self):
        topology = gnm_random_graph(10, seed=1, average_degree=3.0)
        with pytest.raises(ValueError):
            topology.csr().dijkstra_k_nearest(0, 0)
        with pytest.raises(ValueError):
            topology.csr().dijkstra_radius(0, -0.5)

    def test_unreachable_target_raises(self):
        topology = Topology.from_edges(4, [(0, 1)])
        with pytest.raises(ValueError):
            topology.csr().batched_target_distances([(0, 3)])

    def test_num_edges(self):
        topology = gnm_random_graph(30, seed=2, average_degree=4.0)
        assert topology.csr().num_edges == topology.num_edges


class TestPropertyBased:
    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_dijkstra_differential_random_gnm(self, seed):
        topology = gnm_random_graph(30, seed=seed, average_degree=4.0)
        assert topology.csr().dijkstra(0) == reference.dijkstra(topology, 0)

    @settings(deadline=None, max_examples=30)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=30),
    )
    def test_k_nearest_differential_random_gnm(self, seed, k):
        topology = gnm_random_graph(25, seed=seed, average_degree=4.0)
        assert topology.csr().dijkstra_k_nearest(
            0, k
        ) == reference.dijkstra_k_nearest(topology, 0, k)

    @settings(deadline=None, max_examples=30)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        radius=st.floats(min_value=0.0, max_value=0.6),
        inclusive=st.booleans(),
    )
    def test_radius_differential_random_geometric(self, seed, radius, inclusive):
        topology = geometric_random_graph(25, seed=seed, average_degree=4.0)
        assert topology.csr().dijkstra_radius(
            0, radius, inclusive=inclusive
        ) == reference.dijkstra_radius(topology, 0, radius, inclusive=inclusive)

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_tie_break_structured_families(self, seed):
        rng = random.Random(seed)
        topology = {
            0: lambda: star_graph(12),
            1: lambda: ring_graph(14),
            2: lambda: grid_graph(4, 5),
            3: lambda: two_level_tree(5),
        }[seed % 4]()
        source = rng.randrange(topology.num_nodes)
        assert topology.csr().dijkstra(source) == reference.dijkstra(
            topology, source
        )
        k = rng.randint(1, topology.num_nodes)
        assert topology.csr().dijkstra_k_nearest(
            source, k
        ) == reference.dijkstra_k_nearest(topology, source, k)
