"""Churn-path cache audit (regression).

``Topology`` caches three derived artifacts -- the CSR kernel snapshot
(``csr()``), the ``weight_profile()``, and the ``content_key()`` the
artifact cache keys substrates by.  Every mutation path a churn workload
can take (edge-down, edge-up, weight replacement, direct ``add_edge``) must
invalidate all three together, and a shared-memory publication taken after
a mutation must reflect the mutated edge set -- a stale snapshot served to
a worker would silently corrupt a parallel run.
"""

from __future__ import annotations

from repro.dynamics.churn import (
    ChurnEvent,
    apply_event,
    generate_churn_workload,
)
from repro.graphs.csr import CSRGraph, SharedCSR
from repro.graphs.generators import gnm_random_graph


def _snapshot_edges(csr: CSRGraph) -> set[tuple[int, int, float]]:
    """Decode the undirected edge set out of a CSR snapshot (or view)."""
    edges = set()
    offsets = list(csr.offsets)
    neighbors = list(csr.neighbors)
    weights = list(csr.weights)
    for node in range(csr.num_nodes):
        for position in range(offsets[node], offsets[node + 1]):
            neighbor = neighbors[position]
            if node < neighbor:
                edges.add((node, neighbor, weights[position]))
    return edges


class TestMutationInvalidation:
    def test_add_edge_invalidates_all_derived_caches(self):
        topology = gnm_random_graph(64, seed=3, average_degree=6.0)
        csr = topology.csr()
        profile = topology.weight_profile()
        key = topology.content_key()
        topology.add_edge(0, 63, 0.3)  # irregular weight: profile must change
        assert topology.csr() is not csr
        assert topology.weight_profile() is not profile
        assert topology.weight_profile().min_weight == 0.3
        assert topology.content_key() != key
        assert topology.csr().num_edges == csr.num_edges + 1

    def test_weight_replacement_invalidates(self):
        topology = gnm_random_graph(64, seed=3, average_degree=6.0)
        u, v, weight = next(iter(topology.edges()))
        key = topology.content_key()
        csr = topology.csr()
        topology.add_edge(u, v, weight / 2.0)  # parallel edge -> min weight
        assert topology.content_key() != key
        assert topology.csr() is not csr
        assert topology.edge_weight(u, v) == weight / 2.0

    def test_copy_does_not_share_caches(self):
        topology = gnm_random_graph(64, seed=3, average_degree=6.0)
        csr = topology.csr()
        duplicate = topology.copy()
        assert duplicate.content_key() == topology.content_key()
        assert duplicate.csr() is not csr


class TestChurnWorkloadInvalidation:
    def test_edge_down_and_up_produce_fresh_snapshots(self):
        topology = gnm_random_graph(96, seed=7, average_degree=8.0)
        workload = generate_churn_workload(topology, num_events=4, seed=5)
        current = topology
        for event in workload:
            mutated = apply_event(current, event)
            # The mutated topology's derived views reflect the event ...
            expected_edges = current.num_edges + (
                1 if event.kind == "edge-up" else -1
            )
            assert mutated.num_edges == expected_edges
            assert mutated.csr().num_edges == expected_edges
            assert mutated.content_key() != current.content_key()
            # ... and the base topology's caches are untouched.
            assert current.csr().num_edges == current.num_edges
            current = mutated

    def test_workload_apply_matches_event_replay(self):
        topology = gnm_random_graph(96, seed=7, average_degree=8.0)
        workload = generate_churn_workload(
            topology, num_events=5, seed=9, recover=False
        )
        replayed = topology
        for event in workload:
            replayed = apply_event(replayed, event)
        applied = workload.apply(topology)
        assert applied == replayed
        assert applied.content_key() == replayed.content_key()


class TestNoStaleSharedSnapshots:
    def test_publication_after_mutation_reflects_new_edges(self):
        topology = gnm_random_graph(96, seed=7, average_degree=8.0)
        with SharedCSR(topology.csr()) as before:
            before_view = CSRGraph.from_shared(before.handle)
            u, v, weight = next(iter(topology.edges()))
            down = ChurnEvent(kind="edge-down", edge=(u, v), weight=weight)
            mutated = apply_event(topology, down)
            with SharedCSR(mutated.csr()) as after:
                after_view = CSRGraph.from_shared(after.handle)
                before_edges = _snapshot_edges(before_view)
                after_edges = _snapshot_edges(after_view)
                assert (u, v, weight) in before_edges
                assert (u, v, weight) not in after_edges
                assert after_edges == before_edges - {(u, v, weight)}

    def test_in_place_mutation_never_reuses_published_snapshot(self):
        topology = gnm_random_graph(96, seed=7, average_degree=8.0)
        csr = topology.csr()
        with SharedCSR(csr) as shared:
            view = CSRGraph.from_shared(shared.handle)
            topology.add_edge(0, 95, 2.0)
            fresh = topology.csr()
            # The mutated topology hands out a new snapshot; the published
            # view still shows the old edge set (immutable by contract).
            assert fresh is not csr
            assert fresh.num_edges == view.num_edges + 1
            assert (0, 95, 2.0) not in _snapshot_edges(view)
            assert (0, 95, 2.0) in _snapshot_edges(fresh)
