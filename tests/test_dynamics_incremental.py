"""Differential tests for the event-driven churn engine.

The engine's contract is *bit-identity*: after any event stream, its
incrementally maintained state (landmark SPT distances and parents,
closest-landmark folds, vicinities, addresses) must equal what full
reconvergence on the mutated topology produces.  These tests pin that
contract three ways:

* property-based seeded event streams (edge up/down/reweight, node
  leave/join, including landmark failure) across the gnm / geometric /
  router-level topology families, checked after *every* event against a
  from-scratch engine on the same topology;
* full :class:`NDDiscoRouting` state parity and per-event
  :func:`maintenance_cost` bill parity against the replay oracle on
  connectivity-preserving streams;
* :func:`apply_maintenance` slab patches byte-identical to rebuilding
  :class:`SubstrateTables` from scratch.

Plus the maintenance edge cases (events at dead nodes, duplicate events
in one tick, partitions isolating every landmark, healing after a full
partition) and the flat-array :class:`EventCalendar` semantics.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.addressing.labels import LabelCodec
from repro.core.landmarks import select_landmarks
from repro.core.nddisco import NDDiscoRouting
from repro.core.substrate_build import apply_maintenance, build_substrate_tables
from repro.core.tables import _TABLE_SLOTS, _VICINITY_SLOTS
from repro.dynamics import (
    ChurnEngine,
    DynEvent,
    EventCalendar,
    events_from_workload,
    generate_churn_workload,
    generate_event_stream,
    maintenance_cost,
)
from repro.dynamics.churn import apply_event
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_router_level,
)
from repro.graphs.incremental import (
    repair_after_decrease,
    repair_after_increase,
    spt_dense,
)
from repro.graphs.topology import Topology

_SETTINGS = settings(
    deadline=None,
    max_examples=6,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _make_topology(family: str, seed: int) -> Topology:
    if family == "gnm":
        return gnm_random_graph(40, seed=seed, average_degree=5.0)
    if family == "geometric":
        return geometric_random_graph(40, seed=seed, average_degree=5.0)
    return internet_router_level(48, seed=seed)


def _oracle(engine: ChurnEngine) -> ChurnEngine:
    """Full reconvergence on the engine's current (mutated) topology."""
    oracle = ChurnEngine(
        engine.topology, seed=0, landmarks=sorted(engine.landmarks)
    )
    oracle._dead = set(engine.dead_nodes)
    return oracle


class TestEventCalendar:
    def test_drains_in_tick_order_fifo_within_tick(self):
        calendar = EventCalendar(horizon=4)
        events = [
            DynEvent(2, "edge-down", 0, 1),
            DynEvent(0, "edge-down", 2, 3),
            DynEvent(2, "edge-up", 4, 5, 1.0),
            DynEvent(1, "node-leave", 6),
            DynEvent(2, "edge-down", 7, 8),
        ]
        calendar.extend(events)
        drained = list(calendar.drain())
        assert [e.tick for e in drained] == [0, 1, 2, 2, 2]
        # FIFO among same-tick events: schedule order preserved.
        assert drained[2:] == [events[0], events[2], events[4]]

    def test_grows_past_horizon(self):
        calendar = EventCalendar(horizon=2)
        events = [DynEvent(t, "edge-down", t, t + 1) for t in (0, 7, 3, 7)]
        calendar.extend(events)
        assert [e.tick for e in calendar.drain()] == [0, 3, 7, 7]

    def test_growth_triggering_event_is_threaded_once(self):
        # Regression: the event whose schedule() call grows the ring used
        # to be appended before _grow re-threaded the arrays, so it was
        # threaded twice -- a self-loop in the next chain that replayed
        # one event until the pending count drained and dropped the rest.
        # The loop was only visible when no later event landed in the
        # same bucket to overwrite it.
        calendar = EventCalendar(horizon=2)
        ticks = [1, 100, 200, 300]
        for tick in ticks:
            calendar.schedule(DynEvent(tick, "node-leave", tick))
        drained = list(calendar.drain())
        assert [e.tick for e in drained] == ticks
        assert [e.u for e in drained] == ticks

    def test_rejects_past_ticks(self):
        calendar = EventCalendar()
        calendar.schedule(DynEvent(5, "edge-down", 0, 1))
        assert calendar.pop().tick == 5
        with pytest.raises(ValueError):
            calendar.schedule(DynEvent(4, "edge-down", 0, 1))

    def test_pop_on_empty_returns_none(self):
        calendar = EventCalendar()
        assert calendar.pop() is None
        calendar.schedule(DynEvent(1, "edge-down", 0, 1))
        assert calendar.pop() is not None
        assert calendar.pop() is None


class TestIncrementalSPTRepair:
    """The repair primitives against a from-scratch canonical Dijkstra."""

    @given(
        family=st.sampled_from(["gnm", "geometric"]),
        seed=st.integers(0, 30),
        pick=st.integers(0, 10**6),
    )
    @_SETTINGS
    def test_edge_removal_repair_matches_recompute(self, family, seed, pick):
        topology = _make_topology(family, seed)
        edges = list(topology.edges())
        u, v, _ = edges[pick % len(edges)]
        root = pick % topology.num_nodes
        dist, parent = spt_dense(topology, root)
        topology.remove_edge(u, v)
        repair_after_increase(topology, dist, parent, root, u, v)
        fresh_dist, fresh_parent = spt_dense(topology, root)
        assert dist == fresh_dist
        assert parent == fresh_parent

    @given(
        family=st.sampled_from(["gnm", "geometric"]),
        seed=st.integers(0, 30),
        pick=st.integers(0, 10**6),
    )
    @_SETTINGS
    def test_edge_insert_repair_matches_recompute(self, family, seed, pick):
        topology = _make_topology(family, seed)
        n = topology.num_nodes
        u, v = pick % n, (pick // n) % n
        if u == v or topology.has_edge(u, v):
            return
        root = pick % n
        dist, parent = spt_dense(topology, root)
        topology.add_edge(u, v, 1.0 + (pick % 3) * 0.25)
        repair_after_decrease(topology, dist, parent, root, u, v)
        fresh_dist, fresh_parent = spt_dense(topology, root)
        assert dist == fresh_dist
        assert parent == fresh_parent


class TestEngineDifferential:
    """Incremental maintenance is bit-identical to full reconvergence."""

    @given(
        family=st.sampled_from(["gnm", "geometric", "router"]),
        stream_seed=st.integers(0, 40),
    )
    @_SETTINGS
    def test_mixed_streams_match_full_reconvergence(self, family, stream_seed):
        topology = _make_topology(family, stream_seed)
        events = generate_event_stream(
            topology, num_events=10, seed=stream_seed
        )
        engine = ChurnEngine(topology, seed=0)
        for event in events:
            engine.apply(event)
            assert (
                engine.state_signature() == _oracle(engine).state_signature()
            ), event

    def test_landmark_failure_and_rejoin(self):
        topology = gnm_random_graph(48, seed=6, average_degree=6.0)
        engine = ChurnEngine(topology, seed=1)
        landmark = min(engine.landmarks)
        engine.apply(DynEvent(0, "node-leave", landmark))
        assert landmark in engine.dead_nodes
        # The dead landmark's row folds to unreachable for everyone else,
        # and every survivor refolds onto a live landmark.
        dist_row, _ = engine.landmark_row(landmark)
        assert dist_row[landmark] == 0.0
        assert all(
            d == math.inf
            for node, d in enumerate(dist_row)
            if node != landmark
        )
        closest, _ = engine.closest_landmark_rows
        assert all(
            closest[node] != landmark
            for node in range(engine.num_nodes)
            if node != landmark
        )
        assert engine.state_signature() == _oracle(engine).state_signature()
        engine.apply(DynEvent(1, "node-join", landmark))
        assert engine.state_signature() == _oracle(engine).state_signature()
        # Fully healed: identical to a converged engine on the original
        # topology (node-join restores the exact captured edges).
        pristine = ChurnEngine(
            topology, seed=1, landmarks=sorted(engine.landmarks)
        )
        assert engine.state_signature() == pristine.state_signature()

    def test_matches_nddisco_state_after_connected_stream(self):
        topology = gnm_random_graph(48, seed=3, average_degree=6.0)
        landmarks = select_landmarks(48, seed=3)
        workload = generate_churn_workload(topology, num_events=8, seed=11)
        engine = ChurnEngine(topology, seed=3, landmarks=landmarks)
        engine.run(events_from_workload(workload.events))
        current = topology
        for event in workload.events:
            current = apply_event(current, event)
        routing = NDDiscoRouting(current, seed=3, landmarks=landmarks)
        assert (
            engine.state_signature()
            == ChurnEngine.from_routing(routing).state_signature()
        )

    def test_per_event_bills_match_replay_oracle(self):
        topology = gnm_random_graph(48, seed=4, average_degree=6.0)
        landmarks = select_landmarks(48, seed=4)
        workload = generate_churn_workload(topology, num_events=8, seed=21)
        engine = ChurnEngine(topology, seed=4, landmarks=landmarks)
        reports = engine.run(events_from_workload(workload.events))
        current = topology
        state = NDDiscoRouting(current, seed=4, landmarks=landmarks)
        for report, event in zip(reports, workload.events):
            current = apply_event(current, event)
            next_state = NDDiscoRouting(current, seed=4, landmarks=landmarks)
            assert report.applied
            assert report.cost == maintenance_cost(state, next_state)
            state = next_state

    def test_from_routing_equals_direct_convergence(self):
        topology = geometric_random_graph(40, seed=7, average_degree=5.0)
        routing = NDDiscoRouting(topology, seed=7)
        adopted = ChurnEngine.from_routing(routing)
        direct = ChurnEngine(
            topology, seed=7, landmarks=sorted(routing.landmarks)
        )
        assert adopted.state_signature() == direct.state_signature()


def _two_cliques(bridge_weight: float = 1.0) -> Topology:
    """Two 4-cliques joined by the single bridge edge (3, 4)."""
    topology = Topology(8)
    for base in (0, 4):
        for i in range(base, base + 4):
            for j in range(i + 1, base + 4):
                topology.add_edge(i, j, 1.0)
    topology.add_edge(3, 4, bridge_weight)
    return topology


class TestMaintenanceEdgeCases:
    def test_event_at_dead_node_is_noop(self):
        topology = gnm_random_graph(32, seed=2, average_degree=5.0)
        engine = ChurnEngine(topology, seed=0)
        engine.apply(DynEvent(0, "node-leave", 5))
        before = engine.state_signature()
        for event in (
            DynEvent(1, "edge-down", 5, 6),
            DynEvent(1, "edge-up", 5, 7, 1.0),
            DynEvent(1, "edge-reweight", 5, 6, 2.0),
            DynEvent(1, "node-leave", 5),
        ):
            report = engine.apply(event)
            assert not report.applied
            assert report.cost.total_incremental_entries == 0
        assert engine.state_signature() == before

    def test_duplicate_events_in_one_tick(self):
        topology = gnm_random_graph(32, seed=2, average_degree=5.0)
        u, v, _ = next(iter(sorted(topology.edges())))
        engine = ChurnEngine(topology, seed=0)
        first, second = engine.run(
            [
                DynEvent(0, "edge-down", u, v),
                DynEvent(0, "edge-down", u, v),
            ]
        )
        assert first.applied and not second.applied
        assert engine.state_signature() == _oracle(engine).state_signature()

    def test_partition_isolating_every_landmark(self):
        topology = _two_cliques()
        engine = ChurnEngine(topology, seed=0, landmarks=[0, 1])
        engine.apply(DynEvent(0, "edge-down", 3, 4))
        # Every node in the far clique has no reachable landmark: no
        # closest fold, no address -- and the engine still matches full
        # reconvergence on the partitioned topology.
        closest, closest_dist = engine.closest_landmark_rows
        for node in range(4, 8):
            assert closest[node] == -1
            assert closest_dist[node] == math.inf
            assert engine.addresses[node] is None
        for node in range(4):
            assert closest[node] in (0, 1)
            assert engine.addresses[node] is not None
        assert engine.state_signature() == _oracle(engine).state_signature()

    def test_heal_after_full_partition(self):
        topology = _two_cliques()
        engine = ChurnEngine(topology, seed=0, landmarks=[0, 1])
        engine.apply(DynEvent(0, "edge-down", 3, 4))
        engine.apply(DynEvent(1, "edge-up", 3, 4, 1.0))
        pristine = ChurnEngine(topology, seed=0, landmarks=[0, 1])
        assert engine.state_signature() == pristine.state_signature()
        # And addresses exist again for the formerly isolated side.
        assert all(
            engine.addresses[node] is not None for node in range(8)
        )


class TestSubstrateMaintenance:
    def test_patched_slabs_match_scratch_rebuild(self):
        """apply_maintenance produces byte-identical SubstrateTables."""
        topology = gnm_random_graph(48, seed=5, average_degree=6.0)
        landmarks = select_landmarks(48, seed=5)
        codec = LabelCodec(topology)
        tables = build_substrate_tables(topology, landmarks, codec=codec)
        engine = ChurnEngine(topology, seed=5, landmarks=landmarks)
        workload = generate_churn_workload(topology, num_events=6, seed=13)
        for event in events_from_workload(workload.events):
            engine.apply(event)
            codec = LabelCodec(engine.topology)
            apply_maintenance(tables, engine, codec=codec)
            fresh = build_substrate_tables(
                engine.topology, landmarks, codec=codec
            )
            for slot, _ in _TABLE_SLOTS:
                assert list(getattr(tables, slot)) == list(
                    getattr(fresh, slot)
                ), slot
            for slot, _ in _VICINITY_SLOTS:
                assert list(getattr(tables.vicinity, slot)) == list(
                    getattr(fresh.vicinity, slot)
                ), slot

    def test_take_dirty_drains_accumulated_state(self):
        topology = gnm_random_graph(32, seed=2, average_degree=5.0)
        u, v, _ = next(iter(sorted(topology.edges())))
        engine = ChurnEngine(topology, seed=0)
        assert not engine.take_dirty()
        engine.apply(DynEvent(0, "edge-down", u, v))
        dirty = engine.take_dirty()
        assert dirty
        assert not engine.take_dirty()
