"""Tests for repro.graphs.shortest_paths, including networkx oracles."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import gnm_random_graph
from repro.graphs.shortest_paths import (
    all_pairs_sampled_distances,
    dijkstra,
    dijkstra_k_nearest,
    dijkstra_radius,
    extract_path,
    path_length,
    shortest_path,
    shortest_path_tree,
)
from repro.graphs.topology import Topology


@pytest.fixture()
def weighted_graph() -> Topology:
    """A small weighted graph with a known structure.

        0 -1- 1 -1- 2
        |         /
        4       1
        |     /
        3 --/
    """
    topology = Topology(4)
    topology.add_edge(0, 1, 1.0)
    topology.add_edge(1, 2, 1.0)
    topology.add_edge(0, 3, 4.0)
    topology.add_edge(2, 3, 1.0)
    return topology


class TestDijkstra:
    def test_distances(self, weighted_graph):
        distances, _ = dijkstra(weighted_graph, 0)
        assert distances == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}

    def test_predecessors_form_paths(self, weighted_graph):
        _, predecessors = dijkstra(weighted_graph, 0)
        assert extract_path(predecessors, 0, 3) == [0, 1, 2, 3]

    def test_targets_early_stop_still_correct(self, weighted_graph):
        distances, _ = dijkstra(weighted_graph, 0, targets=[1])
        assert distances[1] == 1.0

    def test_source_only_in_singleton(self):
        topology = Topology(1)
        distances, predecessors = dijkstra(topology, 0)
        assert distances == {0: 0.0}
        assert predecessors == {}

    def test_unreachable_nodes_absent(self):
        topology = Topology.from_edges(4, [(0, 1)])
        distances, _ = dijkstra(topology, 0)
        assert 2 not in distances
        assert 3 not in distances

    def test_matches_networkx_on_random_graph(self):
        topology = gnm_random_graph(60, seed=9, average_degree=5.0)
        graph = topology.to_networkx()
        for source in (0, 7, 31):
            distances, _ = dijkstra(topology, source)
            expected = nx.single_source_dijkstra_path_length(graph, source)
            assert distances == pytest.approx(expected)

    def test_matches_networkx_on_weighted_graph(self):
        from repro.graphs.generators import geometric_random_graph

        topology = geometric_random_graph(80, seed=10, average_degree=7.0)
        graph = topology.to_networkx()
        distances, _ = dijkstra(topology, 5)
        expected = nx.single_source_dijkstra_path_length(graph, 5)
        assert set(distances) == set(expected)
        for node, value in expected.items():
            assert distances[node] == pytest.approx(value)


class TestDijkstraKNearest:
    def test_returns_exactly_k(self, weighted_graph):
        distances, _ = dijkstra_k_nearest(weighted_graph, 0, 2)
        assert len(distances) == 2
        assert set(distances) == {0, 1}

    def test_k_larger_than_component(self, weighted_graph):
        distances, _ = dijkstra_k_nearest(weighted_graph, 0, 100)
        assert len(distances) == 4

    def test_members_are_the_closest(self):
        topology = gnm_random_graph(50, seed=4, average_degree=5.0)
        k = 10
        near, _ = dijkstra_k_nearest(topology, 0, k)
        full, _ = dijkstra(topology, 0)
        cutoff = max(near.values())
        # Every node strictly closer than the cutoff must be included.
        for node, distance in full.items():
            if distance < cutoff:
                assert node in near

    def test_invalid_k(self, weighted_graph):
        with pytest.raises(ValueError):
            dijkstra_k_nearest(weighted_graph, 0, 0)

    def test_paths_extractable(self, weighted_graph):
        distances, predecessors = dijkstra_k_nearest(weighted_graph, 0, 3)
        for node in distances:
            path = extract_path(predecessors, 0, node)
            assert path[0] == 0
            assert path[-1] == node


class TestDijkstraRadius:
    def test_strict_boundary(self, weighted_graph):
        distances, _ = dijkstra_radius(weighted_graph, 0, 2.0)
        assert set(distances) == {0, 1}  # node 2 is at exactly 2.0 -> excluded

    def test_inclusive_boundary(self, weighted_graph):
        distances, _ = dijkstra_radius(weighted_graph, 0, 2.0, inclusive=True)
        assert set(distances) == {0, 1, 2}

    def test_zero_radius_returns_source(self, weighted_graph):
        distances, _ = dijkstra_radius(weighted_graph, 0, 0.0)
        assert set(distances) == {0}

    def test_negative_radius_rejected(self, weighted_graph):
        with pytest.raises(ValueError):
            dijkstra_radius(weighted_graph, 0, -1.0)

    def test_radius_covers_whole_graph(self, weighted_graph):
        distances, _ = dijkstra_radius(weighted_graph, 0, 100.0)
        assert len(distances) == 4


class TestPathHelpers:
    def test_extract_path_source_equals_target(self):
        assert extract_path({}, 3, 3) == [3]

    def test_extract_path_unreachable_raises(self):
        with pytest.raises(ValueError):
            extract_path({}, 0, 5)

    def test_extract_path_cycle_detection(self):
        with pytest.raises(ValueError):
            extract_path({1: 2, 2: 1}, 0, 1)

    def test_shortest_path_endpoints(self, weighted_graph):
        path = shortest_path(weighted_graph, 0, 3)
        assert path == [0, 1, 2, 3]

    def test_path_length(self, weighted_graph):
        assert path_length(weighted_graph, [0, 1, 2, 3]) == pytest.approx(3.0)

    def test_path_length_single_node(self, weighted_graph):
        assert path_length(weighted_graph, [2]) == 0.0

    def test_path_length_invalid_edge(self, weighted_graph):
        with pytest.raises(ValueError):
            path_length(weighted_graph, [0, 2])

    def test_path_length_empty_raises(self, weighted_graph):
        with pytest.raises(ValueError):
            path_length(weighted_graph, [])

    def test_shortest_path_tree_is_full_dijkstra(self, weighted_graph):
        distances, _ = shortest_path_tree(weighted_graph, 2)
        assert len(distances) == 4


class TestAllPairsSampled:
    def test_matches_individual_queries(self, weighted_graph):
        pairs = [(0, 3), (3, 0), (1, 2)]
        result = all_pairs_sampled_distances(weighted_graph, pairs)
        assert result[(0, 3)] == pytest.approx(3.0)
        assert result[(3, 0)] == pytest.approx(3.0)
        assert result[(1, 2)] == pytest.approx(1.0)

    def test_unreachable_pair_raises(self):
        topology = Topology.from_edges(4, [(0, 1)])
        with pytest.raises(ValueError):
            all_pairs_sampled_distances(topology, [(0, 3)])

    def test_groups_by_source(self):
        topology = gnm_random_graph(40, seed=8, average_degree=5.0)
        pairs = [(0, 5), (0, 7), (3, 9)]
        result = all_pairs_sampled_distances(topology, pairs)
        assert set(result) == set(pairs)


class TestPropertyBased:
    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_dijkstra_matches_networkx_random_seeds(self, seed):
        topology = gnm_random_graph(30, seed=seed, average_degree=4.0)
        graph = topology.to_networkx()
        distances, _ = dijkstra(topology, 0)
        expected = nx.single_source_dijkstra_path_length(graph, 0)
        assert distances == pytest.approx(expected)

    @settings(deadline=None, max_examples=25)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=20),
    )
    def test_k_nearest_is_prefix_of_full_ordering(self, seed, k):
        topology = gnm_random_graph(25, seed=seed, average_degree=4.0)
        near, _ = dijkstra_k_nearest(topology, 0, k)
        full, _ = dijkstra(topology, 0)
        ordered = sorted(full.values())
        expected_count = min(k, len(full))
        assert len(near) == expected_count
        assert max(near.values()) <= ordered[expected_count - 1] + 1e-9
