"""Tests for repro.utils.distributions."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.distributions import Summary, cdf_points, percentile, summarize


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0
        assert percentile([5.0], 0) == 5.0
        assert percentile([5.0], 100) == 5.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == 2.0

    def test_min_and_max(self):
        data = [4.0, 1.0, 9.0, 2.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_interpolation(self):
        # Ranks: 0, 1, 2, 3 -> p25 falls at rank 0.75 between 1 and 2.
        assert percentile([1.0, 2.0, 3.0, 4.0], 25) == pytest.approx(1.75)

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 50) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)

    def test_matches_numpy(self):
        numpy = pytest.importorskip("numpy")
        data = [3.2, 1.1, 8.9, 4.4, 2.0, 7.7, 0.5]
        for q in (0, 10, 25, 50, 75, 90, 95, 99, 100):
            assert percentile(data, q) == pytest.approx(
                float(numpy.percentile(data, q))
            )

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
        st.floats(min_value=0, max_value=100),
    )
    def test_result_within_data_range(self, data, q):
        value = percentile(data, q)
        assert min(data) <= value <= max(data)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=30))
    def test_monotone_in_q(self, data):
        values = [percentile(data, q) for q in (0, 25, 50, 75, 100)]
        spread = max(data) - min(data)
        tolerance = 1e-12 * max(spread, 1.0)
        for lower, higher in zip(values, values[1:]):
            assert lower <= higher + tolerance


class TestCdfPoints:
    def test_empty(self):
        assert cdf_points([]) == []

    def test_simple(self):
        points = cdf_points([1, 2, 3, 4])
        assert points == [(1, 0.25), (2, 0.5), (3, 0.75), (4, 1.0)]

    def test_duplicates_collapse(self):
        points = cdf_points([1, 1, 2])
        assert points == [(1, pytest.approx(2 / 3)), (2, pytest.approx(1.0))]

    def test_last_fraction_is_one(self):
        points = cdf_points([5.0, 3.0, 3.0, 9.0])
        assert points[-1][1] == pytest.approx(1.0)

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=60))
    def test_fractions_nondecreasing_and_values_sorted(self, data):
        points = cdf_points(data)
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.stdev == 0.0
        assert summary.p95 == 7.0

    def test_stdev(self):
        summary = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert summary.stdev == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        summary = summarize([1.0, 2.0])
        d = summary.as_dict()
        assert set(d) == {
            "count", "mean", "min", "max", "median", "p95", "p99", "stdev",
        }

    def test_is_frozen_dataclass(self):
        summary = summarize([1.0])
        with pytest.raises(AttributeError):
            summary.mean = 10.0  # type: ignore[misc]

    @given(
        st.lists(
            st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    def test_invariants(self, data):
        summary = summarize(data)
        assert summary.minimum <= summary.mean <= summary.maximum
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.stdev >= 0.0
        assert summary.count == len(data)
        assert not math.isnan(summary.mean)

    def test_summary_is_hashable_type(self):
        assert isinstance(summarize([1.0, 2.0]), Summary)
