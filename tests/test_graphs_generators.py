"""Tests for repro.graphs.generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    grid_graph,
    internet_as_level,
    internet_router_level,
    line_graph,
    ring_graph,
    star_graph,
    two_level_tree,
)


class TestGnmRandomGraph:
    def test_node_and_edge_counts(self):
        topology = gnm_random_graph(100, 300, seed=1)
        assert topology.num_nodes == 100
        # _ensure_connected may add a handful of stitching edges.
        assert 300 <= topology.num_edges <= 310

    def test_average_degree_default(self):
        topology = gnm_random_graph(200, seed=2)
        assert topology.average_degree() == pytest.approx(8.0, rel=0.1)

    def test_connected(self):
        for seed in range(5):
            assert gnm_random_graph(80, seed=seed, average_degree=4.0).is_connected()

    def test_deterministic(self):
        a = gnm_random_graph(50, seed=7)
        b = gnm_random_graph(50, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        assert gnm_random_graph(50, seed=1) != gnm_random_graph(50, seed=2)

    def test_unit_weights(self):
        topology = gnm_random_graph(30, seed=3)
        assert all(w == 1.0 for _, _, w in topology.edges())

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            gnm_random_graph(5, 100)

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            gnm_random_graph(0)


class TestGeometricRandomGraph:
    def test_connected_and_sized(self):
        topology = geometric_random_graph(150, seed=1)
        assert topology.num_nodes == 150
        assert topology.is_connected()

    def test_average_degree_reasonable(self):
        topology = geometric_random_graph(300, seed=2, average_degree=8.0)
        assert 5.0 <= topology.average_degree() <= 12.0

    def test_weights_are_latencies(self):
        topology = geometric_random_graph(100, seed=3, latency_scale=100.0)
        weights = [w for _, _, w in topology.edges()]
        assert all(w > 0 for w in weights)
        assert any(w != 1.0 for w in weights)

    def test_deterministic(self):
        assert geometric_random_graph(60, seed=5) == geometric_random_graph(60, seed=5)

    def test_latency_scale_scales_weights(self):
        small = geometric_random_graph(60, seed=5, latency_scale=1.0)
        large = geometric_random_graph(60, seed=5, latency_scale=10.0)
        assert large.total_weight() == pytest.approx(10.0 * small.total_weight(), rel=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            geometric_random_graph(0)
        with pytest.raises(ValueError):
            geometric_random_graph(10, average_degree=0)


class TestInternetLikeGenerators:
    def test_as_level_connected(self):
        topology = internet_as_level(200, seed=1)
        assert topology.is_connected()
        assert topology.num_nodes == 200

    def test_as_level_heavy_tail(self):
        topology = internet_as_level(400, seed=2)
        degrees = sorted(topology.degree_sequence(), reverse=True)
        # Preferential attachment: the hub is far above the median degree.
        assert degrees[0] >= 5 * degrees[len(degrees) // 2]

    def test_as_level_unit_weights(self):
        topology = internet_as_level(100, seed=3)
        assert all(w == 1.0 for _, _, w in topology.edges())

    def test_as_level_rejects_tiny(self):
        with pytest.raises(ValueError):
            internet_as_level(2, attachment_edges=2)

    def test_router_level_connected(self):
        topology = internet_router_level(300, seed=1)
        assert topology.is_connected()
        assert topology.num_nodes == 300

    def test_router_level_has_low_degree_stubs_and_hubs(self):
        topology = internet_router_level(400, seed=2)
        degrees = topology.degree_sequence()
        assert min(degrees) <= 2
        assert max(degrees) >= 15

    def test_router_level_backbone_fraction_validated(self):
        with pytest.raises(ValueError):
            internet_router_level(100, backbone_fraction=0.0)
        with pytest.raises(ValueError):
            internet_router_level(100, backbone_fraction=1.5)

    def test_deterministic(self):
        assert internet_as_level(80, seed=9) == internet_as_level(80, seed=9)
        assert internet_router_level(80, seed=9) == internet_router_level(80, seed=9)


class TestStructuredGraphs:
    def test_ring(self):
        topology = ring_graph(10)
        assert topology.num_edges == 10
        assert all(topology.degree(v) == 2 for v in topology.nodes())
        assert topology.is_connected()

    def test_ring_single_node(self):
        assert ring_graph(1).num_edges == 0

    def test_line(self):
        topology = line_graph(5)
        assert topology.num_edges == 4
        assert topology.degree(0) == 1
        assert topology.degree(2) == 2

    def test_grid(self):
        topology = grid_graph(3, 4)
        assert topology.num_nodes == 12
        assert topology.num_edges == 3 * 3 + 2 * 4
        assert topology.is_connected()

    def test_star(self):
        topology = star_graph(7)
        assert topology.num_nodes == 8
        assert topology.degree(0) == 7
        assert all(topology.degree(v) == 1 for v in range(1, 8))

    def test_two_level_tree_structure(self):
        branching = 4
        topology = two_level_tree(branching)
        assert topology.num_nodes == 1 + branching + branching * branching
        assert topology.degree(0) == branching
        # Grandchildren are leaves.
        assert topology.degree(topology.num_nodes - 1) == 1
        assert topology.is_connected()

    def test_two_level_tree_weights(self):
        topology = two_level_tree(3, child_weight=2.0)
        # Root-child edges have weight 1, child-grandchild edges weight 2.
        assert topology.edge_weight(0, 1) == 1.0
        grandchild = 1 + 3  # first grandchild of child 1
        assert topology.edge_weight(1, grandchild) == 2.0


class TestGeneratorProperties:
    @settings(deadline=None, max_examples=15)
    @given(
        n=st.integers(min_value=10, max_value=120),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_all_generators_connected(self, n, seed):
        assert gnm_random_graph(n, seed=seed, average_degree=4.0).is_connected()
        assert geometric_random_graph(n, seed=seed, average_degree=6.0).is_connected()
        assert internet_as_level(max(n, 10), seed=seed).is_connected()
