"""Tests for the streaming ingestion pipeline and the CSRTopology fast path.

The dict-backed :class:`~repro.graphs.topology.Topology` stays the
differential oracle: every test here pins the streaming/CSR path to be
byte-identical to it -- adjacency, content keys, CSR slabs, shortest-path
results, substrate tables, and scenario JSON alike.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.graphs._ckernels import load_kernels
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_router_level,
)
from repro.graphs.ingest import (
    ROCKETFUEL_EXTERNAL_DELAY,
    ROCKETFUEL_INTERNAL_DELAY,
    available_formats,
    file_digest,
    ingest_file,
    ingest_topology,
)
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.topology import CSRTopology, Topology

HAVE_C = load_kernels() is not None

DATA = os.path.join(os.path.dirname(__file__), "data")
FIXTURE_EDGES = os.path.join(DATA, "fixture.edges")
FIXTURE_ROCKETFUEL = os.path.join(DATA, "fixture-isp.cch")
FIXTURE_CAIDA = os.path.join(DATA, "fixture-as.links")


def assert_same_topology(actual: Topology, oracle: Topology) -> None:
    """Byte-level equivalence: structure, weights, content key, CSR slabs."""
    assert actual.num_nodes == oracle.num_nodes
    assert actual.num_edges == oracle.num_edges
    assert actual.adjacency == oracle.adjacency
    assert sorted(actual.edges()) == sorted(oracle.edges())
    assert actual.content_key() == oracle.content_key()
    a_csr, o_csr = actual.csr(), oracle.csr()
    assert a_csr.offsets.tobytes() == o_csr.offsets.tobytes()
    assert a_csr.neighbors.tobytes() == o_csr.neighbors.tobytes()
    assert a_csr.weights.tobytes() == o_csr.weights.tobytes()


def _generators():
    return [
        ("gnm", lambda: gnm_random_graph(120, seed=4, average_degree=5.0)),
        (
            "geometric",
            lambda: geometric_random_graph(100, seed=3, average_degree=6.0),
        ),
        ("router-level", lambda: internet_router_level(96, seed=5)),
    ]


class TestStreamingDifferential:
    @pytest.mark.parametrize(
        "label,build", _generators(), ids=[k for k, _ in _generators()]
    )
    def test_csr_backend_matches_dict_backend(self, tmp_path, label, build):
        topology = build()
        path = tmp_path / f"{label}.edges"
        write_edge_list(topology, path)
        dict_topology = ingest_file(path, backend="dict")
        csr_topology = ingest_file(path, backend="csr")
        assert type(dict_topology) is Topology
        assert isinstance(csr_topology, CSRTopology)
        assert_same_topology(csr_topology, dict_topology)
        assert_same_topology(csr_topology, topology)

    def test_read_edge_list_routes_through_streaming_parser(self, tmp_path):
        topology = gnm_random_graph(60, seed=7, average_degree=5.0)
        path = tmp_path / "g.edges"
        write_edge_list(topology, path)
        loaded = read_edge_list(path)
        assert type(loaded) is Topology
        assert loaded == topology
        assert loaded.name == topology.name

    def test_shortest_paths_bit_identical(self, tmp_path):
        topology = geometric_random_graph(90, seed=9, average_degree=6.0)
        path = tmp_path / "geo.edges"
        write_edge_list(topology, path)
        dict_csr = ingest_file(path, backend="dict").csr()
        slab_csr = ingest_file(path, backend="csr").csr()
        for source in (0, 17, 55):
            d_dist, d_pred = dict_csr.dijkstra(source)
            s_dist, s_pred = slab_csr.dijkstra(source)
            assert list(d_dist) == list(s_dist)
            assert list(d_pred) == list(s_pred)

    def test_substrate_tables_byte_identical(self, tmp_path):
        from repro.addressing.labels import LabelCodec
        from repro.core.landmarks import select_landmarks
        from repro.core.substrate_build import build_substrate_tables

        topology = gnm_random_graph(80, seed=6, average_degree=6.0)
        path = tmp_path / "g.edges"
        write_edge_list(topology, path)
        dict_topology = ingest_file(path, backend="dict")
        csr_topology = ingest_file(path, backend="csr")
        landmarks = select_landmarks(topology.num_nodes, seed=1)
        d_tables = build_substrate_tables(
            dict_topology, landmarks, codec=LabelCodec(dict_topology)
        )
        c_tables = build_substrate_tables(
            csr_topology, landmarks, codec=LabelCodec(csr_topology)
        )
        d_slabs = {name: slab for name, _, slab in d_tables.slab_items()}
        c_slabs = {name: slab for name, _, slab in c_tables.slab_items()}
        assert d_slabs.keys() == c_slabs.keys()
        for name in d_slabs:
            assert bytes(d_slabs[name]) == bytes(c_slabs[name]), name

    def test_scenario_json_byte_identical(self, tmp_path, monkeypatch):
        """The fig02 'real' panel is byte-identical dict vs CSR backend."""
        import dataclasses

        from repro.experiments import fig02_state_cdf
        from repro.experiments.config import ExperimentScale
        from repro.scenarios.results import to_jsonable

        topology = gnm_random_graph(64, seed=8, average_degree=5.0)
        path = tmp_path / "real.edges"
        write_edge_list(topology, path)
        scale = dataclasses.replace(
            ExperimentScale(
                large_nodes=48,
                as_level_nodes=48,
                router_level_nodes=64,
                pair_sample=50,
                label="ingest-test",
            ),
            topology_file=str(path),
        )
        csr_result = fig02_state_cdf.run(scale)
        assert csr_result.real is not None
        monkeypatch.setitem(
            fig02_state_cdf._PANELS,
            "real",
            lambda s: ingest_file(
                s.topology_file, backend="dict", largest_component=True
            ),
        )
        dict_result = fig02_state_cdf.run(scale)
        assert json.dumps(
            to_jsonable(csr_result), sort_keys=True
        ) == json.dumps(to_jsonable(dict_result), sort_keys=True)


class TestEdgeListErrorSemantics:
    """The streaming parser keeps ``read_edge_list``'s exact error surface."""

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_malformed_line(self, tmp_path, backend):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2 3\n")
        with pytest.raises(ValueError, match="expected"):
            ingest_file(path, backend=backend)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_non_numeric(self, tmp_path, backend):
        path = tmp_path / "bad.edges"
        path.write_text("a b\n")
        with pytest.raises(ValueError, match="non-numeric"):
            ingest_file(path, backend=backend)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_negative_id(self, tmp_path, backend):
        path = tmp_path / "bad.edges"
        path.write_text("-1 2\n")
        with pytest.raises(ValueError, match="negative"):
            ingest_file(path, backend=backend)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_out_of_range_vs_header(self, tmp_path, backend):
        path = tmp_path / "bad.edges"
        path.write_text("# nodes 2\n0 5\n")
        with pytest.raises(ValueError, match="declares"):
            ingest_file(path, backend=backend)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_self_loop(self, tmp_path, backend):
        path = tmp_path / "bad.edges"
        path.write_text("0 1\n3 3\n")
        with pytest.raises(ValueError, match=r"self-loops .* \(node 3\)"):
            ingest_file(path, backend=backend)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_non_positive_weight(self, tmp_path, backend):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 0.0\n")
        with pytest.raises(ValueError, match="must be > 0"):
            ingest_file(path, backend=backend)

    def test_line_errors_precede_deferred_self_loop(self, tmp_path):
        # Legacy read_edge_list parsed every line before adding edges, so a
        # malformed later line outranked an earlier self-loop; preserved.
        path = tmp_path / "bad.edges"
        path.write_text("2 2\n0 1 2 3\n")
        with pytest.raises(ValueError, match="expected"):
            ingest_file(path)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_duplicate_edges_keep_first_weight(self, tmp_path, backend):
        path = tmp_path / "dup.edges"
        path.write_text("0 1 2.0\n1 0 7.0\n1 2\n")
        topology = ingest_file(path, backend=backend)
        assert topology.num_edges == 2
        assert topology.edge_weight(0, 1) == 2.0

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_header_nodes_vs_inferred(self, tmp_path, backend):
        declared = tmp_path / "declared.edges"
        declared.write_text("# nodes 9\n0 1\n")
        assert ingest_file(declared, backend=backend).num_nodes == 9
        inferred = tmp_path / "inferred.edges"
        inferred.write_text("0 1\n1 5\n")
        assert ingest_file(inferred, backend=backend).num_nodes == 6

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_crlf_blank_lines_and_comments(self, tmp_path, backend):
        path = tmp_path / "crlf.edges"
        path.write_bytes(b"# name crlf\r\n\r\n0 1\r\n# c\r\n1 2 4.0\r\n\r\n")
        topology = ingest_file(path, backend=backend)
        assert topology.name == "crlf"
        assert topology.num_edges == 2
        assert topology.edge_weight(1, 2) == 4.0

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_name_header_and_override(self, tmp_path, backend):
        path = tmp_path / "named.edges"
        path.write_text("# name declared\n0 1\n")
        assert ingest_file(path, backend=backend).name == "declared"
        assert (
            ingest_file(path, backend=backend, name="custom").name == "custom"
        )

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_empty_file(self, tmp_path, backend):
        path = tmp_path / "empty.edges"
        path.write_text("# nodes 4\n")
        topology = ingest_file(path, backend=backend)
        assert topology.num_nodes == 4
        assert topology.num_edges == 0


class TestFormats:
    def test_registered_formats(self):
        formats = available_formats()
        for name in ("edge-list", "rocketfuel", "caida-aslinks"):
            assert name in formats

    def test_unknown_format_raises(self, tmp_path):
        path = tmp_path / "x.edges"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="unknown topology format"):
            ingest_file(path, fmt="no-such-format")

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_caida_fixture(self, backend):
        topology = ingest_file(
            FIXTURE_CAIDA, fmt="caida-aslinks", backend=backend
        )
        # 200-node AS map plus a detached doubleton; duplicate D/I rows
        # (including reversed ones) collapse, self-loop rows are skipped.
        assert topology.num_nodes == 202
        assert topology.weight_profile().unit
        largest = ingest_file(
            FIXTURE_CAIDA,
            fmt="caida-aslinks",
            backend=backend,
            largest_component=True,
        )
        assert largest.num_nodes == 200

    def test_caida_backends_identical(self):
        dict_topology = ingest_file(
            FIXTURE_CAIDA, fmt="caida-aslinks", backend="dict"
        )
        csr_topology = ingest_file(
            FIXTURE_CAIDA, fmt="caida-aslinks", backend="csr"
        )
        assert_same_topology(csr_topology, dict_topology)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_rocketfuel_fixture(self, backend):
        topology = ingest_file(
            FIXTURE_ROCKETFUEL, fmt="rocketfuel", backend=backend
        )
        assert topology.num_nodes == 48
        weights = {w for _, _, w in topology.edges()}
        assert weights <= {
            ROCKETFUEL_INTERNAL_DELAY,
            ROCKETFUEL_EXTERNAL_DELAY,
        }
        assert ROCKETFUEL_INTERNAL_DELAY in weights

    def test_rocketfuel_backends_identical(self):
        dict_topology = ingest_file(
            FIXTURE_ROCKETFUEL, fmt="rocketfuel", backend="dict"
        )
        csr_topology = ingest_file(
            FIXTURE_ROCKETFUEL, fmt="rocketfuel", backend="csr"
        )
        assert_same_topology(csr_topology, dict_topology)

    def test_rocketfuel_delay_params(self):
        default = ingest_file(FIXTURE_ROCKETFUEL, fmt="rocketfuel")
        unit = ingest_file(
            FIXTURE_ROCKETFUEL,
            fmt="rocketfuel",
            internal_delay=1.0,
            external_delay=1.0,
        )
        assert default.content_key() != unit.content_key()
        assert unit.weight_profile().unit

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_edge_list_fixture(self, backend):
        topology = ingest_file(FIXTURE_EDGES, backend=backend)
        assert topology.name == "fixture-gnm"
        assert topology.num_nodes == 160


class TestCSRTopology:
    @pytest.fixture(scope="class")
    def csr_topology(self) -> CSRTopology:
        topology = gnm_random_graph(70, seed=11, average_degree=5.0)
        return CSRTopology.from_edge_arrays(
            topology.num_nodes,
            *_edge_arrays(topology),
            name=topology.name,
        )

    def test_immutable(self, csr_topology):
        with pytest.raises(TypeError, match="immutable"):
            csr_topology.add_edge(0, 1)
        with pytest.raises(TypeError, match="immutable"):
            csr_topology.remove_edge(0, 1)
        with pytest.raises(TypeError, match="immutable"):
            csr_topology.set_edge_weight(0, 1, 2.0)

    def test_matches_dict_topology(self, csr_topology):
        oracle = csr_topology.to_dict_topology()
        assert type(oracle) is Topology
        assert_same_topology(csr_topology, oracle)
        assert csr_topology.degree_sequence() == oracle.degree_sequence()
        assert csr_topology.max_degree() == oracle.max_degree()
        assert csr_topology.total_weight() == oracle.total_weight()

    def test_pickle_round_trip(self, csr_topology):
        clone = pickle.loads(pickle.dumps(csr_topology))
        assert isinstance(clone, CSRTopology)
        assert clone.content_key() == csr_topology.content_key()
        assert clone.adjacency == csr_topology.adjacency

    def test_slab_dir_round_trip(self, csr_topology, tmp_path):
        slab_dir = tmp_path / "topo.slabs"
        csr_topology.save_slabs(slab_dir)
        loaded = CSRTopology.from_slab_dir(slab_dir)
        assert loaded.content_key() == csr_topology.content_key()
        a = loaded.csr().dijkstra(0)
        b = csr_topology.csr().dijkstra(0)
        assert list(a[0]) == list(b[0]) and list(a[1]) == list(b[1])

    def test_copy_shares_slabs(self, csr_topology):
        clone = csr_topology.copy()
        assert isinstance(clone, CSRTopology)
        assert clone is not csr_topology
        assert clone._offsets is csr_topology._offsets
        assert clone == csr_topology

    def test_largest_component_matches_dict_path(self, tmp_path):
        path = tmp_path / "disconnected.edges"
        path.write_text("# nodes 8\n0 1\n1 2\n2 0\n4 5\n6 7\n")
        dict_lcc, dict_map = ingest_file(
            path, backend="dict"
        ).largest_component_subgraph()
        csr_lcc, csr_map = ingest_file(
            path, backend="csr"
        ).largest_component_subgraph()
        assert csr_map == dict_map
        assert csr_lcc.num_nodes == dict_lcc.num_nodes == 3
        assert_same_topology(csr_lcc, dict_lcc)

    def test_unit_graph_selects_bfs_kernel(self, csr_topology):
        csr = csr_topology.csr()
        if HAVE_C:
            assert csr.kernel == "bfs"
            assert csr.tier == "c"
        else:
            assert csr.tier == "python"

    def test_weighted_graph_keeps_weighted_kernel(self):
        topology = geometric_random_graph(60, seed=13, average_degree=6.0)
        csr = CSRTopology.from_edge_arrays(
            topology.num_nodes, *_edge_arrays(topology)
        ).csr()
        assert csr.kernel != "bfs"


def _edge_arrays(topology: Topology):
    from array import array

    eu, ev, ew = array("q"), array("q"), array("d")
    for u, v, w in topology.edges():
        eu.append(u)
        ev.append(v)
        ew.append(w)
    return eu, ev, ew


class TestBFSKernel:
    """The C BFS kernel is bit-identical to the Python BFS fallback."""

    @pytest.fixture(scope="class")
    def unit_graph(self) -> Topology:
        return gnm_random_graph(128, seed=17, average_degree=6.0)

    def test_bfs_forced_on_weighted_graph_rejected(self):
        topology = geometric_random_graph(40, seed=2, average_degree=6.0)
        with pytest.raises(ValueError, match="bfs"):
            CSRGraph.from_topology(topology, kernel="bfs")

    def test_c_bfs_matches_python_bfs(self, unit_graph):
        if not HAVE_C:
            pytest.skip("C kernels unavailable")
        c_csr = CSRGraph.from_topology(unit_graph, kernel="bfs", use_c=True)
        py_csr = CSRGraph.from_topology(unit_graph, kernel="bfs", use_c=False)
        assert (c_csr.tier, py_csr.tier) == ("c", "python")
        k = 12
        for source in (0, 31, 127):
            c_dist, c_pred = c_csr.dijkstra(source)
            p_dist, p_pred = py_csr.dijkstra(source)
            assert list(c_dist) == list(p_dist)
            assert list(c_pred) == list(p_pred)
            assert c_csr.dijkstra_k_nearest(source, k) == (
                py_csr.dijkstra_k_nearest(source, k)
            )
            assert c_csr.dijkstra_radius(source, 3.0) == (
                py_csr.dijkstra_radius(source, 3.0)
            )

    def test_bfs_matches_bucket_kernel(self, unit_graph):
        bfs_csr = CSRGraph.from_topology(unit_graph, kernel="bfs")
        bucket_csr = CSRGraph.from_topology(unit_graph, kernel="bucket")
        for source in (0, 64):
            b_dist, b_pred = bfs_csr.dijkstra(source)
            q_dist, q_pred = bucket_csr.dijkstra(source)
            assert list(b_dist) == list(q_dist)
            assert list(b_pred) == list(q_pred)


class TestIngestArtifactCache:
    def _cache(self, tmp_path):
        from repro.scenarios.cache import ArtifactCache

        return ArtifactCache(tmp_path / "cache")

    def test_hit_on_same_inputs(self, tmp_path):
        from repro.scenarios.cache import activated

        path = tmp_path / "g.edges"
        write_edge_list(gnm_random_graph(50, seed=3, average_degree=5.0), path)
        cache = self._cache(tmp_path)
        with activated(cache):
            first = ingest_topology(path)
            second = ingest_topology(path)
        assert cache.hits == 1 and cache.misses == 1
        assert first.content_key() == second.content_key()

    def test_file_edit_invalidates(self, tmp_path):
        from repro.scenarios.cache import activated

        path = tmp_path / "g.edges"
        path.write_text("0 1\n1 2\n")
        cache = self._cache(tmp_path)
        with activated(cache):
            before = ingest_topology(path)
            digest_before = file_digest(path)
            path.write_text("0 1\n1 2\n2 3\n")
            after = ingest_topology(path)
        assert cache.misses == 2
        assert digest_before != file_digest(path)
        assert before.content_key() != after.content_key()

    def test_params_and_flags_key_the_artifact(self, tmp_path):
        from repro.scenarios.cache import activated

        cache = self._cache(tmp_path)
        with activated(cache):
            ingest_topology(FIXTURE_ROCKETFUEL, fmt="rocketfuel")
            ingest_topology(
                FIXTURE_ROCKETFUEL, fmt="rocketfuel", internal_delay=1.0
            )
            ingest_topology(
                FIXTURE_ROCKETFUEL, fmt="rocketfuel", largest_component=True
            )
        assert cache.misses == 3 and cache.hits == 0

    def test_cold_disk_attach(self, tmp_path):
        from repro.scenarios.cache import ArtifactCache, activated

        path = tmp_path / "g.edges"
        write_edge_list(gnm_random_graph(50, seed=5, average_degree=5.0), path)
        root = tmp_path / "cache"
        with activated(ArtifactCache(root)):
            warm = ingest_topology(path)
        fresh = ArtifactCache(root)
        with activated(fresh):
            cold = ingest_topology(path)
        assert fresh.hits == 1 and fresh.misses == 0
        assert cold.content_key() == warm.content_key()
        assert cold.adjacency == warm.adjacency
