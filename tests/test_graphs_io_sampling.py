"""Tests for repro.graphs.io, repro.graphs.sampling, and repro.graphs.analysis."""

from __future__ import annotations

import pytest

from repro.graphs.analysis import estimate_diameter, profile_topology
from repro.graphs.generators import gnm_random_graph, line_graph
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.sampling import one_destination_per_node, sample_nodes, sample_pairs
from repro.graphs.topology import Topology


class TestEdgeListIO:
    def test_round_trip(self, tmp_path):
        topology = gnm_random_graph(40, seed=1, average_degree=5.0)
        path = tmp_path / "graph.edges"
        write_edge_list(topology, path)
        loaded = read_edge_list(path)
        assert loaded == topology
        assert loaded.name == topology.name

    def test_round_trip_weighted(self, tmp_path):
        topology = Topology.from_edges(3, [(0, 1, 2.5), (1, 2, 0.125)])
        path = tmp_path / "weighted.edges"
        write_edge_list(topology, path)
        loaded = read_edge_list(path)
        assert loaded.edge_weight(0, 1) == 2.5
        assert loaded.edge_weight(1, 2) == 0.125

    def test_read_without_header_infers_size(self, tmp_path):
        path = tmp_path / "raw.edges"
        path.write_text("0 1\n1 2\n")
        loaded = read_edge_list(path)
        assert loaded.num_nodes == 3
        assert loaded.num_edges == 2

    def test_read_ignores_comments_and_blanks(self, tmp_path):
        path = tmp_path / "c.edges"
        path.write_text("# a comment\n\n0 1\n# another\n1 2 4.0\n")
        loaded = read_edge_list(path)
        assert loaded.num_edges == 2

    def test_read_name_override(self, tmp_path):
        path = tmp_path / "named.edges"
        path.write_text("0 1\n")
        assert read_edge_list(path, name="custom").name == "custom"

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2 3\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "bad2.edges"
        path.write_text("a b\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_edge_list(path)

    def test_negative_node_raises(self, tmp_path):
        path = tmp_path / "bad3.edges"
        path.write_text("-1 2\n")
        with pytest.raises(ValueError, match="negative"):
            read_edge_list(path)

    def test_node_exceeding_header_raises(self, tmp_path):
        path = tmp_path / "bad4.edges"
        path.write_text("# nodes 2\n0 5\n")
        with pytest.raises(ValueError, match="declares"):
            read_edge_list(path)


class TestSampling:
    def test_sample_nodes_subset(self, small_gnm):
        nodes = sample_nodes(small_gnm, 10, seed=1)
        assert len(nodes) == 10
        assert len(set(nodes)) == 10
        assert all(0 <= v < small_gnm.num_nodes for v in nodes)

    def test_sample_nodes_all_when_count_large(self, small_gnm):
        nodes = sample_nodes(small_gnm, 10_000, seed=1)
        assert nodes == list(small_gnm.nodes())

    def test_sample_nodes_deterministic(self, small_gnm):
        assert sample_nodes(small_gnm, 10, seed=5) == sample_nodes(
            small_gnm, 10, seed=5
        )

    def test_sample_pairs_distinct_endpoints(self, small_gnm):
        pairs = sample_pairs(small_gnm, 50, seed=2)
        assert len(pairs) == 50
        assert all(s != t for s, t in pairs)

    def test_sample_pairs_all_when_exhaustive(self):
        topology = line_graph(4)
        pairs = sample_pairs(topology, 1000, seed=0)
        assert len(pairs) == 4 * 3

    def test_sample_pairs_requires_two_nodes(self):
        with pytest.raises(ValueError):
            sample_pairs(Topology(1), 5)

    def test_one_destination_per_node(self, small_gnm):
        pairs = one_destination_per_node(small_gnm, seed=3)
        assert len(pairs) == small_gnm.num_nodes
        assert all(s != t for s, t in pairs)
        assert [s for s, _ in pairs] == list(small_gnm.nodes())

    def test_one_destination_deterministic(self, small_gnm):
        assert one_destination_per_node(small_gnm, seed=4) == one_destination_per_node(
            small_gnm, seed=4
        )


class TestAnalysis:
    def test_estimate_diameter_line(self):
        topology = line_graph(10)
        assert estimate_diameter(topology) == pytest.approx(9.0)

    def test_estimate_diameter_lower_bounds_truth(self, small_gnm):
        import networkx as nx

        estimate = estimate_diameter(small_gnm, sweeps=4)
        true_diameter = nx.diameter(small_gnm.to_networkx())
        # weighted estimate on a unit-weight graph equals hop diameter here
        assert estimate <= true_diameter + 1e-9
        assert estimate >= true_diameter * 0.5

    def test_profile_topology_fields(self, small_gnm):
        profile = profile_topology(small_gnm, pair_samples=50, seed=1)
        assert profile.num_nodes == small_gnm.num_nodes
        assert profile.num_edges == small_gnm.num_edges
        assert profile.average_degree == pytest.approx(small_gnm.average_degree())
        assert profile.max_degree == small_gnm.max_degree()
        assert profile.path_length_summary.count == 50
        assert profile.estimated_diameter > 0
