"""Substrate tables: the flat array-backed scheme-state layer.

Differential tests pin the "array" backend (slab-backed
:class:`SubstrateTables` with thin views) bit-identical to the historical
"dict" backend across topology families -- routes, stretch, state counts,
addresses -- plus the view semantics (settle-order iteration, KeyError
messages, pickling as raw buffers) the rest of the system relies on.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import tables
from repro.core.nddisco import NDDiscoRouting
from repro.core.tables import (
    NodeSearchTables,
    Row,
    SubstrateTables,
    get_backend,
    use_backend,
)
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_router_level,
)
from repro.graphs.sampling import sample_pairs
from repro.metrics.state import measure_state
from repro.metrics.stretch import measure_stretch
from repro.protocols.s4 import S4Routing
from repro.staticsim.simulation import StaticSimulation


def _topologies():
    return [
        gnm_random_graph(140, seed=3, average_degree=6.0),
        geometric_random_graph(110, seed=4, average_degree=7.0),
        internet_router_level(120, seed=5),
    ]


class TestBackendSwitch:
    def test_default_is_array(self):
        assert get_backend() == "array"

    def test_use_backend_restores(self):
        with use_backend("dict"):
            assert get_backend() == "dict"
        assert get_backend() == "array"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown tables backend"):
            with use_backend("mmap"):
                pass  # pragma: no cover

    def test_backend_salts_cache_keys(self):
        # A dict-oracle run must never be served array-built artifacts
        # (or vice versa): the active backend is part of every cache key.
        from repro.scenarios.cache import cache_key

        array_key = cache_key("scheme", "x")
        with use_backend("dict"):
            dict_key = cache_key("scheme", "x")
        assert array_key != dict_key
        assert array_key == cache_key("scheme", "x")


class TestDifferentialAgainstDictBackend:
    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_nddisco_state_identical(self, index):
        topology = _topologies()[index]
        with use_backend("dict"):
            ref = NDDiscoRouting(topology, seed=1)
        arr = NDDiscoRouting(topology, seed=1)
        assert arr.tables is not None and ref.tables is None
        assert arr.landmarks == ref.landmarks
        for landmark in ref.landmark_spts:
            ref_dist, ref_parent = ref.landmark_spts[landmark]
            arr_dist, arr_parent = arr.landmark_spts[landmark]
            assert list(arr_dist) == ref_dist
            assert list(arr_parent) == ref_parent
        assert list(arr.closest_landmark_rows[0]) == ref.closest_landmark_rows[0]
        assert list(arr.closest_landmark_rows[1]) == ref.closest_landmark_rows[1]
        assert arr.addresses == ref.addresses
        for node in topology.nodes():
            ref_vicinity = ref.vicinities[node]
            arr_vicinity = arr.vicinities[node]
            assert len(arr_vicinity) == len(ref_vicinity)
            assert list(arr_vicinity.distances) == list(ref_vicinity.distances)
            assert dict(arr_vicinity.distances.items()) == ref_vicinity.distances
            assert (
                dict(arr_vicinity.predecessors.items())
                == ref_vicinity.predecessors
            )

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_routes_stretch_state_identical(self, index):
        topology = _topologies()[index]
        pairs = sample_pairs(topology, 200, seed=7)
        with use_backend("dict"):
            ref_sim = StaticSimulation(
                topology.copy(), ("disco", "nd-disco", "s4"), seed=1
            )
        arr_sim = StaticSimulation(
            topology.copy(), ("disco", "nd-disco", "s4"), seed=1
        )
        for name, ref_scheme in ref_sim.schemes.items():
            arr_scheme = arr_sim.scheme(name)
            for source, target in pairs[:60]:
                assert ref_scheme.first_packet_route(
                    source, target
                ) == arr_scheme.first_packet_route(source, target)
                assert ref_scheme.later_packet_route(
                    source, target
                ) == arr_scheme.later_packet_route(source, target)
            assert measure_stretch(ref_scheme, pairs=pairs) == measure_stretch(
                arr_scheme, pairs=pairs
            )
            assert measure_state(ref_scheme) == measure_state(arr_scheme)

    def test_s4_standalone_identical(self):
        topology = gnm_random_graph(120, seed=9, average_degree=6.0)
        with use_backend("dict"):
            ref = S4Routing(topology, seed=2)
        arr = S4Routing(topology, seed=2)
        assert arr.tables is not None and arr.balls is not None
        pairs = sample_pairs(topology, 150, seed=3)
        for source, target in pairs:
            assert ref.first_packet_route(source, target) == arr.first_packet_route(
                source, target
            )
            assert ref.later_packet_route(source, target) == arr.later_packet_route(
                source, target
            )
        for node in topology.nodes():
            assert ref.cluster_size(node) == arr.cluster_size(node)
            assert ref.state_entries(node) == arr.state_entries(node)
            assert ref.state_bytes(node) == arr.state_bytes(node)


class TestViews:
    @pytest.fixture(scope="class")
    def scheme(self):
        return NDDiscoRouting(gnm_random_graph(80, seed=2, average_degree=6.0), seed=1)

    def test_row_behaves_like_a_list(self, scheme):
        landmark = sorted(scheme.landmarks)[0]
        dist_row, parent_row = scheme.landmark_spts[landmark]
        assert isinstance(dist_row, Row)
        assert len(dist_row) == scheme.topology.num_nodes
        assert dist_row[0] == dist_row.tolist()[0]
        assert list(reversed(parent_row)) == list(reversed(parent_row.tolist()))
        assert dist_row == dist_row.tolist()
        assert dist_row[1:4] == dist_row.tolist()[1:4]

    def test_vicinity_view_semantics(self, scheme):
        view = scheme.vicinities[5]
        assert 5 in view and view.distances[5] == 0.0
        member = list(view.distances)[-1]
        path = view.path_to(member)
        assert path[0] == 5 and path[-1] == member
        assert view.distance_to(member) == max(view.distances.values())
        with pytest.raises(KeyError, match="is not in the vicinity of 5"):
            view.path_to(-42)
        assert view.members == set(view.distances.keys())
        assert view.radius() == max(view.distances.values())

    def test_spt_path_matches_error_contract(self, scheme):
        landmark = sorted(scheme.landmarks)[0]
        assert scheme.tables.spt_path(landmark, landmark) == [landmark]
        with pytest.raises(KeyError):
            scheme.tables.spt_path(-1, 0)

    def test_predecessor_map_excludes_owner(self, scheme):
        view = scheme.vicinities[3]
        assert 3 not in view.predecessors
        assert len(view.predecessors) == len(view.distances) - 1


class TestSerialization:
    def test_tables_pickle_roundtrip(self):
        scheme = NDDiscoRouting(
            gnm_random_graph(90, seed=4, average_degree=6.0), seed=1
        )
        clone = pickle.loads(pickle.dumps(scheme.tables))
        assert isinstance(clone, SubstrateTables)
        assert clone.landmarks == scheme.tables.landmarks
        assert list(clone.spt_dist) == list(scheme.tables.spt_dist)
        assert list(clone.vicinity.members) == list(
            scheme.tables.vicinity.members
        )
        assert clone.addresses() == scheme.addresses

    def test_scheme_pickle_shares_slabs_via_views(self):
        scheme = NDDiscoRouting(
            gnm_random_graph(90, seed=4, average_degree=6.0), seed=1
        )
        clone = pickle.loads(pickle.dumps(scheme))
        landmark = sorted(clone.landmarks)[0]
        # Row views of the unpickled scheme must resolve onto the clone's
        # own tables object (one slab copy per pickle, not one per view).
        row = clone.landmark_spts[landmark][0]
        assert row._owner is clone.tables
        assert list(row) == list(scheme.landmark_spts[landmark][0])

    def test_getstate_serializes_raw_buffers(self):
        scheme = NDDiscoRouting(
            gnm_random_graph(60, seed=5, average_degree=5.0), seed=1
        )
        state = scheme.tables.__getstate__()
        typecode, payload = state["slabs"]["spt_dist"]
        assert typecode == "d" and isinstance(payload, bytes)
        assert len(payload) == 8 * len(scheme.tables.spt_dist)


class TestNodeSearchTables:
    def test_rejects_misrooted_search(self):
        with pytest.raises(ValueError, match="does not start at its own node"):
            NodeSearchTables.from_searches([({1: 0.0}, {})])

    def test_rejects_empty_search(self):
        with pytest.raises(ValueError, match="no settled members"):
            NodeSearchTables.from_searches([({}, {})])

    def test_path_from_owner(self):
        table = NodeSearchTables.from_searches(
            [
                ({0: 0.0, 1: 1.0, 2: 2.0}, {1: 0, 2: 1}),
                ({1: 0.0, 0: 1.0}, {0: 1}),
            ]
        )
        assert table.path_from_owner(0, 2) == [0, 1, 2]
        assert table.path_from_owner(0, 0) == [0]
        with pytest.raises(KeyError):
            table.path_from_owner(1, 2)
