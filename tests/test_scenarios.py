"""Tests for the scenario engine: spec/registry, artifact cache, JSON results.

The determinism differential between serial and parallel execution lives in
``tests/test_scenarios_parallel.py``; this module covers the single-process
behavior (registration, alias resolution, near-miss suggestions, shard
decomposition, prerequisite caching, and JSON serialization).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import fig02_state_cdf, fig09_scaling
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import EXPERIMENTS
from repro.scenarios import (
    ArtifactCache,
    UnknownScenarioError,
    all_scenarios,
    resolve,
    scenario_ids,
    suggest,
)
from repro.scenarios.cache import activated, cache_key, cached_scheme, scheme_key
from repro.scenarios.engine import plan_scenarios, run_scenarios
from repro.scenarios.results import RESULT_SCHEMA, dump_json, to_jsonable
from repro.staticsim.simulation import StaticSimulation

TINY = ExperimentScale(
    comparison_nodes=72,
    large_nodes=72,
    as_level_nodes=72,
    router_level_nodes=80,
    pair_sample=50,
    messaging_sweep=(20, 28),
    scaling_sweep=(40, 56),
    seed=11,
    label="tiny-test",
)


class TestRegistry:
    def test_every_experiment_is_a_scenario(self):
        assert set(scenario_ids()) == set(EXPERIMENTS)

    def test_alias_resolution(self):
        assert resolve("fig04").scenario_id == "fig04-gnm-comparison"
        assert resolve("churn").scenario_id == "churn-cost"
        assert resolve("fig09-scaling").scenario_id == "fig09-scaling"

    def test_unknown_id_raises_with_suggestions(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            resolve("fig04-gnm-comparisn")
        assert "fig04-gnm-comparison" in excinfo.value.suggestions
        assert "did you mean" in str(excinfo.value)

    def test_unknown_error_is_a_keyerror(self):
        with pytest.raises(KeyError):
            resolve("no-such-scenario")

    def test_suggest_falls_back_to_substring(self):
        assert "fig06-shortcutting" in suggest("shortcut")

    def test_specs_are_complete(self):
        for scenario in all_scenarios():
            assert scenario.title
            assert scenario.family
            assert scenario.metrics
            assert scenario.module.startswith("repro.experiments.")

    def test_quick_tag_marks_a_nonempty_subset(self):
        quick = [s for s in all_scenarios() if "quick" in s.tags]
        assert len(quick) >= 4


class TestShards:
    def test_static_shards(self):
        scenario = resolve("fig02-state-cdf")
        assert scenario.shard_keys(TINY) == (
            "geometric",
            "as_level",
            "router_level",
        )

    def test_scale_dependent_shards(self):
        scenario = resolve("fig09-scaling")
        assert scenario.shard_keys(TINY) == ("40", "56")

    def test_unsharded_scenario_has_no_keys(self):
        assert resolve("fig07-state-bytes").shard_keys(TINY) == ()

    def test_shard_merge_equals_direct_run(self):
        scenario = resolve("fig02-state-cdf")
        direct = fig02_state_cdf.run(TINY)
        parts = {
            key: scenario.run_shard(TINY, key)
            for key in scenario.shard_keys(TINY)
        }
        merged = scenario.merge_shards(TINY, parts)
        assert scenario.format_report(merged) == scenario.format_report(direct)

    def test_sweep_shard_merge_equals_direct_run(self):
        scenario = resolve("fig09-scaling")
        direct = fig09_scaling.run(TINY)
        parts = {
            key: scenario.run_shard(TINY, key)
            for key in scenario.shard_keys(TINY)
        }
        merged = scenario.merge_shards(TINY, parts)
        assert merged == direct

    def test_plan_expands_shards(self):
        plan = plan_scenarios(["fig02-state-cdf", "fig07-state-bytes"], TINY)
        assert plan.tasks() == [
            ("fig02-state-cdf", "geometric"),
            ("fig02-state-cdf", "as_level"),
            ("fig02-state-cdf", "router_level"),
            ("fig07-state-bytes", None),
        ]

    def test_plan_without_sharding(self):
        plan = plan_scenarios(["fig02-state-cdf"], TINY, shard=False)
        assert plan.tasks() == [("fig02-state-cdf", None)]

    def test_plan_deduplicates_and_resolves_aliases(self):
        plan = plan_scenarios(
            ["fig07", "fig07-state-bytes", "addr"], TINY, shard=False
        )
        assert [e.scenario.scenario_id for e in plan.entries] == [
            "fig07-state-bytes",
            "addr-sizes",
        ]


class TestArtifactCache:
    def test_topology_builds_once(self):
        cache = ArtifactCache()
        calls = []

        def build():
            calls.append(1)
            return object()

        first = cache.topology(("gnm", 64, 11, 8.0), build)
        second = cache.topology(("gnm", 64, 11, 8.0), build)
        assert first is second
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_inputs_distinct_artifacts(self):
        cache = ArtifactCache()
        a = cache.topology(("gnm", 64, 11, 8.0), object)
        b = cache.topology(("gnm", 64, 12, 8.0), object)
        assert a is not b

    def test_disk_roundtrip(self, tmp_path):
        from repro.graphs.generators import gnm_random_graph

        build = lambda: gnm_random_graph(48, seed=5, average_degree=6.0)
        first_cache = ArtifactCache(tmp_path / "cache")
        built = first_cache.topology(("gnm", 48, 5, 6.0), build)
        # A second cache over the same root loads from disk, not build().
        second_cache = ArtifactCache(tmp_path / "cache")
        loaded = second_cache.topology(
            ("gnm", 48, 5, 6.0), lambda: pytest.fail("should hit disk")
        )
        assert loaded == built
        assert second_cache.hits == 1

    def test_corrupt_disk_artifact_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        key = ("gnm", 48, 5, 6.0)
        cache.topology(key, lambda: "artifact")
        path = next((tmp_path / "cache" / "topology").glob("*.pkl"))
        path.write_bytes(b"not a pickle")
        rebuilt = ArtifactCache(tmp_path / "cache").topology(
            key, lambda: "rebuilt"
        )
        assert rebuilt == "rebuilt"

    def test_cache_key_is_order_sensitive(self):
        assert cache_key("topology", 1, 2) != cache_key("topology", 2, 1)
        assert cache_key("topology", 1) != cache_key("scheme", 1)


class TestSchemeCache:
    def test_scheme_key_covers_topology_content(self):
        from repro.graphs.generators import gnm_random_graph

        topology = gnm_random_graph(48, seed=5, average_degree=6.0)
        before = scheme_key(topology, "nd-disco", seed=3)
        topology.add_edge(0, 47, 5.0)
        after = scheme_key(topology, "nd-disco", seed=3)
        assert before != after

    def test_scheme_key_ignores_workers(self):
        from repro.graphs.generators import gnm_random_graph

        topology = gnm_random_graph(48, seed=5, average_degree=6.0)
        assert scheme_key(topology, "nd-disco", seed=3) == scheme_key(
            topology, "nd-disco", seed=3, workers=4
        )

    def test_uncacheable_params_build_directly(self):
        from repro.graphs.generators import gnm_random_graph

        topology = gnm_random_graph(48, seed=5, average_degree=6.0)
        assert scheme_key(topology, "s4", substrate=object()) is None
        with activated(ArtifactCache()):
            built = cached_scheme(
                topology, "s4", lambda: "built", substrate=object()
            )
        assert built == "built"

    def test_staticsim_substrates_dedupe_across_simulations(self):
        from repro.graphs.generators import gnm_random_graph

        topology = gnm_random_graph(72, seed=5, average_degree=6.0)
        with activated(ArtifactCache()) as cache:
            first = StaticSimulation(topology, ("nd-disco", "s4"), seed=3)
            second = StaticSimulation(topology, ("disco", "s4"), seed=3)
        # The second simulation's S4 (and the NDDisco underlying Disco) come
        # from the cache rather than being rebuilt.
        assert second.scheme("s4") is first.scheme("s4")
        assert cache.hits >= 2

    def test_nddisco_options_differentiate_disco_keys(self):
        # Regression: Disco embeds the NDDisco substrate, so two
        # simulations differing only in nd-disco options (e.g. the landmark
        # set) must not share a cached Disco.
        from repro.graphs.generators import gnm_random_graph

        topology = gnm_random_graph(72, seed=5, average_degree=6.0)
        with activated(ArtifactCache()):
            first = StaticSimulation(
                topology,
                ("disco",),
                seed=3,
                scheme_options={"nd-disco": {"landmarks": {0, 1, 2}}},
            )
            second = StaticSimulation(
                topology,
                ("disco",),
                seed=3,
                scheme_options={"nd-disco": {"landmarks": {10, 20, 30}}},
            )
        assert first.scheme("disco") is not second.scheme("disco")
        assert second.scheme("disco").nddisco.landmarks == {10, 20, 30}

    def test_disk_cached_substrate_composes_with_fresh_topology(self, tmp_path):
        # Regression: with a disk cache shared between worker processes, one
        # worker can load another worker's converged NDDisco (a
        # content-equal but *distinct* Topology object inside) and then
        # build Disco/S4 around it.  The schemes must accept content-equal
        # topologies, not demand object identity.
        from repro.graphs.generators import gnm_random_graph

        root = tmp_path / "cache"
        build = lambda: gnm_random_graph(72, seed=5, average_degree=6.0)
        with activated(ArtifactCache(root)):
            StaticSimulation(build(), ("nd-disco",), seed=3)
        with activated(ArtifactCache(root)) as cache:
            # Fresh memory cache + fresh topology object: nd-disco comes
            # from disk, disco and s4 are built around the loaded object.
            simulation = StaticSimulation(build(), ("disco", "s4"), seed=3)
            assert cache.hits >= 1
        baseline = StaticSimulation(build(), ("disco", "s4"), seed=3)
        assert (
            simulation.scheme("disco").state_entries(0)
            == baseline.scheme("disco").state_entries(0)
        )

    def test_staticsim_results_unchanged_by_cache(self):
        from repro.graphs.generators import gnm_random_graph

        topology = gnm_random_graph(72, seed=5, average_degree=6.0)
        baseline = StaticSimulation(
            topology.copy(), ("nd-disco", "s4"), seed=3
        ).run(pair_sample=40)
        with activated(ArtifactCache()):
            cached = StaticSimulation(
                topology.copy(), ("nd-disco", "s4"), seed=3
            ).run(pair_sample=40)
        assert baseline.state.keys() == cached.state.keys()
        for name in baseline.state:
            assert (
                baseline.state[name].entry_summary
                == cached.state[name].entry_summary
            )
            assert (
                baseline.stretch[name].first_summary
                == cached.stretch[name].first_summary
            )


class TestResults:
    def test_to_jsonable_handles_result_dataclasses(self):
        result = fig09_scaling.run(TINY)
        payload = to_jsonable(result)
        assert payload["sweep"] == [40, 56]
        assert "Disco" in payload["mean_state"]
        json.dumps(payload)  # round-trips

    def test_to_jsonable_nonfinite_floats(self):
        assert to_jsonable(float("inf")) == "inf"
        assert to_jsonable(float("nan")) == "nan"

    def test_dump_json_is_deterministic(self):
        document = {"b": 1, "a": {"y": 2.5, "x": (1, 2)}}
        assert dump_json(document) == dump_json(
            json.loads(dump_json(document))
        )


class TestEngine:
    def test_serial_run_matches_legacy_runner(self):
        from repro.experiments.runner import run_experiment

        runs = run_scenarios(
            ["fig07-state-bytes"], scale=TINY, cache=None
        )
        _, legacy_report = run_experiment("fig07-state-bytes", TINY)
        assert runs["fig07-state-bytes"].report == legacy_report

    def test_cache_does_not_change_reports(self):
        ids = ["fig02-state-cdf", "fig03-stretch-cdf"]
        cold = run_scenarios(ids, scale=TINY, cache=None)
        warm = run_scenarios(ids, scale=TINY, cache=ArtifactCache())
        for scenario_id in ids:
            assert cold[scenario_id].report == warm[scenario_id].report

    def test_json_documents_written(self, tmp_path):
        json_dir = tmp_path / "results"
        runs = run_scenarios(
            ["addr-sizes"],
            scale=TINY,
            json_dir=json_dir,
            cache=None,
        )
        document = json.loads((json_dir / "addr-sizes.json").read_text())
        assert document["schema"] == RESULT_SCHEMA
        assert document["id"] == "addr-sizes"
        assert document["report"] == runs["addr-sizes"].report
        assert document["scale"]["label"] == "tiny-test"
        manifest = json.loads((json_dir / "manifest.json").read_text())
        assert manifest["scenarios"]["addr-sizes"]["seconds"] >= 0

    def test_unknown_id_propagates(self):
        with pytest.raises(UnknownScenarioError):
            run_scenarios(["definitely-not-a-scenario"], scale=TINY)
