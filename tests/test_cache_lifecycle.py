"""Cache lifecycle: manifest sidecars, stats, clear, and eviction policy.

Covers the ops layer of the v2 artifact store (`repro.scenarios.lifecycle`
and the ``repro cache`` CLI): prune ordering (least-recently-hit first),
size-budget exactness, age-based eviction, tolerance of concurrent
writers/vanishing files, and the bounded-growth guarantee under repeated
scale sweeps.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.cli import main
from repro.scenarios.cache import ArtifactCache, cache_key
from repro.scenarios.lifecycle import (
    cache_stats,
    clear,
    prune,
    scan,
    write_manifest,
)


def _fill(root, sizes: dict[str, int], kind: str = "scheme") -> dict[str, str]:
    """Store artifacts with payloads of known approximate sizes; return keys."""
    cache = ArtifactCache(root)
    keys = {}
    for name, size in sizes.items():
        key = cache_key(kind, name)
        cache.get(kind, key, lambda size=size: "x" * size)
        keys[name] = key
    return keys


def _total_pickle_bytes(root) -> int:
    return sum(info.bytes for info in scan(root))


class TestManifestSidecars:
    def test_store_writes_sidecar_with_byte_count(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache_key("scheme", "a")
        cache.get("scheme", key, lambda: "payload")
        meta_path = tmp_path / "scheme" / f"{key}.meta.json"
        meta = json.loads(meta_path.read_text())
        assert meta["kind"] == "scheme"
        assert meta["key"] == key
        pkl = tmp_path / "scheme" / f"{key}.pkl"
        assert meta["bytes"] == pkl.stat().st_size
        assert meta["last_hit"] >= meta["created"] > 0

    def test_disk_hit_bumps_last_hit(self, tmp_path):
        key = _fill(tmp_path, {"a": 10})["a"]
        meta_path = tmp_path / "scheme" / f"{key}.meta.json"
        before = json.loads(meta_path.read_text())
        # Backdate, then hit from a fresh cache (fresh process-equivalent).
        before["last_hit"] = before["created"] - 1000.0
        meta_path.write_text(json.dumps(before))
        ArtifactCache(tmp_path).get(
            "scheme", key, lambda: pytest.fail("should hit disk")
        )
        after = json.loads(meta_path.read_text())
        assert after["last_hit"] > before["last_hit"]

    def test_scan_survives_missing_sidecar(self, tmp_path):
        key = _fill(tmp_path, {"a": 10})["a"]
        os.unlink(tmp_path / "scheme" / f"{key}.meta.json")
        (info,) = scan(tmp_path)
        assert info.key == key
        assert info.bytes == (tmp_path / "scheme" / f"{key}.pkl").stat().st_size

    def test_write_manifest_aggregates(self, tmp_path):
        _fill(tmp_path, {"a": 10, "b": 20})
        manifest = json.loads(open(write_manifest(tmp_path)).read())
        assert manifest["count"] == 2
        assert len(manifest["artifacts"]) == 2
        assert manifest["kinds"]["scheme"]["count"] == 2

    def test_stats_empty_root(self, tmp_path):
        stats = cache_stats(tmp_path / "nothing-here")
        assert stats["count"] == 0 and stats["bytes"] == 0


class TestClear:
    def test_clear_removes_everything(self, tmp_path):
        _fill(tmp_path, {"a": 100, "b": 200})
        report = clear(tmp_path)
        assert len(report.removed) == 2
        assert scan(tmp_path) == []

    def test_clear_sweeps_orphaned_sidecars(self, tmp_path):
        keys = _fill(tmp_path, {"a": 100})
        # A crashed writer / racing touch can leave a sidecar behind its
        # evicted pickle; clear must return the root to truly empty.
        os.unlink(tmp_path / "scheme" / f"{keys['a']}.pkl")
        orphan = tmp_path / "scheme" / f"{keys['a']}.meta.json"
        assert orphan.exists()
        clear(tmp_path)
        assert not orphan.exists()

    def test_prune_sweeps_orphaned_sidecars(self, tmp_path):
        keys = _fill(tmp_path, {"a": 100, "b": 100})
        os.unlink(tmp_path / "scheme" / f"{keys['a']}.pkl")
        orphan = tmp_path / "scheme" / f"{keys['a']}.meta.json"
        prune(tmp_path, max_bytes=0)
        assert not orphan.exists()


class TestPruneOrdering:
    def _backdate(self, root, key: str, *, last_hit: float) -> None:
        meta_path = root / "scheme" / f"{key}.meta.json"
        meta = json.loads(meta_path.read_text())
        meta["last_hit"] = last_hit
        meta_path.write_text(json.dumps(meta))

    def test_least_recently_hit_evicted_first(self, tmp_path):
        keys = _fill(tmp_path, {"old": 100, "new": 100})
        self._backdate(tmp_path, keys["old"], last_hit=1000.0)
        self._backdate(tmp_path, keys["new"], last_hit=2000.0)
        per = next(
            info.bytes for info in scan(tmp_path) if info.key == keys["new"]
        )
        report = prune(tmp_path, max_bytes=per)
        assert [info.key for info in report.removed] == [keys["old"]]
        assert [info.key for info in scan(tmp_path)] == [keys["new"]]

    def test_recent_hit_rescues_an_artifact(self, tmp_path):
        keys = _fill(tmp_path, {"a": 100, "b": 100})
        self._backdate(tmp_path, keys["a"], last_hit=1000.0)
        self._backdate(tmp_path, keys["b"], last_hit=2000.0)
        # A disk hit on "a" from a fresh cache makes it the survivor.
        ArtifactCache(tmp_path).get(
            "scheme", keys["a"], lambda: pytest.fail("should hit disk")
        )
        per = next(iter(scan(tmp_path))).bytes
        report = prune(tmp_path, max_bytes=per)
        assert [info.key for info in report.removed] == [keys["b"]]

    def test_size_threshold_is_exact(self, tmp_path):
        keys = _fill(tmp_path, {"a": 100, "b": 100, "c": 100})
        infos = {info.key: info for info in scan(tmp_path)}
        for rank, name in enumerate(("a", "b", "c")):
            self._backdate(tmp_path, keys[name], last_hit=1000.0 + rank)
        sizes = [infos[keys[n]].bytes for n in ("a", "b", "c")]
        # Budget for exactly the two most recently hit artifacts: prune
        # must remove only "a" (the eviction stops the moment the total
        # fits) and must not evict below the budget.
        budget = sizes[1] + sizes[2]
        report = prune(tmp_path, max_bytes=budget)
        assert [info.key for info in report.removed] == [keys["a"]]
        assert _total_pickle_bytes(tmp_path) == budget
        # One byte less than a single artifact's size removes everything.
        report = prune(tmp_path, max_bytes=sizes[1] - 1)
        assert _total_pickle_bytes(tmp_path) == 0
        assert len(report.kept) == 0

    def test_age_based_prune(self, tmp_path):
        keys = _fill(tmp_path, {"stale": 100, "fresh": 100})
        self._backdate(tmp_path, keys["stale"], last_hit=1000.0)
        report = prune(tmp_path, max_age_s=86400.0, now=1000.0 + 2 * 86400.0)
        assert [info.key for info in report.removed] == [keys["stale"]]

    def test_prune_without_limits_is_a_noop(self, tmp_path):
        _fill(tmp_path, {"a": 100})
        report = prune(tmp_path)
        assert report.removed == () and len(report.kept) == 1


class TestPruneConcurrency:
    def test_inflight_tmp_files_are_ignored(self, tmp_path):
        _fill(tmp_path, {"a": 100})
        spool = tmp_path / "scheme" / "writer12345.tmp"
        spool.write_bytes(b"half-written artifact")
        report = prune(tmp_path, max_bytes=0)
        assert spool.exists()  # never touched
        assert len(report.removed) == 1

    def test_vanishing_files_are_tolerated(self, tmp_path, monkeypatch):
        # Deterministic race: another process deletes the LRU victim
        # between prune's scan and its unlink.  Prune must neither raise
        # nor stop early.
        keys = _fill(tmp_path, {"a": 100, "b": 100})
        victim = str(tmp_path / "scheme" / f"{keys['a']}.pkl")
        real_unlink = os.unlink

        def racing_unlink(path, *args, **kwargs):
            if os.fspath(path) == victim and os.path.exists(victim):
                real_unlink(victim)  # the other process wins the race
            return real_unlink(path, *args, **kwargs)

        monkeypatch.setattr(
            "repro.scenarios.lifecycle.os.unlink", racing_unlink
        )
        prune(tmp_path, max_bytes=0)
        assert _total_pickle_bytes(tmp_path) == 0

    def test_concurrent_write_during_prune_survives_intact(self, tmp_path):
        keys = _fill(tmp_path, {"a": 4096})
        barrier = threading.Barrier(2)

        def writer():
            barrier.wait()
            cache = ArtifactCache(tmp_path)
            cache.get("scheme", cache_key("scheme", "b"), lambda: "y" * 4096)

        thread = threading.Thread(target=writer)
        thread.start()
        barrier.wait()
        prune(tmp_path, max_bytes=0)
        thread.join()
        # Whatever the interleaving, every surviving artifact is complete
        # and loadable; the in-flight write was never corrupted.
        for info in scan(tmp_path):
            loaded = ArtifactCache(tmp_path).get(
                "scheme", info.key, lambda: pytest.fail("should hit disk")
            )
            assert loaded == "y" * 4096
        # A later prune can still evict it.
        prune(tmp_path, max_bytes=0)
        assert _total_pickle_bytes(tmp_path) == 0


class TestBoundedGrowth:
    def test_repeated_sweeps_stay_under_budget(self, tmp_path):
        """`repro cache prune --max-bytes` bounds the root across sweeps."""
        from repro.experiments.config import ExperimentScale
        from repro.scenarios.engine import run_scenarios

        budget = 256 * 1024
        for n in (48, 64, 80):
            scale = ExperimentScale(
                comparison_nodes=n,
                large_nodes=n,
                as_level_nodes=n,
                router_level_nodes=n + 8,
                pair_sample=30,
                messaging_sweep=(16, 20),
                scaling_sweep=(32, 40),
                seed=7,
                label=f"sweep-{n}",
            )
            run_scenarios(
                ["addr-sizes", "fig07-state-bytes"],
                scale=scale,
                cache=tmp_path,
            )
            prune(tmp_path, max_bytes=budget)
            assert _total_pickle_bytes(tmp_path) <= budget


class TestCacheCli:
    def test_stats_ls_prune_clear_roundtrip(self, tmp_path, capsys):
        root = str(tmp_path / "cc")
        _fill(root, {"a": 2048, "b": 2048})
        assert main(["cache", "stats", "--cache-dir", root]) == 0
        out = capsys.readouterr().out
        assert "scheme" in out and "manifest refreshed" in out
        assert (tmp_path / "cc" / "manifest.json").exists()

        assert main(["cache", "ls", "--cache-dir", root]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) >= 4

        assert main(
            ["cache", "prune", "--cache-dir", root, "--max-bytes", "2K"]
        ) == 0
        assert "pruned" in capsys.readouterr().out
        assert _total_pickle_bytes(root) <= 2048

        assert main(["cache", "clear", "--cache-dir", root]) == 0
        assert "removed" in capsys.readouterr().out
        assert scan(root) == []
        # clear must not leave a stale manifest behind.
        manifest = json.loads((tmp_path / "cc" / "manifest.json").read_text())
        assert manifest["count"] == 0 and manifest["artifacts"] == []

    def test_stats_refreshes_manifest_on_empty_root(self, tmp_path, capsys):
        root = tmp_path / "cc"
        _fill(root, {"a": 100})
        assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
        clear(root)
        assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
        capsys.readouterr()
        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["count"] == 0

    def test_prune_requires_a_limit(self, tmp_path, capsys):
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        assert "max-bytes" in capsys.readouterr().err

    def test_prune_rejects_bad_size(self, tmp_path, capsys):
        code = main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-bytes", "lots"]
        )
        assert code == 2

    def test_size_suffix_parsing(self):
        from repro.cli import _parse_size

        assert _parse_size("1024") == 1024
        assert _parse_size("2K") == 2048
        assert _parse_size("1.5M") == int(1.5 * 1024**2)
        assert _parse_size("1g") == 1024**3


class TestCompressedFraming:
    def test_payloads_are_compressed_on_disk(self, tmp_path):
        from repro.scenarios.cache import COMPRESS_MAGIC

        cache = ArtifactCache(tmp_path)
        key = cache_key("scheme", "compress-me")
        cache.get("scheme", key, lambda: "x" * 50_000)
        payload = (tmp_path / "scheme" / f"{key}.pkl").read_bytes()
        assert payload.startswith(COMPRESS_MAGIC)
        # Highly repetitive payload: compression must bite hard.
        assert len(payload) < 5_000
        meta = json.loads(
            (tmp_path / "scheme" / f"{key}.meta.json").read_text()
        )
        assert meta["bytes"] == len(payload)
        assert meta["raw_bytes"] > meta["bytes"]

    def test_legacy_uncompressed_artifact_still_loads(self, tmp_path):
        import pickle

        key = cache_key("scheme", "legacy")
        directory = tmp_path / "scheme"
        directory.mkdir(parents=True)
        (directory / f"{key}.pkl").write_bytes(
            pickle.dumps("legacy-payload", protocol=4)
        )
        cache = ArtifactCache(tmp_path)
        assert cache.get("scheme", key, lambda: "rebuilt") == "legacy-payload"
        assert cache.hits == 1 and cache.misses == 0

    def test_stats_report_compression_ratio(self, tmp_path):
        _fill(tmp_path, {"a": 50_000})
        stats = cache_stats(tmp_path)
        assert stats["raw_bytes"] > stats["bytes"]
        assert 0 < stats["compression_ratio"] < 1

    def test_stats_cli_prints_ratio(self, tmp_path, capsys):
        _fill(tmp_path, {"a": 50_000})
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "compression:" in capsys.readouterr().out


class TestPruneDryRun:
    def test_dry_run_removes_nothing(self, tmp_path):
        _fill(tmp_path, {"a": 4096, "b": 4096})
        before = {info.key for info in scan(tmp_path)}
        report = prune(tmp_path, max_bytes=1, dry_run=True)
        assert {info.key for info in report.removed} == before
        assert {info.key for info in scan(tmp_path)} == before

    def test_dry_run_report_matches_real_prune(self, tmp_path):
        _fill(tmp_path, {"a": 4096, "b": 4096, "c": 4096})
        dry = prune(tmp_path, max_bytes=5000, dry_run=True)
        real = prune(tmp_path, max_bytes=5000)
        assert {info.key for info in dry.removed} == {
            info.key for info in real.removed
        }
        assert {info.key for info in dry.kept} == {
            info.key for info in real.kept
        }

    def test_cli_dry_run_prints_and_preserves(self, tmp_path, capsys):
        _fill(tmp_path, {"a": 4096})
        before = _total_pickle_bytes(tmp_path)
        assert main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-bytes", "1", "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "would evict" in out and "dry run" in out
        assert _total_pickle_bytes(tmp_path) == before
