"""Tests for repro.dynamics (churn workloads and maintenance cost)."""

from __future__ import annotations

import pytest

from repro.core.nddisco import NDDiscoRouting
from repro.dynamics.churn import (
    ChurnEvent,
    apply_event,
    generate_churn_workload,
)
from repro.dynamics.maintenance import maintenance_cost
from repro.graphs.generators import gnm_random_graph, line_graph, ring_graph
from repro.graphs.topology import Topology


class TestChurnEvents:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(kind="node-down", edge=(0, 1), weight=1.0)

    def test_edge_down_removes_edge(self, small_gnm):
        edge = next((u, v) for u, v, _ in small_gnm.edges())
        event = ChurnEvent(kind="edge-down", edge=edge, weight=1.0)
        mutated = apply_event(small_gnm, event)
        assert not mutated.has_edge(*edge)
        assert mutated.num_edges == small_gnm.num_edges - 1
        # The original topology is untouched.
        assert small_gnm.has_edge(*edge)

    def test_edge_down_missing_edge_rejected(self, small_gnm):
        missing = next(
            (0, v)
            for v in range(1, small_gnm.num_nodes)
            if not small_gnm.has_edge(0, v)
        )
        with pytest.raises(ValueError):
            apply_event(
                small_gnm, ChurnEvent(kind="edge-down", edge=missing, weight=1.0)
            )

    def test_edge_down_refuses_to_disconnect(self):
        line = line_graph(5)
        with pytest.raises(ValueError, match="disconnect"):
            apply_event(line, ChurnEvent(kind="edge-down", edge=(2, 3), weight=1.0))

    def test_edge_up_adds_edge(self, small_gnm):
        missing = next(
            (0, v)
            for v in range(1, small_gnm.num_nodes)
            if not small_gnm.has_edge(0, v)
        )
        event = ChurnEvent(kind="edge-up", edge=missing, weight=2.5)
        mutated = apply_event(small_gnm, event)
        assert mutated.edge_weight(*missing) == 2.5

    def test_edge_up_duplicate_rejected(self, small_gnm):
        edge = next((u, v) for u, v, _ in small_gnm.edges())
        with pytest.raises(ValueError):
            apply_event(small_gnm, ChurnEvent(kind="edge-up", edge=edge, weight=1.0))


class TestWorkloadGeneration:
    def test_workload_length_and_determinism(self, small_gnm):
        a = generate_churn_workload(small_gnm, num_events=8, seed=3)
        b = generate_churn_workload(small_gnm, num_events=8, seed=3)
        assert len(a) == 8
        assert a == b

    def test_workload_preserves_connectivity(self, small_gnm):
        workload = generate_churn_workload(small_gnm, num_events=10, seed=4)
        current = small_gnm.copy()
        for event in workload:
            current = apply_event(current, event)
            assert current.is_connected()

    def test_recovering_workload_restores_topology(self, small_gnm):
        workload = generate_churn_workload(small_gnm, num_events=10, seed=5)
        final = workload.apply(small_gnm)
        assert final == small_gnm  # alternating down/up events cancel out

    def test_non_recovering_workload_sheds_edges(self, small_gnm):
        workload = generate_churn_workload(
            small_gnm, num_events=5, seed=6, recover=False
        )
        final = workload.apply(small_gnm)
        assert final.num_edges == small_gnm.num_edges - 5
        assert final.is_connected()

    def test_tree_like_topology_rejected(self):
        line = line_graph(10)  # every edge is a bridge
        with pytest.raises(ValueError):
            generate_churn_workload(line, num_events=2, seed=1)

    def test_disconnected_base_rejected(self):
        disconnected = Topology.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            generate_churn_workload(disconnected, num_events=1)


class TestMaintenanceCost:
    @pytest.fixture(scope="class")
    def before_after(self):
        topology = gnm_random_graph(90, seed=8, average_degree=6.0)
        before = NDDiscoRouting(topology, seed=8)
        workload = generate_churn_workload(
            topology, num_events=1, seed=9, recover=False
        )
        after_topology = workload.apply(topology)
        after = NDDiscoRouting(after_topology, seed=8, landmarks=before.landmarks)
        return before, after

    def test_identical_states_cost_nothing(self, small_gnm, nddisco_small):
        cost = maintenance_cost(nddisco_small, nddisco_small)
        assert cost.addresses_changed == 0
        assert cost.total_incremental_entries == 0
        assert not cost.landmark_set_changed

    def test_single_link_failure_cost_is_local(self, before_after):
        before, after = before_after
        cost = maintenance_cost(before, after)
        n = before.topology.num_nodes
        # Only a small part of the network is affected by one link failure.
        assert cost.addresses_changed <= n // 3
        assert cost.vicinity_entries_changed <= n * 20
        assert cost.resolution_updates == cost.addresses_changed
        assert not cost.landmark_set_changed

    def test_dissemination_scales_with_changed_addresses(self, before_after):
        before, after = before_after
        cost = maintenance_cost(before, after)
        if cost.addresses_changed:
            assert cost.dissemination_messages >= cost.addresses_changed
        else:
            assert cost.dissemination_messages == 0

    def test_landmark_churn_detected(self):
        ring = ring_graph(32)
        before = NDDiscoRouting(ring, seed=1, landmarks={0, 8, 16, 24})
        after = NDDiscoRouting(ring, seed=1, landmarks={0, 8, 16})
        cost = maintenance_cost(before, after)
        assert cost.landmark_set_changed
        assert cost.landmark_entries_changed >= 32  # withdrawn landmark routes

    def test_mismatched_sizes_rejected(self, nddisco_small):
        other_topology = gnm_random_graph(32, seed=1, average_degree=4.0)
        other = NDDiscoRouting(other_topology, seed=1)
        with pytest.raises(ValueError):
            maintenance_cost(nddisco_small, other)


class TestChurnExperiment:
    def test_experiment_runs(self):
        from repro.experiments import churn_cost
        from repro.experiments.config import ExperimentScale

        tiny = ExperimentScale(comparison_nodes=80, pair_sample=40, seed=13, label="t")
        result = churn_cost.run(tiny, num_events=4)
        report = churn_cost.format_report(result)
        assert result.events == 4
        assert 0.0 <= result.incremental_fraction < 1.0
        assert "maintenance cost" in report.lower()


class TestAblationExperiment:
    def test_experiment_runs(self):
        from repro.experiments import ablations
        from repro.experiments.config import ExperimentScale

        tiny = ExperimentScale(
            comparison_nodes=80,
            router_level_nodes=90,
            pair_sample=40,
            seed=13,
            label="t",
        )
        result = ablations.run(tiny)
        report = ablations.format_report(result)
        assert len(result.vicinity) == 3
        assert len(result.landmark_policies) == 3
        assert result.address_design.block_mean_bytes > 0
        assert result.resolution_balance[-1].max_over_mean_load >= 1.0
        assert "ablations" in report.lower()
