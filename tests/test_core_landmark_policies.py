"""Tests for repro.core.landmark_policies (§6 operator-chosen landmarks)."""

from __future__ import annotations

import pytest

from repro.core.landmark_policies import (
    degree_based_landmarks,
    random_landmarks,
    spread_landmarks,
    target_landmark_count,
)
from repro.core.landmarks import landmark_probability
from repro.core.nddisco import NDDiscoRouting
from repro.graphs.shortest_paths import dijkstra
from repro.metrics.stretch import measure_stretch


class TestTargetCount:
    def test_matches_random_expectation(self):
        n = 1000
        assert target_landmark_count(n) == round(n * landmark_probability(n))

    def test_at_least_one(self):
        assert target_landmark_count(1) >= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            target_landmark_count(0)


class TestPolicies:
    def test_random_policy_wraps_default(self, small_gnm):
        assert random_landmarks(small_gnm, seed=3) == random_landmarks(
            small_gnm, seed=3
        )

    def test_degree_based_picks_highest_degree(self, small_internet):
        landmarks = degree_based_landmarks(small_internet, count=5)
        assert len(landmarks) == 5
        cutoff = min(small_internet.degree(v) for v in landmarks)
        non_landmarks = [v for v in small_internet.nodes() if v not in landmarks]
        assert all(small_internet.degree(v) <= cutoff for v in non_landmarks)

    def test_degree_based_default_budget(self, small_gnm):
        landmarks = degree_based_landmarks(small_gnm)
        assert len(landmarks) == target_landmark_count(small_gnm.num_nodes)

    def test_degree_based_count_capped(self, tiny_star):
        assert len(degree_based_landmarks(tiny_star, count=100)) == tiny_star.num_nodes

    def test_spread_landmarks_budget(self, small_gnm):
        landmarks = spread_landmarks(small_gnm, count=8, seed=1)
        assert len(landmarks) == 8

    def test_spread_minimises_worst_distance_vs_random(self, small_geometric):
        """Farthest-point placement covers the graph at least as well as a
        random set of the same size (by worst node-to-landmark distance)."""
        count = 8
        spread = spread_landmarks(small_geometric, count=count, seed=2)
        random_set = sorted(random_landmarks(small_geometric, seed=2))[:count]

        def worst_distance(landmarks):
            best = {v: float("inf") for v in small_geometric.nodes()}
            for landmark in landmarks:
                distances, _ = dijkstra(small_geometric, landmark)
                for node, value in distances.items():
                    best[node] = min(best[node], value)
            return max(best.values())

        assert worst_distance(spread) <= worst_distance(set(random_set)) + 1e-9

    def test_spread_deterministic(self, small_gnm):
        assert spread_landmarks(small_gnm, count=6, seed=5) == spread_landmarks(
            small_gnm, count=6, seed=5
        )

    def test_invalid_counts(self, small_gnm):
        with pytest.raises(ValueError):
            degree_based_landmarks(small_gnm, count=0)
        with pytest.raises(ValueError):
            spread_landmarks(small_gnm, count=0)


class TestPoliciesPreserveGuarantees:
    @pytest.mark.parametrize("policy", ["degree", "spread"])
    def test_later_packet_bound_holds(self, medium_gnm, policy):
        """§6: the guarantees only need Õ(√n) landmarks with vicinity coverage,
        so operator-chosen landmark sets keep the stretch bound."""
        budget = target_landmark_count(medium_gnm.num_nodes)
        if policy == "degree":
            landmarks = degree_based_landmarks(medium_gnm, count=budget)
        else:
            landmarks = spread_landmarks(medium_gnm, count=budget, seed=4)
        nddisco = NDDiscoRouting(medium_gnm, seed=4, landmarks=landmarks)
        report = measure_stretch(nddisco, pair_sample=150, seed=5)
        assert report.later_summary.maximum <= 3.0 + 1e-9
