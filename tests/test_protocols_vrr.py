"""Tests for repro.protocols.vrr."""

from __future__ import annotations

import pytest

from repro.graphs.generators import gnm_random_graph, line_graph
from repro.metrics.state import measure_state
from repro.metrics.stretch import measure_stretch
from repro.protocols.vrr import VirtualRingRouting


class TestConstruction:
    def test_vset_size_validation(self, small_gnm):
        with pytest.raises(ValueError):
            VirtualRingRouting(small_gnm, vset_size=3)
        with pytest.raises(ValueError):
            VirtualRingRouting(small_gnm, vset_size=0)

    def test_names_length_validated(self, small_gnm):
        from repro.naming.names import name_for_node

        with pytest.raises(ValueError):
            VirtualRingRouting(small_gnm, names=[name_for_node(0)])

    def test_deterministic_given_seed(self, small_gnm):
        a = VirtualRingRouting(small_gnm, seed=5)
        b = VirtualRingRouting(small_gnm, seed=5)
        assert [a.state_entries(v) for v in small_gnm.nodes()] == [
            b.state_entries(v) for v in small_gnm.nodes()
        ]

    def test_join_order_affects_state(self, small_gnm):
        """Converged state depends on the order of node joins (§5.1)."""
        a = [VirtualRingRouting(small_gnm, seed=1).state_entries(v) for v in range(64)]
        b = [VirtualRingRouting(small_gnm, seed=9).state_entries(v) for v in range(64)]
        assert a != b


class TestVsetsAndPaths:
    def test_vset_sizes(self, vrr_small, small_gnm):
        for node in range(small_gnm.num_nodes):
            vset = vrr_small.vset_of(node)
            assert len(vset) <= 2 * vrr_small.vset_size
            assert node not in vset

    def test_active_paths_connect_vset_members(self, vrr_small, small_gnm):
        for a, b, path in vrr_small.active_paths():
            assert path[0] in (a, b)
            assert path[-1] in (a, b)
            for u, v in zip(path, path[1:]):
                assert small_gnm.has_edge(u, v)

    def test_path_count_scales_with_n_and_r(self, vrr_small, small_gnm):
        paths = vrr_small.active_paths()
        n = small_gnm.num_nodes
        assert len(paths) >= n  # at least ~r/2 paths per node survive
        assert len(paths) <= 3 * n * vrr_small.vset_size

    def test_state_counts_paths_through_node(self, vrr_small, small_gnm):
        for node in range(0, small_gnm.num_nodes, 11):
            through = sum(
                1 for _, _, path in vrr_small.active_paths() if node in path
            )
            assert vrr_small.state_entries(node) == through + small_gnm.degree(node)

    def test_state_bytes_positive(self, vrr_small):
        assert vrr_small.state_bytes(0) > 0


class TestRouting:
    def test_self_route(self, vrr_small):
        assert vrr_small.route(2, 2).path == (2,)

    def test_delivery_on_random_graph(self, vrr_small, small_gnm):
        delivered = 0
        total = 0
        for source in range(0, small_gnm.num_nodes, 5):
            for target in range(0, small_gnm.num_nodes, 7):
                if source == target:
                    continue
                total += 1
                result = vrr_small.route(source, target)
                assert result.path[0] == source
                assert result.path[-1] == target
                for a, b in zip(result.path, result.path[1:]):
                    assert small_gnm.has_edge(a, b)
                if result.delivered:
                    delivered += 1
        # Greedy forwarding over the virtual ring delivers the vast majority
        # of flows without falling back to repair.
        assert delivered / total >= 0.9

    def test_first_equals_later(self, vrr_small):
        assert (
            vrr_small.first_packet_route(0, 40).path
            == vrr_small.later_packet_route(0, 40).path
        )

    def test_stretch_higher_than_shortest_path(self, medium_gnm):
        vrr = VirtualRingRouting(medium_gnm, seed=2)
        report = measure_stretch(vrr, pair_sample=200, seed=3)
        assert report.first_summary.mean > 1.1
        assert report.first_summary.maximum > 2.0

    def test_out_of_range(self, vrr_small):
        with pytest.raises(ValueError):
            vrr_small.route(0, 999)


class TestStateImbalance:
    def test_state_tail_heavier_than_mean(self, medium_gnm, small_internet):
        """Some nodes accumulate far more path state than the average (§5.2),
        especially on Internet-like topologies with central nodes."""
        random_graph = measure_state(
            VirtualRingRouting(medium_gnm, seed=2)
        ).entry_summary
        assert random_graph.maximum >= 2.0 * random_graph.mean
        internet_like = measure_state(
            VirtualRingRouting(small_internet, seed=2)
        ).entry_summary
        assert internet_like.maximum >= 3.0 * internet_like.mean

    def test_average_state_low(self, medium_gnm):
        """VRR's *mean* state is small -- the problem is the tail."""
        vrr = VirtualRingRouting(medium_gnm, seed=2)
        report = measure_state(vrr)
        assert report.entry_summary.mean <= medium_gnm.num_nodes / 2

    def test_line_topology_concentrates_state(self):
        """On a path graph the middle nodes relay most vset paths."""
        line = line_graph(40)
        vrr = VirtualRingRouting(line, seed=1)
        middle = vrr.state_entries(20)
        edge = vrr.state_entries(0)
        assert middle > edge
