"""Shared-memory publication of substrate tables.

Covers the publish/attach mechanics (:class:`SharedTables` /
:meth:`SubstrateTables.from_shared`), attach/detach lifetimes (attachers'
views survive the publisher unlinking the name; close is idempotent), the
cache-level swap-in (:attr:`ArtifactCache.shared_tables`), and the
scenario engine's parent-publish path staying byte-identical.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.nddisco import NDDiscoRouting
from repro.core.tables import SharedTables, SubstrateTables
from repro.graphs.generators import gnm_random_graph
from repro.graphs.sampling import sample_pairs
from repro.metrics.stretch import measure_stretch
from repro.scenarios.cache import (
    ArtifactCache,
    activated,
    load_tables_artifact,
    tables_key,
)
from repro.staticsim.simulation import StaticSimulation


def _shm_available() -> bool:
    try:
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=8)
        segment.close()
        segment.unlink()
        return True
    except Exception:
        return False


pytestmark = pytest.mark.skipif(
    not _shm_available(), reason="multiprocessing.shared_memory unavailable"
)


@pytest.fixture(scope="module")
def scheme():
    return NDDiscoRouting(gnm_random_graph(90, seed=3, average_degree=6.0), seed=1)


class TestPublishAttach:
    def test_attached_tables_match_published(self, scheme):
        tables = scheme.tables
        with SharedTables(tables) as shared:
            attached = SubstrateTables.from_shared(shared.handle)
            assert attached.landmarks == tables.landmarks
            assert list(attached.spt_dist) == list(tables.spt_dist)
            assert list(attached.closest) == list(tables.closest)
            assert list(attached.vicinity.members) == list(
                tables.vicinity.members
            )
            assert attached.addresses() == scheme.addresses
            # Zero-copy: the slabs are views over the segment, not arrays.
            assert isinstance(attached.spt_dist, memoryview)

    def test_views_survive_publisher_close(self, scheme):
        shared = SharedTables(scheme.tables)
        attached = SubstrateTables.from_shared(shared.handle)
        probe = list(scheme.tables.spt_dist[:8])
        shared.close()  # unlinks the name; mapped views stay valid
        assert list(attached.spt_dist[:8]) == probe

    def test_close_is_idempotent(self, scheme):
        shared = SharedTables(scheme.tables)
        shared.close()
        shared.close()

    def test_attach_after_unlink_fails(self, scheme):
        shared = SharedTables(scheme.tables)
        handle = shared.handle
        shared.close()
        with pytest.raises(Exception):
            SubstrateTables.from_shared(handle)

    def test_scheme_rebuilt_on_attached_tables_routes_identically(self, scheme):
        # A scheme whose substrate slabs are shared-memory views must
        # route exactly like the scheme that published them.
        topology = scheme.topology
        pairs = sample_pairs(topology, 120, seed=5)
        baseline = measure_stretch(scheme, pairs=pairs)
        with SharedTables(scheme.tables) as shared:
            attached = SubstrateTables.from_shared(shared.handle)
            twin = NDDiscoRouting.__new__(NDDiscoRouting)
            twin.__dict__.update(scheme.__dict__)
            twin._tables = attached
            twin._landmark_spts = attached.spt_rows()
            twin._landmark_distances = {
                landmark: rows[0]
                for landmark, rows in attached.spt_rows().items()
            }
            twin._landmark_parents = {
                landmark: rows[1]
                for landmark, rows in attached.spt_rows().items()
            }
            twin._closest_landmark, twin._closest_landmark_distance = (
                attached.closest_rows()
            )
            twin._vicinities = attached.vicinity_views()
            twin._addresses = attached.addresses()
            assert measure_stretch(twin, pairs=pairs) == baseline


class TestCacheSwapIn:
    def _populate(self, tmp_path, topology):
        cache = ArtifactCache(tmp_path)
        with activated(cache):
            simulation = StaticSimulation(
                topology, ("disco", "nd-disco", "s4"), seed=1
            )
            return simulation.run(pair_sample=100)

    def test_tables_artifact_written_and_loadable(self, tmp_path):
        topology = gnm_random_graph(90, seed=3, average_degree=6.0)
        self._populate(tmp_path, topology)
        tables_dir = tmp_path / "tables"
        pickles = [f for f in os.listdir(tables_dir) if f.endswith(".pkl")]
        assert len(pickles) == 1
        tables = load_tables_artifact(str(tables_dir / pickles[0]))
        assert isinstance(tables, SubstrateTables)

    def test_warm_load_attaches_shared_tables(self, tmp_path):
        topology = gnm_random_graph(90, seed=3, average_degree=6.0)
        cold = self._populate(tmp_path, topology)
        tables_dir = tmp_path / "tables"
        name = [f for f in os.listdir(tables_dir) if f.endswith(".pkl")][0]
        key = name[: -len(".pkl")]
        published = SharedTables(load_tables_artifact(str(tables_dir / name)))
        try:
            cache = ArtifactCache(
                tmp_path, shared_tables={key: published.handle}
            )
            with activated(cache):
                simulation = StaticSimulation(
                    topology.copy(), ("disco", "nd-disco", "s4"), seed=1
                )
                warm = simulation.run(pair_sample=100)
            assert cache.misses == 0
            nd = simulation.scheme("nd-disco")
            assert isinstance(nd.tables.spt_dist, memoryview)
            # One shared substrate graph across the schemes, as always.
            assert simulation.scheme("s4").tables is nd.tables
            assert simulation.scheme("disco").nddisco is nd
            for name in cold.state:
                assert cold.state[name] == warm.state[name]
                assert cold.stretch[name] == warm.stretch[name]
            del simulation, nd
        finally:
            published.close()

    def test_vanished_segment_falls_back_to_disk(self, tmp_path):
        topology = gnm_random_graph(90, seed=3, average_degree=6.0)
        cold = self._populate(tmp_path, topology)
        tables_dir = tmp_path / "tables"
        name = [f for f in os.listdir(tables_dir) if f.endswith(".pkl")][0]
        key = name[: -len(".pkl")]
        published = SharedTables(load_tables_artifact(str(tables_dir / name)))
        handle = published.handle
        published.close()  # segment gone before any worker attaches
        cache = ArtifactCache(tmp_path, shared_tables={key: handle})
        with activated(cache):
            simulation = StaticSimulation(
                topology.copy(), ("disco", "nd-disco", "s4"), seed=1
            )
            warm = simulation.run(pair_sample=100)
        assert cache.misses == 0
        for scheme_name in cold.state:
            assert cold.stretch[scheme_name] == warm.stretch[scheme_name]

    def test_tables_key_is_stable_and_distinct(self):
        assert tables_key("abc") == tables_key("abc")
        assert tables_key("abc") != "abc"
        assert tables_key("abc") != tables_key("abd")


class TestEngineParentPublish:
    def test_publish_cached_tables_roundtrip(self, tmp_path):
        import json

        from repro.scenarios.engine import _publish_cached_tables

        topology = gnm_random_graph(90, seed=3, average_degree=6.0)
        cache = ArtifactCache(tmp_path)
        with activated(cache):
            StaticSimulation(topology, ("nd-disco",), seed=1)
        handles, published = _publish_cached_tables(ArtifactCache(tmp_path))
        try:
            assert len(handles) == 1 and len(published) == 1
            key, handle = next(iter(handles.items()))
            attached = SubstrateTables.from_shared(handle)
            disk = load_tables_artifact(
                str(tmp_path / "tables" / f"{key}.pkl")
            )
            assert list(attached.spt_dist) == list(disk.spt_dist)
            del attached
            # Publication counts as a use: LRU pruning must see the hit.
            meta = json.loads(
                (tmp_path / "tables" / f"{key}.meta.json").read_text()
            )
            assert meta["last_hit"] >= meta["created"]
        finally:
            for publication in published:
                publication.close()

    def test_publish_on_cold_root_is_empty(self, tmp_path):
        from repro.scenarios.engine import _publish_cached_tables

        handles, published = _publish_cached_tables(ArtifactCache(tmp_path))
        assert handles == {} and published == []
        assert (
            _publish_cached_tables(ArtifactCache(None)) == ({}, [])
        )  # memory-only cache publishes nothing

    def test_publish_respects_budget(self, tmp_path, monkeypatch):
        from repro.scenarios import engine

        topology = gnm_random_graph(90, seed=3, average_degree=6.0)
        cache = ArtifactCache(tmp_path)
        with activated(cache):
            StaticSimulation(topology, ("nd-disco",), seed=1)
        monkeypatch.setattr(engine, "_PUBLISH_MAX_BYTES", 1)
        handles, published = engine._publish_cached_tables(
            ArtifactCache(tmp_path)
        )
        assert handles == {} and published == []
