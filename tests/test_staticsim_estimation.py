"""Tests for repro.staticsim and repro.estimation."""

from __future__ import annotations

import pytest

from repro.core.shortcutting import ShortcutMode
from repro.estimation.error_injection import inject_estimate_error
from repro.estimation.synopsis import SynopsisDiffusion
from repro.graphs.generators import gnm_random_graph, line_graph
from repro.staticsim.simulation import StaticSimulation


class TestStaticSimulation:
    @pytest.fixture(scope="class")
    def simulation(self, small_gnm):
        return StaticSimulation(
            small_gnm, ("disco", "nd-disco", "s4", "vrr", "path-vector"), seed=1
        )

    def test_builds_all_requested_schemes(self, simulation):
        assert set(simulation.schemes) == {
            "disco",
            "nd-disco",
            "s4",
            "vrr",
            "path-vector",
        }

    def test_disco_and_nddisco_share_substrate(self, simulation):
        disco = simulation.scheme("disco")
        nddisco = simulation.scheme("nd-disco")
        assert disco.nddisco is nddisco

    def test_s4_shares_landmarks_with_disco(self, simulation):
        assert simulation.scheme("s4").landmarks == simulation.scheme("disco").landmarks

    def test_run_produces_reports_for_every_protocol(self, simulation):
        results = simulation.run(
            measure_state_flag=True,
            measure_stretch_flag=True,
            measure_congestion_flag=True,
            pair_sample=60,
        )
        assert set(results.state) == set(results.stretch) == set(results.congestion)
        assert len(results.protocols()) == 5

    def test_identical_workloads_across_protocols(self, simulation):
        results = simulation.run(pair_sample=40)
        pairs = {report.pairs for report in results.stretch.values()}
        assert len(pairs) == 1  # every protocol measured on the same pairs

    def test_requires_protocols(self, small_gnm):
        with pytest.raises(ValueError):
            StaticSimulation(small_gnm, ())

    def test_scheme_options_forwarded(self, small_gnm):
        simulation = StaticSimulation(
            small_gnm,
            ("vrr",),
            seed=1,
            scheme_options={"vrr": {"vset_size": 6}},
        )
        assert simulation.scheme("vrr").vset_size == 6

    def test_shortcut_mode_forwarded(self, small_gnm):
        simulation = StaticSimulation(
            small_gnm, ("disco",), seed=1, shortcut_mode=ShortcutMode.NONE
        )
        assert simulation.scheme("disco").shortcut_mode is ShortcutMode.NONE

    def test_node_sampling(self, simulation):
        results = simulation.run(node_sample=16, measure_stretch_flag=False)
        for report in results.state.values():
            assert len(report.nodes) == 16


class TestSynopsisDiffusion:
    def test_estimates_close_to_truth(self, medium_gnm):
        diffusion = SynopsisDiffusion(medium_gnm, num_synopses=64, seed=1)
        result = diffusion.run()
        assert len(result.estimates) == medium_gnm.num_nodes
        assert result.mean_relative_error(medium_gnm.num_nodes) <= 0.35

    def test_all_nodes_agree_after_flooding(self, small_gnm):
        result = SynopsisDiffusion(small_gnm, num_synopses=32, seed=2).run()
        assert len(set(result.estimates)) == 1

    def test_partial_rounds_disagree_on_line(self):
        line = line_graph(30)
        result = SynopsisDiffusion(line, num_synopses=16, seed=3).run(rounds=2)
        assert len(set(result.estimates)) > 1

    def test_more_synopses_reduce_error(self, small_gnm):
        few = SynopsisDiffusion(small_gnm, num_synopses=8, seed=4).run()
        many = SynopsisDiffusion(small_gnm, num_synopses=256, seed=4).run()
        n = small_gnm.num_nodes
        assert many.mean_relative_error(n) <= few.mean_relative_error(n) + 0.05

    def test_factor_two_guarantee_mostly_holds(self, medium_gnm):
        result = SynopsisDiffusion(medium_gnm, num_synopses=128, seed=5).run()
        within = sum(
            SynopsisDiffusion.estimate_is_within_factor_two(
                estimate, medium_gnm.num_nodes
            )
            for estimate in result.estimates
        )
        assert within / len(result.estimates) >= 0.95

    def test_synopsis_bytes(self):
        assert SynopsisDiffusion.synopsis_bytes(64) == 256

    def test_invalid_parameters(self, small_gnm):
        with pytest.raises(ValueError):
            SynopsisDiffusion(small_gnm, num_synopses=0)
        diffusion = SynopsisDiffusion(small_gnm, num_synopses=4)
        with pytest.raises(ValueError):
            diffusion.run(rounds=0)

    def test_deterministic(self, small_gnm):
        a = SynopsisDiffusion(small_gnm, num_synopses=16, seed=7).run()
        b = SynopsisDiffusion(small_gnm, num_synopses=16, seed=7).run()
        assert a.estimates == b.estimates


class TestErrorInjection:
    def test_bounds_respected(self):
        estimates = inject_estimate_error(1000, max_error=0.6, seed=1)
        assert len(estimates) == 1000
        for value in estimates.values():
            assert 400.0 - 1e-9 <= value <= 1600.0 + 1e-9

    def test_zero_error_is_exact(self):
        estimates = inject_estimate_error(500, max_error=0.0, seed=2)
        assert all(value == 500.0 for value in estimates.values())

    def test_deterministic(self):
        assert inject_estimate_error(100, max_error=0.4, seed=3) == (
            inject_estimate_error(100, max_error=0.4, seed=3)
        )

    def test_num_nodes_override(self):
        estimates = inject_estimate_error(1000, max_error=0.2, num_nodes=10, seed=4)
        assert set(estimates) == set(range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            inject_estimate_error(0, max_error=0.5)
        with pytest.raises(ValueError):
            inject_estimate_error(10, max_error=1.5)

    def test_errors_actually_vary(self):
        estimates = inject_estimate_error(1000, max_error=0.6, seed=5)
        assert len(set(estimates.values())) > 100
