"""Tests for repro.utils.randomness."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.utils.randomness import SeedSequenceFactory, derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "landmarks") == derive_seed(42, "landmarks")

    def test_different_tags_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_range(self):
        value = derive_seed(123456789, "x")
        assert 0 <= value < 2**64

    def test_negative_seed_allowed(self):
        assert derive_seed(-5, "a") != derive_seed(5, "a")

    @given(st.integers(), st.text(max_size=30))
    def test_always_in_range(self, seed, tag):
        value = derive_seed(seed, tag)
        assert 0 <= value < 2**64


class TestMakeRng:
    def test_reproducible_stream(self):
        a = make_rng(7, "x")
        b = make_rng(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_tag_changes_stream(self):
        a = make_rng(7, "x").random()
        b = make_rng(7, "y").random()
        assert a != b

    def test_empty_tag_uses_raw_seed(self):
        import random

        assert make_rng(99).random() == random.Random(99).random()


class TestSeedSequenceFactory:
    def test_repeated_requests_differ(self):
        factory = SeedSequenceFactory(1)
        assert factory.seed("trial") != factory.seed("trial")

    def test_two_factories_agree(self):
        a = SeedSequenceFactory(5)
        b = SeedSequenceFactory(5)
        assert [a.seed("t") for _ in range(4)] == [b.seed("t") for _ in range(4)]

    def test_rng_streams_independent_across_tags(self):
        factory = SeedSequenceFactory(3)
        x = factory.rng("alpha").random()
        y = factory.rng("beta").random()
        assert x != y

    def test_spawn_creates_distinct_child(self):
        parent = SeedSequenceFactory(11)
        child = parent.spawn("worker")
        assert isinstance(child, SeedSequenceFactory)
        assert child.root_seed != parent.root_seed

    def test_stream_yields_rngs(self):
        factory = SeedSequenceFactory(2)
        stream = factory.stream("s")
        first = next(stream)
        second = next(stream)
        assert first.random() != second.random()

    def test_root_seed_property(self):
        assert SeedSequenceFactory(17).root_seed == 17
