"""Tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    require_in_range,
    require_positive,
    require_probability,
    require_type,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive("x", 1)
        require_positive("x", 0.001)

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError, match="x"):
            require_positive("x", 0)

    def test_allow_zero(self):
        require_positive("x", 0, allow_zero=True)
        with pytest.raises(ValueError):
            require_positive("x", -1, allow_zero=True)


class TestRequireInRange:
    def test_inclusive_bounds(self):
        require_in_range("x", 0.0, 0.0, 1.0)
        require_in_range("x", 1.0, 0.0, 1.0)

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            require_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="x"):
            require_in_range("x", 2.0, 0.0, 1.0)


class TestRequireProbability:
    def test_valid(self):
        require_probability("p", 0.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            require_probability("p", 1.5)


class TestRequireType:
    def test_accepts_correct_type(self):
        require_type("x", 5, int)
        require_type("x", "s", (int, str))

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            require_type("x", "5", int)

    def test_tuple_error_message(self):
        with pytest.raises(TypeError, match="int or str"):
            require_type("x", 1.5, (int, str))
