"""Tests for repro.graphs.topology."""

from __future__ import annotations

import pytest

from repro.graphs.topology import Topology


class TestConstruction:
    def test_empty(self):
        topology = Topology(0)
        assert topology.num_nodes == 0
        assert topology.num_edges == 0

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError):
            Topology(-1)

    def test_add_edge(self):
        topology = Topology(3)
        topology.add_edge(0, 1, 2.5)
        assert topology.num_edges == 1
        assert topology.has_edge(0, 1)
        assert topology.has_edge(1, 0)
        assert topology.edge_weight(0, 1) == 2.5

    def test_self_loop_rejected(self):
        topology = Topology(2)
        with pytest.raises(ValueError):
            topology.add_edge(1, 1)

    def test_out_of_range_node_rejected(self):
        topology = Topology(2)
        with pytest.raises(ValueError):
            topology.add_edge(0, 5)

    def test_nonpositive_weight_rejected(self):
        topology = Topology(2)
        with pytest.raises(ValueError):
            topology.add_edge(0, 1, 0.0)
        with pytest.raises(ValueError):
            topology.add_edge(0, 1, -3.0)

    def test_parallel_edge_keeps_smaller_weight(self):
        topology = Topology(2)
        topology.add_edge(0, 1, 5.0)
        topology.add_edge(0, 1, 2.0)
        assert topology.num_edges == 1
        assert topology.edge_weight(0, 1) == 2.0
        # Adjacency entries are updated too.
        assert topology.neighbor_weights(0) == [(1, 2.0)]

    def test_parallel_edge_larger_weight_ignored(self):
        topology = Topology(2)
        topology.add_edge(0, 1, 2.0)
        topology.add_edge(0, 1, 5.0)
        assert topology.edge_weight(0, 1) == 2.0

    def test_add_edges_from_mixed(self):
        topology = Topology(4)
        topology.add_edges_from([(0, 1), (1, 2, 3.0)])
        assert topology.edge_weight(0, 1) == 1.0
        assert topology.edge_weight(1, 2) == 3.0

    def test_from_edges_classmethod(self):
        topology = Topology.from_edges(3, [(0, 1), (1, 2)], name="tiny")
        assert topology.name == "tiny"
        assert topology.num_edges == 2


class TestAccessors:
    def test_degree_and_neighbors(self):
        topology = Topology.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert topology.degree(0) == 3
        assert sorted(topology.neighbors(0)) == [1, 2, 3]
        assert topology.degree(1) == 1

    def test_edges_iteration_unique(self):
        topology = Topology.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        edges = sorted(topology.edges())
        assert edges == [(0, 1, 2.0), (1, 2, 3.0)]

    def test_average_and_max_degree(self):
        topology = Topology.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert topology.average_degree() == pytest.approx(1.5)
        assert topology.max_degree() == 3

    def test_degree_sequence(self):
        topology = Topology.from_edges(3, [(0, 1)])
        assert topology.degree_sequence() == [1, 1, 0]

    def test_total_weight(self):
        topology = Topology.from_edges(3, [(0, 1, 2.0), (1, 2, 3.5)])
        assert topology.total_weight() == pytest.approx(5.5)

    def test_missing_edge_weight_raises(self):
        topology = Topology(3)
        with pytest.raises(KeyError):
            topology.edge_weight(0, 1)

    def test_empty_graph_degrees(self):
        topology = Topology(0)
        assert topology.average_degree() == 0.0
        assert topology.max_degree() == 0


class TestConnectivity:
    def test_single_node_connected(self):
        assert Topology(1).is_connected()

    def test_disconnected_graph(self):
        topology = Topology.from_edges(4, [(0, 1), (2, 3)])
        assert not topology.is_connected()
        assert len(topology.connected_components()) == 2

    def test_connected_graph(self):
        topology = Topology.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert topology.is_connected()

    def test_isolated_node_makes_disconnected(self):
        topology = Topology.from_edges(3, [(0, 1)])
        assert not topology.is_connected()

    def test_largest_component_subgraph(self):
        topology = Topology.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        sub, mapping = topology.largest_component_subgraph()
        assert sub.num_nodes == 3
        assert sub.is_connected()
        assert set(mapping.keys()) == {0, 1, 2}

    def test_largest_component_preserves_weights(self):
        topology = Topology.from_edges(4, [(0, 1, 7.0), (2, 3, 1.0), (1, 2, 0.5)])
        sub, mapping = topology.largest_component_subgraph()
        assert sub.edge_weight(mapping[0], mapping[1]) == 7.0

    def test_components_cover_all_nodes(self):
        topology = Topology.from_edges(6, [(0, 1), (2, 3)])
        components = topology.connected_components()
        covered = sorted(node for component in components for node in component)
        assert covered == list(range(6))

    def test_largest_component_matches_add_edge_replay(self):
        # The O(E) fast path must build the same subgraph (same relabelling,
        # weights, and adjacency order) as replaying add_edge per edge.
        topology = Topology.from_edges(
            8,
            [(5, 2, 1.5), (2, 7, 2.0), (7, 5, 0.5), (0, 1, 3.0), (3, 4, 1.0)],
        )
        sub, mapping = topology.largest_component_subgraph()
        expected = Topology(len(mapping), name=topology.name)
        for u, v, weight in topology.edges():
            if u in mapping and v in mapping:
                expected.add_edge(mapping[u], mapping[v], weight)
        assert sub == expected
        for node in sub.nodes():
            assert sub.neighbor_weights(node) == expected.neighbor_weights(node)


class TestConversionsAndDunder:
    def test_copy_is_independent(self):
        topology = Topology.from_edges(3, [(0, 1)])
        duplicate = topology.copy()
        duplicate.add_edge(1, 2)
        assert topology.num_edges == 1
        assert duplicate.num_edges == 2

    def test_copy_preserves_structure_exactly(self):
        # The O(E) fast path copies adjacency rows and the weight table
        # directly; the result must be indistinguishable from an add_edge
        # replay, down to neighbor insertion order.
        topology = Topology.from_edges(
            5, [(3, 1, 2.0), (0, 1, 1.5), (1, 4, 0.5), (2, 0, 3.0)], name="orig"
        )
        duplicate = topology.copy()
        assert duplicate == topology
        assert duplicate.name == topology.name
        for node in topology.nodes():
            assert duplicate.neighbor_weights(node) == topology.neighbor_weights(node)
        assert list(duplicate.edges()) == list(topology.edges())

    def test_copy_does_not_share_csr_snapshot(self):
        topology = Topology.from_edges(3, [(0, 1), (1, 2)])
        snapshot = topology.csr()
        duplicate = topology.copy()
        assert duplicate.csr() is not snapshot

    def test_get_edge_weight(self):
        topology = Topology.from_edges(3, [(0, 1, 2.5)])
        assert topology.get_edge_weight(0, 1) == 2.5
        assert topology.get_edge_weight(1, 0) == 2.5
        assert topology.get_edge_weight(0, 2) is None
        assert topology.get_edge_weight(0, 2, default=-1.0) == -1.0

    def test_equality(self):
        a = Topology.from_edges(3, [(0, 1, 2.0)])
        b = Topology.from_edges(3, [(0, 1, 2.0)])
        c = Topology.from_edges(3, [(0, 1, 3.0)])
        assert a == b
        assert a != c

    def test_repr_mentions_size(self):
        topology = Topology.from_edges(3, [(0, 1)], name="x")
        assert "x" in repr(topology)
        assert "3" in repr(topology)

    def test_to_networkx_round_trip(self):
        networkx = pytest.importorskip("networkx")
        topology = Topology.from_edges(4, [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 4.0)])
        graph = topology.to_networkx()
        assert isinstance(graph, networkx.Graph)
        assert graph.number_of_nodes() == 4
        assert graph[0][1]["weight"] == 2.0
