"""Tests for repro.experiments.reporting and the remaining figure modules."""

from __future__ import annotations

import pytest

from repro.experiments import fig02_state_cdf, fig03_stretch_cdf, fig05_geometric_comparison
from repro.experiments.config import ExperimentScale
from repro.experiments.reporting import (
    header,
    render_congestion_reports,
    render_state_reports,
    render_stretch_reports,
)
from repro.metrics.congestion import measure_congestion
from repro.metrics.state import measure_state
from repro.metrics.stretch import measure_stretch

TINY = ExperimentScale(
    comparison_nodes=64,
    large_nodes=64,
    as_level_nodes=64,
    router_level_nodes=72,
    pair_sample=40,
    messaging_sweep=(16, 24),
    scaling_sweep=(32, 48),
    seed=19,
    label="tiny-report",
)


class TestRenderers:
    def test_header(self):
        text = header("Title", "subtitle")
        assert "Title" in text
        assert "subtitle" in text
        assert text.startswith("=")

    def test_header_without_subtitle(self):
        assert "Only" in header("Only")

    def test_render_state_reports(self, disco_small, s4_small):
        reports = {
            "Disco": measure_state(disco_small),
            "S4": measure_state(s4_small),
        }
        text = render_state_reports(reports)
        assert "Disco" in text and "S4" in text
        assert "p95" in text
        assert "Summary:" in text

    def test_render_stretch_reports(self, disco_small, s4_small):
        reports = {
            "Disco": measure_stretch(disco_small, pair_sample=30, seed=1),
            "S4": measure_stretch(s4_small, pair_sample=30, seed=1),
        }
        text = render_stretch_reports(reports)
        assert "Disco-First" in text
        assert "S4-Later" in text
        assert "first mean" in text

    def test_render_congestion_reports(self, disco_small, s4_small):
        reports = {
            "Disco": measure_congestion(disco_small, seed=1),
            "S4": measure_congestion(s4_small, seed=1),
        }
        text = render_congestion_reports(reports)
        assert "paths per edge" in text
        assert "frac edges > p99" in text


class TestRemainingFigureModules:
    def test_fig02_structure(self):
        result = fig02_state_cdf.run(TINY)
        report = fig02_state_cdf.format_report(result)
        assert set(result.panels()) == {"geometric", "as-level", "router-level"}
        for reports in result.panels().values():
            assert {"Disco", "ND-Disco", "S4"} == set(reports)
        assert result.imbalance("geometric", "Disco") >= 1.0
        assert "Fig. 2" in report

    def test_fig03_structure(self):
        result = fig03_stretch_cdf.run(TINY)
        report = fig03_stretch_cdf.format_report(result)
        for reports in result.panels().values():
            assert set(reports) == {"Disco", "S4"}
            assert reports["Disco"].later_summary.maximum <= 3.0 + 1e-9
        assert "Fig. 3" in report

    def test_fig05_structure(self):
        result = fig05_geometric_comparison.run(TINY)
        report = fig05_geometric_comparison.format_report(result)
        assert "geometric" in result.topology_label
        assert {"Disco", "ND-Disco", "S4", "VRR", "Path-Vector"} <= set(
            result.results.state
        )
        assert "link latencies" in report
