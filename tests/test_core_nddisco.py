"""Tests for repro.core.nddisco."""

from __future__ import annotations

import pytest

from repro.core.nddisco import NDDiscoRouting
from repro.core.shortcutting import ShortcutMode
from repro.core.vicinity import vicinity_size
from repro.graphs.generators import gnm_random_graph, line_graph
from repro.graphs.shortest_paths import dijkstra, path_length
from repro.graphs.topology import Topology
from repro.metrics.stretch import measure_stretch


class TestConstruction:
    def test_requires_connected_topology(self):
        disconnected = Topology.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="connected"):
            NDDiscoRouting(disconnected)

    def test_requires_nonempty_topology(self):
        with pytest.raises(ValueError):
            NDDiscoRouting(Topology(0))

    def test_landmarks_selected(self, nddisco_small):
        assert len(nddisco_small.landmarks) >= 1
        assert all(
            0 <= lm < nddisco_small.topology.num_nodes
            for lm in nddisco_small.landmarks
        )

    def test_explicit_landmarks_respected(self, small_gnm):
        routing = NDDiscoRouting(small_gnm, landmarks={0, 1})
        assert routing.landmarks == {0, 1}

    def test_invalid_landmark_rejected(self, small_gnm):
        with pytest.raises(ValueError):
            NDDiscoRouting(small_gnm, landmarks={10_000})

    def test_empty_landmarks_rejected(self, small_gnm):
        with pytest.raises(ValueError):
            NDDiscoRouting(small_gnm, landmarks=set())

    def test_names_length_checked(self, small_gnm):
        from repro.naming.names import name_for_node

        with pytest.raises(ValueError):
            NDDiscoRouting(small_gnm, names=[name_for_node(0)])

    def test_vicinity_sizes(self, nddisco_small, small_gnm):
        expected = vicinity_size(small_gnm.num_nodes)
        assert all(len(v) == expected for v in nddisco_small.vicinities)

    def test_deterministic(self, small_gnm):
        a = NDDiscoRouting(small_gnm, seed=5)
        b = NDDiscoRouting(small_gnm, seed=5)
        assert a.landmarks == b.landmarks
        assert [adr.landmark for adr in a.addresses] == [
            adr.landmark for adr in b.addresses
        ]


class TestAddresses:
    def test_every_node_has_address(self, nddisco_small, small_gnm):
        assert len(nddisco_small.addresses) == small_gnm.num_nodes
        for node, address in enumerate(nddisco_small.addresses):
            assert address.node == node
            assert address.landmark in nddisco_small.landmarks

    def test_address_landmark_is_closest(self, nddisco_small, small_gnm):
        distances_by_landmark = {
            lm: dijkstra(small_gnm, lm)[0] for lm in nddisco_small.landmarks
        }
        for node in range(small_gnm.num_nodes):
            chosen = nddisco_small.closest_landmark(node)
            best = min(
                distances_by_landmark[lm][node] for lm in nddisco_small.landmarks
            )
            assert distances_by_landmark[chosen][node] == pytest.approx(best)

    def test_address_route_is_shortest_path(self, nddisco_small, small_gnm):
        for node in (3, 17, 42):
            address = nddisco_small.address_of(node)
            route_length = path_length(small_gnm, list(address.route.path))
            expected = nddisco_small.landmark_distance(address.landmark, node)
            assert route_length == pytest.approx(expected)

    def test_landmark_own_address_trivial(self, nddisco_small):
        landmark = next(iter(nddisco_small.landmarks))
        assert nddisco_small.address_of(landmark).is_landmark_self

    def test_landmark_path_endpoints(self, nddisco_small):
        landmark = next(iter(nddisco_small.landmarks))
        path = nddisco_small.landmark_path(landmark, 9)
        assert path[0] == landmark
        assert path[-1] == 9

    def test_landmark_queries_validate(self, nddisco_small):
        non_landmark = next(
            v
            for v in range(nddisco_small.topology.num_nodes)
            if v not in nddisco_small.landmarks
        )
        with pytest.raises(KeyError):
            nddisco_small.landmark_distance(non_landmark, 0)
        with pytest.raises(KeyError):
            nddisco_small.landmark_path(non_landmark, 0)

    def test_resolution_database_populated(self, nddisco_small, small_gnm):
        database = nddisco_small.resolution_database
        for node in (0, 10, 63):
            assert database.lookup(nddisco_small.names[node]) == (
                nddisco_small.address_of(node)
            )


class TestStateAccounting:
    def test_state_entries_positive_and_bounded(self, nddisco_small, small_gnm):
        n = small_gnm.num_nodes
        for node in range(n):
            entries = nddisco_small.state_entries(node)
            assert entries > 0
            # landmarks + vicinity + labels + resolution is far below n^2 and,
            # for non-landmarks, below ~3x the vicinity+landmark total.
            assert entries < n * 3

    def test_landmarks_hold_resolution_state(self, nddisco_small):
        landmark_total = sum(
            nddisco_small.resolution_entries(lm) for lm in nddisco_small.landmarks
        )
        assert landmark_total == nddisco_small.topology.num_nodes
        non_landmark = next(
            v
            for v in range(nddisco_small.topology.num_nodes)
            if v not in nddisco_small.landmarks
        )
        assert nddisco_small.resolution_entries(non_landmark) == 0

    def test_label_mappings_bounded_by_degree(self, nddisco_small, small_gnm):
        for node in range(small_gnm.num_nodes):
            assert nddisco_small.label_mapping_entries(node) <= small_gnm.degree(node)

    def test_state_bytes_scale_with_name_size(self, nddisco_small):
        assert nddisco_small.state_bytes(0, name_bytes=16) > nddisco_small.state_bytes(
            0, name_bytes=4
        )

    def test_state_entry_counts_helper(self, nddisco_small, small_gnm):
        counts = nddisco_small.state_entry_counts()
        assert len(counts) == small_gnm.num_nodes
        assert counts[5] == nddisco_small.state_entries(5)


class TestRouting:
    def test_self_route(self, nddisco_small):
        result = nddisco_small.first_packet_route(4, 4)
        assert result.path == (4,)
        assert result.mechanism == "self"

    def test_direct_route_to_vicinity_member(self, nddisco_small):
        source = 0
        member = next(
            m for m in nddisco_small.vicinities[source].members if m != source
        )
        result = nddisco_small.later_packet_route(source, member)
        assert result.mechanism == "direct"
        assert result.path[0] == source
        assert result.path[-1] == member

    def test_direct_route_to_landmark(self, nddisco_small):
        landmark = next(iter(nddisco_small.landmarks))
        source = next(
            v
            for v in range(nddisco_small.topology.num_nodes)
            if v != landmark and landmark not in nddisco_small.vicinities[v]
        ) if any(
            landmark not in nddisco_small.vicinities[v]
            for v in range(nddisco_small.topology.num_nodes)
            if v != landmark
        ) else 0
        if source != landmark:
            result = nddisco_small.later_packet_route(source, landmark)
            assert result.path[-1] == landmark

    def test_routes_are_walks(self, nddisco_small, small_gnm):
        for source, target in [(0, 63), (5, 40), (60, 2), (33, 12)]:
            for result in (
                nddisco_small.first_packet_route(source, target),
                nddisco_small.later_packet_route(source, target),
            ):
                assert result.path[0] == source
                assert result.path[-1] == target
                for a, b in zip(result.path, result.path[1:]):
                    assert small_gnm.has_edge(a, b)

    def test_later_packet_stretch_bound(self, nddisco_small, small_gnm):
        report = measure_stretch(nddisco_small, pair_sample=200, seed=3)
        assert report.later_summary.maximum <= 3.0 + 1e-9

    def test_first_packet_without_resolution_stretch_bound(self, small_gnm):
        routing = NDDiscoRouting(small_gnm, seed=1, resolve_first_packet=False)
        report = measure_stretch(routing, pair_sample=200, seed=3)
        assert report.first_summary.maximum <= 5.0 + 1e-9

    def test_out_of_range_endpoints(self, nddisco_small):
        with pytest.raises(ValueError):
            nddisco_small.first_packet_route(0, 10_000)
        with pytest.raises(ValueError):
            nddisco_small.later_packet_route(-1, 0)

    def test_handshake_used_when_source_in_target_vicinity(self, small_gnm):
        routing = NDDiscoRouting(small_gnm, seed=1)
        # Find a pair where s is in V(t) but t not in V(s) and t not a landmark.
        found = None
        for target in range(small_gnm.num_nodes):
            if target in routing.landmarks:
                continue
            for source in routing.vicinities[target].members:
                if source == target:
                    continue
                if target not in routing.vicinities[source] and target not in routing.landmarks:
                    found = (source, target)
                    break
            if found:
                break
        if found is None:
            pytest.skip("no asymmetric vicinity pair in this topology")
        source, target = found
        result = routing.later_packet_route(source, target)
        assert result.mechanism == "handshake"
        # The handshake path is a shortest path.
        distances, _ = dijkstra(small_gnm, source)
        assert path_length(small_gnm, list(result.path)) == pytest.approx(
            distances[target]
        )

    def test_relay_route_structure(self, nddisco_small):
        source, target = 0, 63
        if nddisco_small.knows_direct_route(source, target):
            pytest.skip("pair resolves directly on this topology")
        relay = nddisco_small.relay_route(source, target)
        assert relay[0] == source
        assert relay[-1] == target
        landmark = nddisco_small.closest_landmark(target)
        assert landmark in relay

    def test_shortcut_mode_setter(self, small_gnm):
        routing = NDDiscoRouting(small_gnm, seed=1, shortcut_mode=ShortcutMode.NONE)
        assert routing.shortcut_mode is ShortcutMode.NONE
        routing.shortcut_mode = ShortcutMode.PATH_KNOWLEDGE
        assert routing.shortcut_mode is ShortcutMode.PATH_KNOWLEDGE
        with pytest.raises(TypeError):
            routing.shortcut_mode = "none"  # type: ignore[assignment]

    def test_shortcutting_never_hurts_mean_stretch(self, medium_gnm):
        base = NDDiscoRouting(
            medium_gnm, seed=2, shortcut_mode=ShortcutMode.NONE,
            resolve_first_packet=False,
        )
        pairs = [(i, (i * 7 + 31) % medium_gnm.num_nodes) for i in range(0, 100)]
        pairs = [(s, t) for s, t in pairs if s != t]
        none_report = measure_stretch(base, pairs=pairs)
        base.shortcut_mode = ShortcutMode.NO_PATH_KNOWLEDGE
        shortcut_report = measure_stretch(base, pairs=pairs)
        assert (
            shortcut_report.first_summary.mean
            <= none_report.first_summary.mean + 1e-9
        )


class TestLineTopology:
    def test_line_graph_routing(self):
        line = line_graph(12)
        routing = NDDiscoRouting(line, seed=3)
        result = routing.later_packet_route(0, 11)
        assert result.path[0] == 0
        assert result.path[-1] == 11
        assert path_length(line, list(result.path)) <= 3 * 11
