"""Tests for the path-vector agents and the convergence runners."""

from __future__ import annotations

import pytest

from repro.core.landmarks import select_landmarks
from repro.core.vicinity import vicinity_size
from repro.graphs.generators import gnm_random_graph, line_graph
from repro.graphs.shortest_paths import dijkstra
from repro.sim.convergence import (
    simulate_disco_convergence,
    simulate_nddisco_convergence,
    simulate_path_vector_convergence,
    simulate_s4_convergence,
)


@pytest.fixture(scope="module")
def convergence_topology():
    return gnm_random_graph(48, seed=21, average_degree=6.0)


@pytest.fixture(scope="module")
def path_vector_report(convergence_topology):
    return simulate_path_vector_convergence(convergence_topology, keep_tables=True)


class TestPathVectorConvergence:
    def test_every_node_learns_every_destination(
        self, convergence_topology, path_vector_report
    ):
        n = convergence_topology.num_nodes
        assert path_vector_report.tables is not None
        for node in range(n):
            assert len(path_vector_report.tables[node]) == n

    def test_costs_match_dijkstra(self, convergence_topology, path_vector_report):
        tables = path_vector_report.tables
        for source in (0, 17, 40):
            distances, _ = dijkstra(convergence_topology, source)
            for destination, (cost, path) in tables[source].items():
                assert cost == pytest.approx(distances[destination])
                assert path[0] == source
                assert path[-1] == destination

    def test_paths_are_valid_walks(self, convergence_topology, path_vector_report):
        tables = path_vector_report.tables
        for node in (3, 30):
            for _, (cost, path) in tables[node].items():
                for a, b in zip(path, path[1:]):
                    assert convergence_topology.has_edge(a, b)

    def test_messaging_scales_linearly_in_n(self):
        small = simulate_path_vector_convergence(
            gnm_random_graph(24, seed=1, average_degree=6.0)
        )
        large = simulate_path_vector_convergence(
            gnm_random_graph(96, seed=1, average_degree=6.0)
        )
        # Entries per node grow at least ~linearly with n (Ω(n) messaging).
        assert large.entries_per_node >= 2.5 * small.entries_per_node

    def test_report_totals_consistent(self, convergence_topology, path_vector_report):
        n = convergence_topology.num_nodes
        assert path_vector_report.messages_per_node == pytest.approx(
            path_vector_report.total_messages / n
        )
        assert path_vector_report.entries_per_node == pytest.approx(
            path_vector_report.total_entries / n
        )
        assert path_vector_report.num_nodes == n


class TestNDDiscoConvergence:
    def test_tables_bounded_by_capacity(self, convergence_topology):
        report = simulate_nddisco_convergence(
            convergence_topology, seed=3, keep_tables=True
        )
        n = convergence_topology.num_nodes
        capacity = vicinity_size(n)
        landmarks = report.extra["num_landmarks"]
        assert report.tables is not None
        for node in range(n):
            # self + landmarks + vicinity capacity is the hard ceiling.
            assert len(report.tables[node]) <= 1 + landmarks + capacity

    def test_landmark_routes_always_present(self, convergence_topology):
        landmarks = select_landmarks(convergence_topology.num_nodes, seed=3)
        report = simulate_nddisco_convergence(
            convergence_topology, seed=3, landmarks=landmarks, keep_tables=True
        )
        assert report.tables is not None
        for node in range(convergence_topology.num_nodes):
            for landmark in landmarks:
                if landmark != node:
                    assert landmark in report.tables[node]

    def test_landmark_routes_are_shortest(self, convergence_topology):
        landmarks = select_landmarks(convergence_topology.num_nodes, seed=3)
        report = simulate_nddisco_convergence(
            convergence_topology, seed=3, landmarks=landmarks, keep_tables=True
        )
        for landmark in landmarks:
            distances, _ = dijkstra(convergence_topology, landmark)
            for node in range(convergence_topology.num_nodes):
                if node == landmark:
                    continue
                cost, _ = report.tables[node][landmark]
                assert cost == pytest.approx(distances[node])

    def test_cheaper_than_path_vector(self, convergence_topology, path_vector_report):
        report = simulate_nddisco_convergence(convergence_topology, seed=3)
        assert report.entries_per_node < path_vector_report.entries_per_node

    def test_vicinity_routes_mostly_match_static(self, convergence_topology):
        from repro.core.vicinity import compute_vicinities

        report = simulate_nddisco_convergence(
            convergence_topology, seed=3, keep_tables=True
        )
        static = compute_vicinities(convergence_topology)
        n = convergence_topology.num_nodes
        total = 0
        matched = 0
        for node in range(n):
            members = static[node].members - {node}
            learned = set(report.tables[node]) - {node}
            total += len(members)
            matched += len(members & learned)
        assert matched / total >= 0.75


class TestS4Convergence:
    def test_runs_and_reports(self, convergence_topology):
        report = simulate_s4_convergence(convergence_topology, seed=3)
        assert report.protocol == "S4"
        assert report.total_messages > 0
        assert report.extra["num_landmarks"] >= 1

    def test_cluster_tables_respect_definition(self, convergence_topology):
        landmarks = select_landmarks(convergence_topology.num_nodes, seed=3)
        report = simulate_s4_convergence(
            convergence_topology, seed=3, landmarks=landmarks, keep_tables=True
        )
        # Destination's distance to its closest landmark.
        landmark_distance = {}
        for node in range(convergence_topology.num_nodes):
            landmark_distance[node] = min(
                dijkstra(convergence_topology, lm)[0][node] for lm in landmarks
            )
        for node in range(0, convergence_topology.num_nodes, 7):
            for destination, (cost, _) in report.tables[node].items():
                if destination == node or destination in landmarks:
                    continue
                assert cost < landmark_distance[destination] + 1e-9


class TestDiscoConvergence:
    def test_adds_overhead_over_nddisco(self, convergence_topology):
        nddisco = simulate_nddisco_convergence(convergence_topology, seed=3)
        disco = simulate_disco_convergence(convergence_topology, seed=3, num_fingers=1)
        assert disco.entries_per_node > nddisco.entries_per_node
        assert disco.extra["overlay_coverage"] == pytest.approx(1.0)

    def test_three_fingers_cost_more_than_one(self, convergence_topology):
        one = simulate_disco_convergence(convergence_topology, seed=3, num_fingers=1)
        three = simulate_disco_convergence(convergence_topology, seed=3, num_fingers=3)
        assert three.total_messages >= one.total_messages
        assert three.protocol == "Disco-3-Finger"

    def test_still_cheaper_than_path_vector_at_scale(self):
        topology = gnm_random_graph(96, seed=5, average_degree=6.0)
        path_vector = simulate_path_vector_convergence(topology)
        disco = simulate_disco_convergence(topology, seed=5, num_fingers=1)
        assert disco.entries_per_node < path_vector.entries_per_node


class TestLineTopologyConvergence:
    def test_path_vector_on_line(self):
        line = line_graph(12)
        report = simulate_path_vector_convergence(line, keep_tables=True)
        # End node learns a route to the other end with the right cost.
        cost, path = report.tables[0][11]
        assert cost == pytest.approx(11.0)
        assert list(path) == list(range(12))
