"""Tests for repro.core.disco (the full name-independent protocol)."""

from __future__ import annotations

import pytest

from repro.core.disco import DiscoRouting
from repro.core.nddisco import NDDiscoRouting
from repro.core.shortcutting import ShortcutMode
from repro.graphs.generators import gnm_random_graph
from repro.graphs.shortest_paths import path_length
from repro.metrics.stretch import measure_stretch


class TestConstruction:
    def test_reuses_shared_nddisco(self, small_gnm, nddisco_small, disco_small):
        assert disco_small.nddisco is nddisco_small
        assert disco_small.landmarks == nddisco_small.landmarks

    def test_rejects_foreign_nddisco(self, small_gnm, medium_gnm):
        foreign = NDDiscoRouting(medium_gnm, seed=2)
        with pytest.raises(ValueError):
            DiscoRouting(small_gnm, nddisco=foreign)

    def test_builds_own_nddisco_when_not_given(self, small_gnm):
        disco = DiscoRouting(small_gnm, seed=4)
        assert disco.nddisco.topology is small_gnm

    def test_overlay_and_grouping_sizes(self, disco_small, small_gnm):
        assert disco_small.grouping.num_nodes == small_gnm.num_nodes
        assert disco_small.overlay.grouping is disco_small.grouping

    def test_shortcut_mode_propagates_to_nddisco(self, small_gnm):
        disco = DiscoRouting(small_gnm, seed=4, shortcut_mode=ShortcutMode.NONE)
        assert disco.shortcut_mode is ShortcutMode.NONE
        disco.shortcut_mode = ShortcutMode.PATH_KNOWLEDGE
        assert disco.nddisco.shortcut_mode is ShortcutMode.PATH_KNOWLEDGE
        with pytest.raises(TypeError):
            disco.shortcut_mode = 3  # type: ignore[assignment]


class TestStateAccounting:
    def test_disco_state_exceeds_nddisco(self, disco_small, nddisco_small, small_gnm):
        """Name-independence costs extra state (group mappings + overlay)."""
        for node in range(0, small_gnm.num_nodes, 7):
            assert disco_small.state_entries(node) > nddisco_small.state_entries(node)

    def test_group_entries_match_grouping_model(self, disco_small, small_gnm):
        for node in (0, 20, 63):
            expected = len(disco_small.grouping.stored_addresses(node)) - 1
            assert disco_small.group_address_entries(node) == expected

    def test_state_bytes_scale_with_name_size(self, disco_small):
        assert disco_small.state_bytes(3, name_bytes=16) > disco_small.state_bytes(
            3, name_bytes=4
        )

    def test_state_bytes_exceed_nddisco(self, disco_small, nddisco_small):
        assert disco_small.state_bytes(5) > nddisco_small.state_bytes(5)

    def test_state_distribution_balanced(self, disco_medium, medium_gnm):
        """Disco's max/mean state ratio stays small (the Fig. 2 shape)."""
        entries = [
            disco_medium.state_entries(v) for v in range(medium_gnm.num_nodes)
        ]
        mean = sum(entries) / len(entries)
        assert max(entries) <= 2.0 * mean


class TestRouting:
    def test_self_route(self, disco_small):
        assert disco_small.first_packet_route(9, 9).path == (9,)

    def test_routes_are_walks_to_target(self, disco_small, small_gnm):
        for source, target in [(0, 63), (11, 37), (58, 3), (25, 44)]:
            for result in (
                disco_small.first_packet_route(source, target),
                disco_small.later_packet_route(source, target),
            ):
                assert result.delivered
                assert result.path[0] == source
                assert result.path[-1] == target
                for a, b in zip(result.path, result.path[1:]):
                    assert small_gnm.has_edge(a, b)

    def test_all_pairs_reachable_small(self, disco_small, small_gnm):
        n = small_gnm.num_nodes
        for source in range(0, n, 9):
            for target in range(0, n, 7):
                if source == target:
                    continue
                result = disco_small.first_packet_route(source, target)
                assert result.path[-1] == target

    def test_first_packet_mechanisms_valid(self, disco_medium, medium_gnm):
        allowed = {
            "self",
            "direct",
            "known-address",
            "group-contact",
            "resolution-fallback",
        }
        seen = set()
        for source in range(0, medium_gnm.num_nodes, 11):
            for target in range(0, medium_gnm.num_nodes, 13):
                if source == target:
                    continue
                result = disco_medium.first_packet_route(source, target)
                assert result.mechanism in allowed
                seen.add(result.mechanism)
        # The interesting name-independent mechanism must actually occur.
        assert "group-contact" in seen or "known-address" in seen

    def test_knows_address_reflexive_and_groupwise(self, disco_small):
        assert disco_small.knows_address(5, 5)
        grouping = disco_small.grouping
        for holder, owner in [(0, 1), (10, 60)]:
            assert disco_small.knows_address(holder, owner) == (
                grouping.stores_address_of(holder, owner)
            )

    def test_first_packet_stretch_bound(self, disco_medium):
        report = measure_stretch(disco_medium, pair_sample=300, seed=5)
        assert report.first_summary.maximum <= 7.0 + 1e-9

    def test_later_packet_stretch_bound(self, disco_medium):
        report = measure_stretch(disco_medium, pair_sample=300, seed=6)
        assert report.later_summary.maximum <= 3.0 + 1e-9

    def test_later_packets_never_longer_than_first(self, disco_medium, medium_gnm):
        for source, target in [(0, 100), (3, 77), (140, 2), (60, 61)]:
            if source == target:
                continue
            first = disco_medium.first_packet_route(source, target)
            later = disco_medium.later_packet_route(source, target)
            assert later.length(medium_gnm) <= first.length(medium_gnm) + 1e-9

    def test_later_route_same_as_nddisco(self, disco_small, nddisco_small):
        for source, target in [(0, 50), (20, 40)]:
            assert (
                disco_small.later_packet_route(source, target).path
                == nddisco_small.later_packet_route(source, target).path
            )

    def test_out_of_range_rejected(self, disco_small):
        with pytest.raises(ValueError):
            disco_small.first_packet_route(0, 1_000)


class TestEstimateErrors:
    def test_scalar_estimate_accepted(self, small_gnm, nddisco_small):
        disco = DiscoRouting(
            small_gnm, seed=1, nddisco=nddisco_small, estimated_n=128.0
        )
        result = disco.first_packet_route(0, 63)
        assert result.path[-1] == 63

    def test_per_node_estimates_still_route(self, medium_gnm):
        from repro.estimation.error_injection import inject_estimate_error

        estimates = inject_estimate_error(
            medium_gnm.num_nodes, max_error=0.6, seed=3
        )
        disco = DiscoRouting(medium_gnm, seed=2, estimated_n=estimates)
        delivered = 0
        total = 0
        for source in range(0, medium_gnm.num_nodes, 17):
            for target in range(0, medium_gnm.num_nodes, 13):
                if source == target:
                    continue
                total += 1
                result = disco.first_packet_route(source, target)
                if result.path and result.path[-1] == target:
                    delivered += 1
        assert delivered == total

    def test_estimate_error_increases_stretch_only_marginally(self, medium_gnm):
        from repro.estimation.error_injection import inject_estimate_error

        pairs = [(i, (i * 13 + 7) % medium_gnm.num_nodes) for i in range(120)]
        pairs = [(s, t) for s, t in pairs if s != t]
        base_nd = NDDiscoRouting(medium_gnm, seed=2)
        exact = DiscoRouting(medium_gnm, seed=2, nddisco=base_nd)
        noisy = DiscoRouting(
            medium_gnm,
            seed=2,
            nddisco=base_nd,
            estimated_n=inject_estimate_error(
                medium_gnm.num_nodes, max_error=0.4, seed=9
            ),
        )
        exact_mean = measure_stretch(exact, pairs=pairs).first_summary.mean
        noisy_mean = measure_stretch(noisy, pairs=pairs).first_summary.mean
        assert noisy_mean <= exact_mean * 1.25


class TestFingerConfiguration:
    def test_more_fingers_more_overlay_state(self, small_gnm, nddisco_small):
        one = DiscoRouting(small_gnm, seed=1, nddisco=nddisco_small, num_fingers=1)
        three = DiscoRouting(small_gnm, seed=1, nddisco=nddisco_small, num_fingers=3)
        total_one = sum(one.overlay.degree(v) for v in range(small_gnm.num_nodes))
        total_three = sum(
            three.overlay.degree(v) for v in range(small_gnm.num_nodes)
        )
        assert total_three > total_one
