"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graphs.generators import gnm_random_graph
from repro.graphs.io import write_edge_list


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_generate_validates_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "hypercube", "10", "--out", "x"])

    def test_compare_validates_protocols(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "x.edges", "--protocols", "ospf"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig04-gnm-comparison" in output
        assert "ablations" in output

    def test_run_rejects_unknown(self, capsys):
        assert main(["run", "fig99-unknown"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_unknown_suggests_near_misses(self, capsys):
        assert main(["run", "fig04-gnm-comparisn"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "fig04-gnm-comparison" in err

    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        output = capsys.readouterr().out
        assert "fig02-state-cdf" in output
        assert "geometric,as-level,router-level" in output
        assert "aliases" in output

    def test_run_requires_selection(self, capsys):
        assert main(["run"]) == 2
        assert "no experiments selected" in capsys.readouterr().err

    def test_generate_and_profile(self, tmp_path, capsys):
        out = tmp_path / "net.edges"
        assert main(["generate", "gnm", "64", "--seed", "3", "--out", str(out)]) == 0
        assert out.exists()
        assert main(["profile", str(out)]) == 0
        output = capsys.readouterr().out
        assert "average degree" in output
        assert "64" in output

    def test_compare_on_generated_topology(self, tmp_path, capsys):
        out = tmp_path / "net.edges"
        topology = gnm_random_graph(72, seed=5, average_degree=6.0)
        write_edge_list(topology, out)
        code = main(
            [
                "compare",
                str(out),
                "--protocols",
                "nd-disco",
                "s4",
                "--pairs",
                "40",
                "--seed",
                "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "ND-Disco" in output
        assert "S4" in output

    def test_compare_uses_largest_component(self, tmp_path, capsys):
        out = tmp_path / "disconnected.edges"
        out.write_text("# nodes 6\n0 1\n1 2\n2 0\n3 4\n4 5\n5 3\n0 3\n")
        # Make it disconnected by omitting the bridging edge.
        out.write_text("# nodes 6\n0 1\n1 2\n2 0\n3 4\n4 5\n5 3\n")
        code = main(
            ["compare", str(out), "--protocols", "shortest-path", "--pairs", "5"]
        )
        assert code == 0
        assert "largest connected component" in capsys.readouterr().out

    def test_bench_quick_writes_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_kernels.json"
        history = tmp_path / "history"
        assert (
            main(
                [
                    "bench",
                    "--quick",
                    "--out",
                    str(out),
                    "--history-dir",
                    str(history),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "staticsim/gnm-256" in output
        report = json.loads(out.read_text())
        assert report["schema"] == "repro-bench-kernels/v3"
        assert report["quick"] is True
        # Host metadata makes committed numbers comparable across machines.
        host = report["host"]
        assert host["cpu_model"]
        assert host["cpu_count"] >= 1
        assert host["python"]
        assert host["kernel_tier"] in ("c", "python")
        assert "scenario_suite/quick5-96" in report["benchmarks"]
        # The substrate-build smoke entry rides in quick mode (CI canary).
        assert "substrate_build/gnm-1024" in report["benchmarks"]
        for entry in report["benchmarks"].values():
            assert entry["before_s"] > 0
            assert entry["after_s"] > 0
            assert entry["speedup"] > 0
        # One history record per run, wrapping the same report.
        records = list(history.glob("*.json"))
        assert len(records) == 1
        record = json.loads(records[0].read_text())
        assert record["schema"] == "repro-bench-history/v1"
        assert "sha" in record["git"] and "dirty" in record["git"]
        assert record["report"]["benchmarks"] == report["benchmarks"]

    def test_bench_compare_reports_deltas(self, tmp_path, capsys):
        import json

        from repro.perf.history import record_run

        history = tmp_path / "history"

        def fake_report(generated, after_s):
            return {
                "schema": "repro-bench-kernels/v3",
                "generated": generated,
                "quick": False,
                "benchmarks": {
                    "substrate_build/gnm-1024": {
                        "params": {"n": 1024},
                        "before_s": 1.0,
                        "after_s": after_s,
                        "speedup": round(1.0 / after_s, 3),
                    },
                    f"only-{generated}": {
                        "params": {},
                        "before_s": 1.0,
                        "after_s": 1.0,
                        "speedup": 1.0,
                    },
                },
            }

        record_run(
            fake_report("2026-01-01T00:00:00+0000", 0.5),
            str(history),
            git={"sha": "a" * 40, "dirty": False},
        )
        record_run(
            fake_report("2026-01-02T00:00:00+0000", 0.25),
            str(history),
            git={"sha": "b" * 40, "dirty": False},
        )
        assert (
            main(
                [
                    "bench",
                    "compare",
                    "20260101",
                    "latest",
                    "--history-dir",
                    str(history),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "substrate_build/gnm-1024" in output
        assert "x2.000" in output  # A after / B after
        assert "+2.000" in output  # speedup delta 4.0 - 2.0
        assert "only in A" in output and "only in B" in output
        # Ambiguous and missing prefixes fail with exit code 2.
        assert (
            main(["bench", "compare", "2026", "latest", "--history-dir", str(history)])
            == 2
        )
        assert "ambiguous" in capsys.readouterr().err

    def test_substrate_command_converges_and_reports(self, tmp_path, capsys):
        assert (
            main(
                [
                    "substrate",
                    "gnm",
                    "300",
                    "--seed",
                    "3",
                    "--storage",
                    str(tmp_path / "slabs"),
                    "--routes",
                    "2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "nd-disco converged" in output
        assert "s4 converged" in output
        assert "route " in output
        assert "peak rss" in output
        # The storage directory is a complete, mmap-attachable artifact.
        from repro.core.tables import SubstrateTables

        attached = SubstrateTables.from_mmap(tmp_path / "slabs")
        assert attached.num_nodes == 300

    def test_substrate_requires_node_count_for_families(self, capsys):
        assert main(["substrate", "gnm"]) == 2
        assert "node count required" in capsys.readouterr().err
