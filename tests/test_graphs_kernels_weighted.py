"""Differential tests for the weighted CSR kernels (heap + Dial bucket).

The PR that introduced kernel auto-selection added two weighted kernels --
an indexed 4-ary heap and a Dial-style bucket queue -- each available in a
compiled C tier (when a compiler is present) and a pure-Python tier.  Every
(kernel, tier) combination must be bit-identical to the dict-based reference
engine: distances *and* predecessors, across full, k-nearest, radius, and
targeted searches, on every topology family the paper evaluates.

This file also pins:

* the :class:`~repro.graphs.csr.WeightProfile` quantum detection and its
  caching/invalidation on :class:`~repro.graphs.topology.Topology`;
* bucket-queue fallback -- irregular float weights must disqualify the
  bucket kernel and auto-select the heap;
* the exact-boundary semantics of ``dijkstra_radius`` / ``batched_radius``
  on weighted graphs (strict ``<`` by default, ``<=`` with
  ``inclusive=True``), which were previously untested at the boundary.
"""

from __future__ import annotations

import random

import pytest

from repro.graphs import _reference_paths as reference
from repro.graphs._ckernels import load_kernels
from repro.graphs.csr import (
    DIAL_MAX_QUANTA,
    CSRGraph,
    WeightProfile,
    parallel_k_nearest,
    profile_weights,
)
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_router_level,
    two_level_tree,
)
from repro.graphs.shortest_paths import dijkstra_radius
from repro.graphs.topology import Topology

HAVE_C = load_kernels() is not None

TIERS = [False] + ([True] if HAVE_C else [])
TIER_IDS = ["python"] + (["c"] if HAVE_C else [])


def _quantized_geometric(n: int, seed: int) -> Topology:
    return geometric_random_graph(
        n, seed=seed, average_degree=7.0, latency_quantum=0.25
    )


def _families() -> dict[str, Topology]:
    """Weighted / unit / tie-heavy families for kernel differentials."""
    return {
        "geometric": geometric_random_graph(90, seed=4, average_degree=7.0),
        "geometric-q": _quantized_geometric(90, seed=4),
        "router-level": internet_router_level(90, seed=2),
        "two-level-tree": two_level_tree(8),
    }


def _assert_matches_reference(topology: Topology, csr: CSRGraph) -> None:
    n = topology.num_nodes
    rng = random.Random(17)
    for source in range(0, n, 7):
        assert csr.dijkstra(source) == reference.dijkstra(topology, source)
        for k in (1, 3, 17, n):
            assert csr.dijkstra_k_nearest(
                source, k
            ) == reference.dijkstra_k_nearest(topology, source, k)
        for radius in (0.0, 1.0, 2.5, 30.0):
            for inclusive in (False, True):
                assert csr.dijkstra_radius(
                    source, radius, inclusive=inclusive
                ) == reference.dijkstra_radius(
                    topology, source, radius, inclusive=inclusive
                )
        targets = rng.sample(range(n), 5)
        assert csr.dijkstra(source, targets=targets) == reference.dijkstra(
            topology, source, targets=targets
        )


class TestKernelTierDifferential:
    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    @pytest.mark.parametrize("family", sorted(_families()))
    def test_auto_kernel_matches_reference(self, family, use_c):
        topology = _families()[family]
        csr = CSRGraph.from_topology(topology, use_c=use_c)
        _assert_matches_reference(topology, csr)

    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    @pytest.mark.parametrize("kernel", ["heap", "bucket"])
    def test_forced_kernels_match_reference_on_quantized(self, kernel, use_c):
        # Quantized weights admit both kernels; they must agree bit-for-bit
        # with the oracle (and hence with each other).
        topology = _quantized_geometric(80, seed=9)
        csr = CSRGraph.from_topology(topology, kernel=kernel, use_c=use_c)
        assert csr.kernel == kernel
        _assert_matches_reference(topology, csr)

    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    def test_heap_kernel_on_irregular_floats(self, use_c):
        topology = geometric_random_graph(70, seed=11, average_degree=6.0)
        csr = CSRGraph.from_topology(topology, use_c=use_c)
        assert csr.kernel == "heap"
        _assert_matches_reference(topology, csr)

    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    def test_spt_rows_and_target_distances(self, use_c):
        topology = _quantized_geometric(60, seed=5)
        csr = CSRGraph.from_topology(topology, use_c=use_c)
        n = topology.num_nodes
        for source in (0, 17, 42):
            distances, parents = reference.dijkstra(topology, source)
            dist_row, parent_row = csr.spt_rows(source)
            assert dist_row == [distances.get(v, 0.0) for v in range(n)]
            assert parent_row == [parents.get(v, -1) for v in range(n)]
        rng = random.Random(3)
        pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(30)]
        assert csr.batched_target_distances(
            pairs
        ) == reference.all_pairs_sampled_distances(topology, pairs)

    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    def test_empty_target_set_settles_only_source(self, use_c):
        # targets=[] must behave identically across tiers: the search stops
        # after settling the source (regression: the C tier used to treat an
        # empty target set as "unbounded" and return the full SPT).
        topology = _quantized_geometric(40, seed=8)
        csr = CSRGraph.from_topology(topology, use_c=use_c)
        assert csr.dijkstra(3, targets=[]) == ({3: 0.0}, {})

    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    def test_out_of_range_target_rejected(self, use_c):
        # Regression: out-of-range target ids used to reach the C kernel
        # unvalidated (out-of-bounds write into the target-flag buffer).
        topology = _quantized_geometric(40, seed=8)
        csr = CSRGraph.from_topology(topology, use_c=use_c)
        with pytest.raises(ValueError):
            csr.dijkstra(0, targets=[10**6])
        with pytest.raises(ValueError):
            csr.batched_target_distances([(0, -1)])

    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    def test_disconnected_graph_contracts(self, use_c):
        topology = Topology.from_edges(5, [(0, 1, 0.5), (2, 3, 1.5)])
        csr = CSRGraph.from_topology(topology, use_c=use_c)
        assert csr.dijkstra(0) == reference.dijkstra(topology, 0)
        dist_row, parent_row = csr.spt_rows(0, fill=-7.0)
        assert dist_row == [0.0, 0.5, -7.0, -7.0, -7.0]
        assert parent_row == [-1, 0, -1, -1, -1]
        with pytest.raises(ValueError):
            csr.batched_target_distances([(0, 4)])

    def test_tiers_agree_after_many_arena_reuses(self):
        # Generation stamping must keep searches independent in both tiers.
        if not HAVE_C:
            pytest.skip("C kernels unavailable")
        topology = _quantized_geometric(70, seed=13)
        c_csr = CSRGraph.from_topology(topology, use_c=True)
        py_csr = CSRGraph.from_topology(topology, use_c=False)
        for source in range(0, 70, 3):
            assert c_csr.dijkstra_k_nearest(source, 9) == py_csr.dijkstra_k_nearest(
                source, 9
            )
            assert c_csr.dijkstra(source) == py_csr.dijkstra(source)


class TestBucketFallback:
    def test_irregular_weights_disqualify_bucket(self):
        topology = geometric_random_graph(40, seed=6, average_degree=5.0)
        profile = topology.weight_profile()
        assert profile.quantum is None
        assert not profile.bucket_ok
        assert topology.csr().kernel == "heap"
        with pytest.raises(ValueError):
            CSRGraph.from_topology(topology, kernel="bucket")

    def test_excessive_weight_ratio_disqualifies_bucket(self):
        # Quantized but with max_weight / quantum beyond the cap.
        topology = Topology.from_edges(
            3, [(0, 1, 0.5), (1, 2, 0.5 * (DIAL_MAX_QUANTA + 1))]
        )
        profile = topology.weight_profile()
        assert profile.quantum is None
        assert topology.csr().kernel == "heap"

    def test_bfs_requires_unit_weights(self):
        topology = Topology.from_edges(3, [(0, 1, 2.0), (1, 2, 2.0)])
        with pytest.raises(ValueError):
            CSRGraph.from_topology(topology, kernel="bfs")

    def test_unknown_kernel_rejected(self):
        topology = Topology.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            CSRGraph.from_topology(topology, kernel="fibonacci")


class TestWeightProfile:
    def test_unit_profile(self):
        profile = profile_weights([1.0, 1.0, 1.0])
        assert profile == WeightProfile(True, 1.0, 1.0, 1.0, 1)

    def test_pow2_quantum_detection(self):
        profile = profile_weights([0.5, 2.5, 1.0, 3.75])
        assert profile.quantum == 0.25
        assert profile.max_quanta == 15
        assert not profile.unit

    def test_irregular_floats_have_no_quantum(self):
        assert profile_weights([0.1, 0.2]).quantum is None

    def test_infinite_weight_routes_to_heap(self):
        # Topology.add_edge accepts inf (inf > 0); profiling must not crash
        # and the search must match the reference engine.
        import math

        profile = profile_weights([1.0, math.inf])
        assert profile.quantum is None
        topology = Topology(3)
        topology.add_edge(0, 1, math.inf)
        topology.add_edge(1, 2, 1.0)
        assert topology.csr().kernel == "heap"
        assert topology.csr().dijkstra(0) == reference.dijkstra(topology, 0)

    def test_empty_profile_is_unit(self):
        assert profile_weights([]).unit

    def test_profile_cached_and_invalidated_on_mutation(self):
        topology = Topology.from_edges(4, [(0, 1, 2.0), (1, 2, 2.0)])
        first = topology.weight_profile()
        assert topology.weight_profile() is first
        assert first.quantum == 2.0
        topology.add_edge(2, 3, 0.75)
        second = topology.weight_profile()
        assert second is not first
        assert second.quantum == 0.25
        # Heavier duplicate edge: no mutation, cache kept.
        topology.add_edge(0, 1, 9.0)
        assert topology.weight_profile() is second

    def test_profile_survives_pickle_roundtrip(self):
        import pickle

        topology = _quantized_geometric(30, seed=2)
        clone = pickle.loads(pickle.dumps(topology))
        assert clone.weight_profile() == topology.weight_profile()
        assert clone.csr().kernel == topology.csr().kernel


class TestRadiusBoundary:
    """Exact-boundary semantics of the radius kernels on weighted graphs.

    ``dijkstra_radius`` is strict by default: a node at exactly ``radius``
    is *excluded* (the S4 cluster rule ``d(v, w) < d(w, l_w)``);
    ``inclusive=True`` turns the comparison into ``<=``.  These cases sit a
    node exactly on the boundary, which no earlier test pinned down.
    """

    @pytest.fixture()
    def weighted_path(self) -> Topology:
        # 0 --1.5-- 1 --1.5-- 2 --0.5-- 3: node 2 sits at exactly 3.0.
        return Topology.from_edges(
            4, [(0, 1, 1.5), (1, 2, 1.5), (2, 3, 0.5)]
        )

    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    @pytest.mark.parametrize("kernel", ["heap", "bucket"])
    def test_exact_boundary_excluded_by_default(
        self, weighted_path, kernel, use_c
    ):
        csr = CSRGraph.from_topology(weighted_path, kernel=kernel, use_c=use_c)
        distances, _ = csr.dijkstra_radius(0, 3.0)
        assert sorted(distances) == [0, 1]

    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    @pytest.mark.parametrize("kernel", ["heap", "bucket"])
    def test_exact_boundary_included_when_inclusive(
        self, weighted_path, kernel, use_c
    ):
        csr = CSRGraph.from_topology(weighted_path, kernel=kernel, use_c=use_c)
        distances, _ = csr.dijkstra_radius(0, 3.0, inclusive=True)
        assert sorted(distances) == [0, 1, 2]
        assert distances[2] == 3.0

    def test_public_api_matches_reference_at_boundary(self, weighted_path):
        for inclusive in (False, True):
            assert dijkstra_radius(
                weighted_path, 0, 3.0, inclusive=inclusive
            ) == reference.dijkstra_radius(
                weighted_path, 0, 3.0, inclusive=inclusive
            )

    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    def test_zero_radius_settles_only_source(self, weighted_path, use_c):
        csr = CSRGraph.from_topology(weighted_path, use_c=use_c)
        distances, predecessors = csr.dijkstra_radius(1, 0.0)
        assert distances == {1: 0.0}
        assert predecessors == {}

    @pytest.mark.parametrize("use_c", TIERS, ids=TIER_IDS)
    def test_batched_radius_boundary(self, weighted_path, use_c):
        csr = CSRGraph.from_topology(weighted_path, use_c=use_c)
        radii = [3.0, 1.5, 2.0, 0.5]
        strict = csr.batched_radius(radii)
        inclusive = csr.batched_radius(radii, inclusive=True)
        for node, radius in enumerate(radii):
            assert strict[node] == reference.dijkstra_radius(
                weighted_path, node, radius
            )
            assert inclusive[node] == reference.dijkstra_radius(
                weighted_path, node, radius, inclusive=True
            )
        # Nodes 0 and 2 sit at exactly 1.5 from source 1: excluded by the
        # strict boundary, included by the inclusive one.
        assert strict[1][0] == {1: 0.0}
        assert sorted(inclusive[1][0]) == [0, 1, 2]


class TestParallelKernelThreading:
    def test_forced_kernel_reaches_workers(self):
        topology = _quantized_geometric(48, seed=7)
        auto = parallel_k_nearest(topology, 9, workers=1)
        for kernel in ("heap", "bucket"):
            serial = parallel_k_nearest(topology, 9, workers=1, kernel=kernel)
            fanned = parallel_k_nearest(topology, 9, workers=2, kernel=kernel)
            assert serial == auto
            assert fanned == auto


class TestPropertyBasedWeighted:
    def test_random_quantized_graphs_both_kernels(self):
        for seed in range(8):
            topology = _quantized_geometric(30, seed=seed)
            expected = [
                reference.dijkstra(topology, s)
                for s in range(topology.num_nodes)
            ]
            for kernel in ("heap", "bucket"):
                for use_c in TIERS:
                    csr = CSRGraph.from_topology(
                        topology, kernel=kernel, use_c=use_c
                    )
                    got = [
                        csr.dijkstra(s) for s in range(topology.num_nodes)
                    ]
                    assert got == expected
