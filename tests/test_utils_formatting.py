"""Tests for repro.utils.formatting."""

from __future__ import annotations

import pytest

from repro.utils.formatting import format_cdf, format_table, human_bytes


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["beta", 2.0]])
        assert "name" in text
        assert "alpha" in text
        assert "1.500" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["xxxxxx", 1], ["y", 2]])
        lines = text.splitlines()
        # Header, separator, and the two rows all start columns at the same offset.
        assert len(lines) == 4
        first_col_width = len("xxxxxx")
        assert lines[0].startswith("a".ljust(first_col_width))

    def test_float_format_override(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.1f}")
        assert "3.1" in text
        assert "3.142" not in text

    def test_wrong_row_length_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_non_float_cells_via_str(self):
        text = format_table(["a"], [[None], [True]])
        assert "None" in text
        assert "True" in text


class TestFormatCdf:
    def test_contains_series_names(self):
        text = format_cdf({"Disco": [1.0, 1.2, 1.5], "S4": [1.0, 3.0, 5.0]})
        assert "Disco" in text
        assert "S4" in text

    def test_quantile_headers(self):
        text = format_cdf({"x": [1.0]}, quantiles=(50, 99))
        assert "p50" in text
        assert "p99" in text

    def test_empty_series_renders_dashes(self):
        text = format_cdf({"empty": []})
        assert "-" in text

    def test_values_monotone_across_columns(self):
        text = format_cdf({"x": [5.0, 1.0, 3.0, 2.0]}, quantiles=(10, 50, 90))
        row = [line for line in text.splitlines() if line.startswith("x")][0]
        numbers = [float(token) for token in row.split()[1:]]
        assert numbers == sorted(numbers)


class TestHumanBytes:
    def test_bytes(self):
        assert human_bytes(512) == "512 B"

    def test_kibibytes(self):
        assert human_bytes(2048) == "2.00 KiB"

    def test_mebibytes(self):
        assert human_bytes(5 * 1024 * 1024) == "5.00 MiB"

    def test_fractional_bytes(self):
        assert "B" in human_bytes(2.93)
