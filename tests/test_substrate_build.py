"""Differential suite for the slab-direct substrate builder.

:func:`repro.core.substrate_build.build_substrate_tables` replaces the
dict-mediated component path (dense per-landmark rows, per-node
``VicinityTable`` objects, one ``SubstrateTables.from_components`` pass)
with kernel output written straight into the preallocated slabs, plus an
optional worker fan-out and mmap-backed placement.  Nothing about the
*content* is allowed to change: every variant must produce slabs
byte-identical to the component-path oracle, on every topology family the
experiments use.

The comparisons here are exact (``bytes(slab) == bytes(slab)`` per slab),
not approximate -- the cache layer shares these slabs as raw buffers
across processes, so a single differing byte is corruption, not noise.
"""

from __future__ import annotations

import pytest

from repro.addressing.labels import LabelCodec
from repro.core.landmarks import (
    closest_landmarks,
    landmark_spts,
    select_landmarks,
)
from repro.core.substrate_build import (
    build_ball_tables,
    build_substrate_tables,
    cluster_sizes_from_members,
)
from repro.core.tables import NodeSearchTables, SubstrateTables
from repro.core.vicinity import compute_vicinities
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_router_level,
)
from repro.graphs.csr import parallel_radius


def _families():
    return [
        ("gnm", gnm_random_graph(257, seed=5, average_degree=6.0)),
        ("geometric", geometric_random_graph(120, seed=7, average_degree=7.0)),
        ("router-level", internet_router_level(150, seed=9)),
    ]


FAMILIES = _families()


def _oracle(topology, landmarks, codec):
    """The dict-mediated component path the builder must reproduce."""
    n = topology.num_nodes
    spts = landmark_spts(topology, landmarks)
    closest = closest_landmarks(spts, n)
    vicinities = compute_vicinities(topology)
    return SubstrateTables.from_components(n, spts, closest, vicinities, codec)


def _assert_identical_slabs(expected: SubstrateTables, actual: SubstrateTables):
    left = expected.slab_items()
    right = actual.slab_items()
    assert [(name, code) for name, code, _ in left] == [
        (name, code) for name, code, _ in right
    ]
    for (name, _, slab_a), (_, _, slab_b) in zip(left, right):
        assert bytes(slab_a) == bytes(slab_b), f"slab {name} differs"
    assert expected.num_nodes == actual.num_nodes
    assert bytes(expected.landmark_ids) == bytes(actual.landmark_ids)


@pytest.mark.parametrize("family,topology", FAMILIES, ids=[f for f, _ in FAMILIES])
def test_slab_direct_serial_matches_dict_path(family, topology):
    landmarks = select_landmarks(topology.num_nodes, seed=2)
    codec = LabelCodec(topology)
    expected = _oracle(topology, landmarks, codec)
    actual = build_substrate_tables(topology, landmarks, codec=codec)
    _assert_identical_slabs(expected, actual)


@pytest.mark.parametrize("family,topology", FAMILIES, ids=[f for f, _ in FAMILIES])
def test_slab_direct_two_workers_matches_dict_path(family, topology):
    landmarks = select_landmarks(topology.num_nodes, seed=2)
    codec = LabelCodec(topology)
    expected = _oracle(topology, landmarks, codec)
    actual = build_substrate_tables(
        topology, landmarks, codec=codec, workers=2
    )
    _assert_identical_slabs(expected, actual)


@pytest.mark.parametrize("family,topology", FAMILIES, ids=[f for f, _ in FAMILIES])
def test_mmap_attached_load_matches_dict_path(family, topology, tmp_path):
    landmarks = select_landmarks(topology.num_nodes, seed=2)
    codec = LabelCodec(topology)
    expected = _oracle(topology, landmarks, codec)
    root = str(tmp_path / "slabs")
    built = build_substrate_tables(
        topology, landmarks, codec=codec, storage=root
    )
    _assert_identical_slabs(expected, built)
    attached = SubstrateTables.from_mmap(root)
    _assert_identical_slabs(expected, attached)


def test_anonymous_mmap_placement_matches_dict_path():
    family, topology = FAMILIES[0]
    landmarks = select_landmarks(topology.num_nodes, seed=2)
    codec = LabelCodec(topology)
    expected = _oracle(topology, landmarks, codec)
    actual = build_substrate_tables(
        topology, landmarks, codec=codec, storage="mmap"
    )
    _assert_identical_slabs(expected, actual)


def test_split_storage_matches_dict_path(tmp_path):
    """SPT slabs in a directory, vicinity slabs in anonymous mmap."""
    family, topology = FAMILIES[0]
    landmarks = select_landmarks(topology.num_nodes, seed=2)
    codec = LabelCodec(topology)
    expected = _oracle(topology, landmarks, codec)
    actual = build_substrate_tables(
        topology,
        landmarks,
        codec=codec,
        storage=str(tmp_path / "spt"),
        vicinity_storage="mmap",
        persist=False,
    )
    _assert_identical_slabs(expected, actual)


def test_landmark_only_build_matches_from_components():
    """S4's own substrate: no vicinity slabs, addresses still present."""
    family, topology = FAMILIES[1]
    n = topology.num_nodes
    landmarks = select_landmarks(n, seed=2)
    codec = LabelCodec(topology)
    spts = landmark_spts(topology, landmarks)
    closest = closest_landmarks(spts, n)
    expected = SubstrateTables.from_components(n, spts, closest, None, codec)
    actual = build_substrate_tables(
        topology, landmarks, codec=codec, include_vicinity=False
    )
    _assert_identical_slabs(expected, actual)


def test_build_stats_and_progress_hooks():
    family, topology = FAMILIES[0]
    landmarks = select_landmarks(topology.num_nodes, seed=2)
    stats: dict = {}
    lines: list[str] = []
    build_substrate_tables(
        topology, landmarks, stats=stats, progress=lines.append
    )
    assert stats["spt_seconds"] >= 0.0
    assert stats["vicinity_seconds"] >= 0.0
    assert stats["slab_bytes"] > 0
    assert any("landmark SPTs" in line for line in lines)
    assert any("vicinities" in line for line in lines)


def test_rejects_empty_and_out_of_range_landmarks():
    family, topology = FAMILIES[0]
    with pytest.raises(ValueError):
        build_substrate_tables(topology, [])
    with pytest.raises(ValueError):
        build_substrate_tables(topology, [topology.num_nodes])


@pytest.mark.parametrize("workers", [1, 2])
def test_ball_tables_match_dict_transport(workers):
    family, topology = FAMILIES[2]
    n = topology.num_nodes
    landmarks = select_landmarks(n, seed=2)
    spts = landmark_spts(topology, landmarks)
    _, closest_dist = closest_landmarks(spts, n)
    radii = list(closest_dist)
    searches = parallel_radius(topology, radii, workers=1)
    expected = NodeSearchTables.from_searches(searches)
    actual = build_ball_tables(topology, radii, workers=workers)
    assert bytes(expected.offsets) == bytes(actual.offsets)
    assert bytes(expected.members) == bytes(actual.members)
    assert bytes(expected.dists) == bytes(actual.dists)
    assert bytes(expected.parents) == bytes(actual.parents)


# -- in-kernel thread fan-out ------------------------------------------------
# The batched C entry points loop sources inside the kernel and fan them
# over a pthread pool; every width must reproduce the pinned serial
# per-source loop (threads=0) byte for byte, on RAM arrays and on
# file-backed slab directories alike, and agree with the process-pool
# oracle that partitions the same work across OS processes instead.


@pytest.fixture(scope="module")
def thread_oracles():
    family, topology = FAMILIES[0]
    landmarks = select_landmarks(topology.num_nodes, seed=2)
    codec = LabelCodec(topology)
    serial = build_substrate_tables(
        topology, landmarks, codec=codec, threads=0
    )
    pool = build_substrate_tables(
        topology, landmarks, codec=codec, workers=2
    )
    return topology, landmarks, codec, serial, pool


@pytest.mark.parametrize("storage", ["array", "mmap-dir"])
@pytest.mark.parametrize("threads", [1, 2, 8])
def test_threaded_build_matches_serial_and_pool(
    threads, storage, thread_oracles, tmp_path
):
    topology, landmarks, codec, serial, pool = thread_oracles
    kwargs = {}
    if storage == "mmap-dir":
        kwargs["storage"] = str(tmp_path / f"slabs-{threads}")
    actual = build_substrate_tables(
        topology, landmarks, codec=codec, threads=threads, **kwargs
    )
    _assert_identical_slabs(serial, actual)
    _assert_identical_slabs(pool, actual)
    if storage == "mmap-dir":
        attached = SubstrateTables.from_mmap(kwargs["storage"])
        _assert_identical_slabs(serial, attached)


@pytest.mark.parametrize("family,topology", FAMILIES, ids=[f for f, _ in FAMILIES])
def test_threaded_build_matches_dict_path(family, topology):
    """threads=2 against the dict-mediated oracle, once per kernel family."""
    landmarks = select_landmarks(topology.num_nodes, seed=2)
    codec = LabelCodec(topology)
    expected = _oracle(topology, landmarks, codec)
    actual = build_substrate_tables(
        topology, landmarks, codec=codec, threads=2
    )
    _assert_identical_slabs(expected, actual)


@pytest.mark.parametrize("threads", [1, 2, 8])
def test_ball_tables_threads_match_dict_transport(threads):
    family, topology = FAMILIES[2]
    n = topology.num_nodes
    landmarks = select_landmarks(n, seed=2)
    spts = landmark_spts(topology, landmarks)
    _, closest_dist = closest_landmarks(spts, n)
    radii = list(closest_dist)
    searches = parallel_radius(topology, radii, workers=1)
    expected = NodeSearchTables.from_searches(searches)
    actual = build_ball_tables(topology, radii, threads=threads)
    assert bytes(expected.offsets) == bytes(actual.offsets)
    assert bytes(expected.members) == bytes(actual.members)
    assert bytes(expected.dists) == bytes(actual.dists)
    assert bytes(expected.parents) == bytes(actual.parents)


def test_cluster_sizes_match_membership_double_loop():
    family, topology = FAMILIES[0]
    n = topology.num_nodes
    landmarks = select_landmarks(n, seed=2)
    spts = landmark_spts(topology, landmarks)
    _, closest_dist = closest_landmarks(spts, n)
    balls = build_ball_tables(topology, list(closest_dist))
    expected = [0] * n
    for node in range(n):
        row = balls.members[balls.offsets[node] : balls.offsets[node + 1]]
        for member in row:
            if member != node:
                expected[member] += 1
    actual = cluster_sizes_from_members(balls.members, n)
    assert list(actual) == expected
