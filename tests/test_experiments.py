"""Tests for the experiment harness (config, workloads, runner, experiments).

Every experiment is run at a deliberately tiny scale so the whole module
stays fast; the assertions check the *structure* of results and the paper's
qualitative shapes, not absolute numbers (those are the benchmarks' job).
"""

from __future__ import annotations

import pytest

from repro.experiments import addr_sizes, estimate_error, fig01_taxonomy
from repro.experiments import fig04_gnm_comparison, fig06_shortcutting
from repro.experiments import fig07_state_bytes, fig08_messaging, fig09_scaling
from repro.experiments import fig10_congestion_as, finger_study, guarantees
from repro.experiments import static_accuracy
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.runner import EXPERIMENTS, run_all_experiments, run_experiment
from repro.experiments.workloads import (
    as_level_topology,
    comparison_geometric,
    comparison_gnm,
    large_geometric,
    router_level_topology,
)

TINY = ExperimentScale(
    comparison_nodes=72,
    large_nodes=72,
    as_level_nodes=72,
    router_level_nodes=80,
    pair_sample=50,
    messaging_sweep=(20, 28),
    scaling_sweep=(40, 56),
    seed=11,
    label="tiny-test",
)


class TestConfig:
    def test_default_scale_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        base = default_scale()
        monkeypatch.setenv("REPRO_SCALE", "2")
        doubled = default_scale()
        assert doubled.comparison_nodes == 2 * base.comparison_nodes

    def test_invalid_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "big")
        with pytest.raises(ValueError):
            default_scale()

    def test_scaled_factor_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale().scaled(0)

    def test_scaled_minimum_size(self):
        tiny = ExperimentScale().scaled(0.001)
        assert tiny.comparison_nodes >= 16

    def test_scale_is_frozen(self):
        with pytest.raises(AttributeError):
            ExperimentScale().seed = 1  # type: ignore[misc]


class TestWorkloads:
    def test_sizes_follow_scale(self):
        assert comparison_gnm(TINY).num_nodes == TINY.comparison_nodes
        assert comparison_geometric(TINY).num_nodes == TINY.comparison_nodes
        assert large_geometric(TINY).num_nodes == TINY.large_nodes
        assert as_level_topology(TINY).num_nodes == TINY.as_level_nodes
        assert router_level_topology(TINY).num_nodes == TINY.router_level_nodes

    def test_all_connected(self):
        for topology in (
            comparison_gnm(TINY),
            comparison_geometric(TINY),
            as_level_topology(TINY),
            router_level_topology(TINY),
        ):
            assert topology.is_connected()

    def test_deterministic_per_scale(self):
        assert comparison_gnm(TINY) == comparison_gnm(TINY)


class TestRunner:
    def test_all_experiments_registered(self):
        expected = {
            "fig01-taxonomy",
            "fig02-state-cdf",
            "fig03-stretch-cdf",
            "fig04-gnm-comparison",
            "fig05-geometric-comparison",
            "fig06-shortcutting",
            "fig07-state-bytes",
            "fig08-messaging",
            "fig09-scaling",
            "fig10-congestion-as",
            "addr-sizes",
            "finger-study",
            "estimate-error",
            "static-accuracy",
            "guarantees",
            "churn-cost",
            "resolution-latency",
            "resolution-staleness",
            "resolution-balance",
            "ablations",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99-nonexistent", TINY)

    def test_run_selected_subset(self):
        reports = run_all_experiments(
            TINY, include=["addr-sizes", "finger-study"], exclude=["finger-study"]
        )
        assert set(reports) == {"addr-sizes"}
        assert "explicit-route" in reports["addr-sizes"]


class TestIndividualExperiments:
    def test_taxonomy_shapes(self):
        result = fig01_taxonomy.run(TINY)
        report = fig01_taxonomy.format_report(result)
        protocols = {row.protocol for row in result.rows}
        assert {"Disco", "S4", "VRR", "Path-Vector"} <= protocols
        disco_row = next(r for r in result.rows if r.protocol == "Disco")
        shortest_row = next(r for r in result.rows if r.protocol == "Shortest-Path")
        # Disco's state grows more slowly than the Ω(n) baselines.
        assert disco_row.state_growth_ratio < shortest_row.state_growth_ratio
        assert disco_row.observed_max_later_stretch <= 3.0 + 1e-9
        assert "Fig. 1" in report

    def test_gnm_comparison_structure(self):
        result = fig04_gnm_comparison.run(TINY)
        report = fig04_gnm_comparison.format_report(result)
        assert {"Disco", "ND-Disco", "S4", "VRR", "Path-Vector"} <= set(
            result.results.state
        )
        assert "[congestion]" in report
        # Path vector stores Θ(n); Disco stores less on every node's mean.
        pv_state = result.results.state["Path-Vector"].entry_summary.mean
        assert pv_state == TINY.comparison_nodes - 1

    def test_shortcutting_orders_heuristics(self):
        result = fig06_shortcutting.run(TINY)
        report = fig06_shortcutting.format_report(result)
        for topology_label in result.topology_order:
            column = {
                mode: result.mean_stretch[mode][topology_label]
                for mode in result.mean_stretch
            }
            assert column["No Path Knowledge"] <= column["No Shortcutting"] + 1e-9
            assert column["Using Path Knowledge"] <= column["No Shortcutting"] + 1e-9
        assert "shortcutting heuristic" in report

    def test_state_bytes_rows(self):
        result = fig07_state_bytes.run(TINY)
        rows = result.rows()
        assert [row[0] for row in rows] == ["S4", "ND-Disco", "Disco"]
        # Disco stores more than ND-Disco (name-independence premium).
        nddisco_mean = rows[1][1]
        disco_mean = rows[2][1]
        assert disco_mean > nddisco_mean
        assert "KB (IPv4) mean" in fig07_state_bytes.format_report(result)

    def test_messaging_sweep_shapes(self):
        result = fig08_messaging.run(TINY)
        report = fig08_messaging.format_report(result)
        largest = max(result.sweep)
        pv = result.entries_per_node("Path-Vector")[largest]
        nddisco = result.entries_per_node("ND-Disco")[largest]
        disco = result.entries_per_node("Disco-1-Finger")[largest]
        assert pv > nddisco
        assert disco > nddisco
        assert "Fig. 8" in report

    def test_scaling_growth_exponent(self):
        result = fig09_scaling.run(TINY)
        report = fig09_scaling.format_report(result)
        exponent = result.state_growth_exponent("Disco")
        assert 0.0 < exponent < 1.0  # sublinear growth
        assert "growth exponent" in report

    def test_congestion_tail_structure(self):
        result = fig10_congestion_as.run(TINY)
        report = fig10_congestion_as.format_report(result)
        assert "Path-Vector" in result.reports
        assert 0.0 <= result.tail_excess_fraction("Disco") <= 1.0
        assert "congestion" in report.lower()

    def test_addr_sizes_orders(self):
        result = addr_sizes.run(TINY)
        report = addr_sizes.format_report(result)
        # Internet-like addresses are a few (fractional) bytes, mean below an
        # IPv6 address even at tiny scale; the distribution is well-formed.
        assert 0.0 < result.router_level.mean < 8.0
        assert result.router_level.maximum >= result.router_level_p95
        assert result.ring.maximum >= result.ring.mean > 0.0
        assert "explicit-route" in report

    def test_finger_study_shapes(self):
        result = finger_study.run(TINY)
        report = finger_study.format_report(result)
        assert result.reports[1].coverage == pytest.approx(1.0)
        assert result.reports[3].mean_hop_distance <= (
            result.reports[1].mean_hop_distance + 0.3
        )
        assert result.message_increase() >= 0.0
        assert "Finger study" in report

    def test_estimate_error_monotone_reachability(self):
        result = estimate_error.run(TINY, error_levels=(0.0, 0.4))
        report = estimate_error.format_report(result)
        assert result.unreachable_fraction[0.0] == 0.0
        assert result.unreachable_fraction[0.4] == 0.0
        assert abs(result.stretch_increase(0.4)) < 0.5
        assert "estimate error" in report

    def test_static_accuracy_close(self):
        result = static_accuracy.run(TINY)
        report = static_accuracy.format_report(result)
        assert result.relative_difference <= 0.10
        assert result.vicinity_membership_agreement >= 0.7
        assert "Static-simulation accuracy" in report

    def test_guarantees_hold_at_tiny_scale(self):
        result = guarantees.run(TINY)
        report = guarantees.format_report(result)
        for row in result.rows:
            assert row.max_later_stretch <= 3.0 + 1e-9
            assert row.max_first_stretch <= 7.0 + 1e-9
        assert "Theorems 1 & 2" in report
