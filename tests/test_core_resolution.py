"""Tests for repro.core.resolution (the landmark name-resolution database)."""

from __future__ import annotations

import pytest

from repro.addressing.address import Address
from repro.addressing.explicit_route import ExplicitRoute
from repro.addressing.labels import LabelCodec
from repro.core.resolution import LandmarkResolutionDatabase
from repro.graphs.shortest_paths import shortest_path
from repro.naming.names import name_for_node


@pytest.fixture()
def database_and_addresses(small_gnm):
    """A resolution database over landmarks {0, 1, 2} plus all node addresses."""
    codec = LabelCodec(small_gnm)
    landmarks = [0, 1, 2]
    database = LandmarkResolutionDatabase(landmarks)
    names = [name_for_node(v) for v in range(small_gnm.num_nodes)]
    addresses = []
    for node in range(small_gnm.num_nodes):
        path = shortest_path(small_gnm, 0, node)
        addresses.append(
            Address(node=node, landmark=0, route=ExplicitRoute.from_path(codec, path))
        )
    return database, names, addresses


class TestConstruction:
    def test_requires_landmarks(self):
        with pytest.raises(ValueError):
            LandmarkResolutionDatabase([])

    def test_invalid_refresh_interval(self):
        with pytest.raises(ValueError):
            LandmarkResolutionDatabase([1], refresh_interval=0)

    def test_timeout_formula(self):
        database = LandmarkResolutionDatabase([1], refresh_interval=10.0)
        assert database.timeout == 21.0

    def test_landmarks_sorted(self):
        database = LandmarkResolutionDatabase([5, 1, 3])
        assert database.landmarks == [1, 3, 5]


class TestStorage:
    def test_insert_and_lookup(self, database_and_addresses):
        database, names, addresses = database_and_addresses
        home = database.insert(names[10], addresses[10])
        assert home in database.landmarks
        assert database.lookup(names[10]) == addresses[10]

    def test_lookup_missing_returns_none(self, database_and_addresses):
        database, names, _ = database_and_addresses
        assert database.lookup(names[10]) is None

    def test_home_landmark_consistent(self, database_and_addresses):
        database, names, _ = database_and_addresses
        assert database.home_landmark(names[4]) == database.home_landmark(names[4])

    def test_insert_refreshes_existing(self, database_and_addresses):
        database, names, addresses = database_and_addresses
        database.insert(names[10], addresses[10], now=0.0)
        database.insert(names[10], addresses[11 - 1], now=5.0)
        record = database.lookup_record(names[10])
        assert record is not None
        assert record.inserted_at == 5.0

    def test_populate_covers_all(self, database_and_addresses):
        database, names, addresses = database_and_addresses
        database.populate(names, addresses)
        for name, address in zip(names, addresses):
            assert database.lookup(name) == address

    def test_every_record_on_exactly_one_landmark(self, database_and_addresses):
        database, names, addresses = database_and_addresses
        database.populate(names, addresses)
        total = sum(database.entries_at(lm) for lm in database.landmarks)
        assert total == len(names)


class TestSoftState:
    def test_expiry(self, database_and_addresses):
        database, names, addresses = database_and_addresses
        database.insert(names[1], addresses[1], now=0.0)
        database.insert(names[2], addresses[2], now=100.0)
        dropped = database.expire_older_than(now=100.0)
        assert dropped == 1
        assert database.lookup(names[1]) is None
        assert database.lookup(names[2]) is not None

    def test_no_expiry_within_timeout(self, database_and_addresses):
        database, names, addresses = database_and_addresses
        database.insert(names[1], addresses[1], now=0.0)
        assert database.expire_older_than(now=database.timeout - 0.1) == 0


class TestStateAccounting:
    def test_entries_at_non_landmark_is_zero(self, database_and_addresses):
        database, names, addresses = database_and_addresses
        database.populate(names, addresses)
        assert database.entries_at(50) == 0

    def test_entry_bytes_positive_for_hosts(self, database_and_addresses):
        database, names, addresses = database_and_addresses
        database.populate(names, addresses)
        hosting = [lm for lm in database.landmarks if database.entries_at(lm) > 0]
        assert hosting
        for landmark in hosting:
            assert database.entry_bytes_at(landmark) > 0
        assert database.entry_bytes_at(50) == 0.0

    def test_ipv6_names_cost_more(self, database_and_addresses):
        database, names, addresses = database_and_addresses
        database.populate(names, addresses)
        landmark = max(database.landmarks, key=database.entries_at)
        assert database.entry_bytes_at(landmark, name_bytes=16) > database.entry_bytes_at(
            landmark, name_bytes=4
        )

    def test_load_distribution_sums_to_total(self, database_and_addresses):
        database, names, addresses = database_and_addresses
        database.populate(names, addresses)
        loads = database.load_distribution()
        assert sum(loads.values()) == len(names)
        assert set(loads) == set(database.landmarks)

    def test_multiple_hash_functions_smooth_load(self, small_gnm):
        codec = LabelCodec(small_gnm)
        names = [name_for_node(v) for v in range(small_gnm.num_nodes)]
        addresses = [
            Address(
                node=v,
                landmark=0,
                route=ExplicitRoute.from_path(codec, shortest_path(small_gnm, 0, v)),
            )
            for v in range(small_gnm.num_nodes)
        ]
        landmarks = list(range(8))

        def imbalance(virtual_nodes: int) -> float:
            database = LandmarkResolutionDatabase(
                landmarks, virtual_nodes=virtual_nodes
            )
            database.populate(names, addresses)
            loads = database.load_distribution()
            mean = sum(loads.values()) / len(loads)
            return max(loads.values()) / mean

        assert imbalance(32) <= imbalance(1) + 1e-9
