#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Validates that every relative link and anchor-less file reference in the
repository's markdown documentation points at a file that exists.  External
links (http/https/mailto) are only syntax-checked, so the check stays
offline and deterministic.  Exits non-zero listing every broken link.

Usage: python tools/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue  # pure intra-document anchor
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(root)}: broken link -> {target}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    root = root.resolve()
    files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    errors = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"missing documentation file: {path}")
            continue
        checked += 1
        errors.extend(check_file(path, root))
    if errors:
        print("\n".join(errors), file=sys.stderr)
        return 1
    print(f"link check ok ({checked} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
