#!/usr/bin/env python3
"""Validate a ``repro run --json-dir`` output directory.

Usage: ``python tools/check_scenario_json.py <json-dir>``

Checks every ``*.json`` scenario document against the stable result schema
(``repro-scenario-result/v1``): required keys, schema id, filename/id
agreement, non-empty report and result, and a well-formed manifest.  Used
by the CI scenario-engine smoke leg; exits non-zero with a per-file error
listing on any violation.  No third-party dependencies.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULT_SCHEMA = "repro-scenario-result/v1"
MANIFEST_SCHEMA = "repro-scenario-manifest/v2"

REQUIRED_KEYS = {
    "schema": str,
    "id": str,
    "title": str,
    "family": list,
    "protocols": list,
    "metrics": list,
    "workload": str,
    "aliases": list,
    "scale": dict,
    "result": (dict, list),
    "report": str,
}


def check_scenario_document(path: Path) -> list[str]:
    errors: list[str] = []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path.name}: unreadable JSON ({error})"]
    for key, expected_type in REQUIRED_KEYS.items():
        if key not in document:
            errors.append(f"{path.name}: missing key {key!r}")
        elif not isinstance(document[key], expected_type):
            errors.append(
                f"{path.name}: key {key!r} has type "
                f"{type(document[key]).__name__}"
            )
    if errors:
        return errors
    if document["schema"] != RESULT_SCHEMA:
        errors.append(
            f"{path.name}: schema {document['schema']!r} != {RESULT_SCHEMA!r}"
        )
    if document["id"] != path.stem:
        errors.append(
            f"{path.name}: id {document['id']!r} does not match filename"
        )
    if not document["report"].strip():
        errors.append(f"{path.name}: empty report")
    if not document["result"]:
        errors.append(f"{path.name}: empty result")
    if "label" not in document["scale"]:
        errors.append(f"{path.name}: scale has no label")
    if document["id"].startswith("resolution-"):
        errors.extend(check_resolution_result(path.name, document))
    return errors


def _check_cdf(label: str, cdf: object) -> list[str]:
    """A CDF is a list of [value, fraction] pairs, both monotone
    non-decreasing, fractions in (0, 1] and ending at exactly 1.0
    (empty lists are allowed: e.g. no ring lookups means no hop CDF)."""
    if not isinstance(cdf, list):
        return [f"{label} is not a list"]
    errors: list[str] = []
    previous_value = previous_fraction = float("-inf")
    for index, point in enumerate(cdf):
        if (
            not isinstance(point, list)
            or len(point) != 2
            or not all(isinstance(part, (int, float)) for part in point)
        ):
            errors.append(f"{label}[{index}] is not a [value, fraction] pair")
            return errors
        value, fraction = point
        if value < previous_value:
            errors.append(f"{label}[{index}] value decreases")
        if fraction <= previous_fraction:
            errors.append(f"{label}[{index}] fraction does not increase")
        if not 0.0 < fraction <= 1.0:
            errors.append(f"{label}[{index}] fraction {fraction!r} outside (0, 1]")
        previous_value, previous_fraction = value, fraction
    if cdf and cdf[-1][1] != 1.0:
        errors.append(f"{label} does not end at fraction 1.0")
    return errors


def _check_histogram(label: str, histogram: object) -> list[str]:
    if not isinstance(histogram, dict):
        return [f"{label} is not an object"]
    errors: list[str] = []
    for shard, count in histogram.items():
        if not isinstance(count, int) or count < 0:
            errors.append(f"{label}[{shard}] has bad count {count!r}")
    return errors


def check_resolution_result(name: str, document: dict) -> list[str]:
    """Validate the ``resolution-*`` scenario payloads beyond the generic
    schema: CDF arrays monotone and properly terminated, histograms
    non-negative, and the lookup-outcome counts internally consistent --
    the invariants the shard merge must preserve for ``--workers N`` to
    stay byte-identical."""
    result = document["result"]
    if not isinstance(result, dict):
        return [f"{name}: resolution result is not an object"]
    errors: list[str] = []
    scenario_id = document["id"]
    if scenario_id == "resolution-latency":
        for key in ("latency_cdf", "hop_cdf"):
            errors.extend(_check_cdf(f"{name}: {key}", result.get(key)))
        counts = [result.get(k) for k in ("group_hits", "ring_hits", "misses")]
        if all(isinstance(c, int) and c >= 0 for c in counts):
            if sum(counts) != result.get("lookups"):
                errors.append(
                    f"{name}: outcome counts do not sum to lookups"
                )
        else:
            errors.append(f"{name}: bad lookup-outcome counts")
        errors.extend(
            _check_histogram(f"{name}: cache_stats", result.get("cache_stats"))
        )
    elif scenario_id == "resolution-staleness":
        for index, row in enumerate(result.get("rows", []) or []):
            label = f"{name}: rows[{index}]"
            errors.extend(
                _check_cdf(f"{label}.staleness_cdf", row.get("staleness_cdf"))
            )
            miss_rate = row.get("miss_rate")
            if not isinstance(miss_rate, (int, float)) or not 0 <= miss_rate <= 1:
                errors.append(f"{label} has bad miss_rate {miss_rate!r}")
    elif scenario_id == "resolution-balance":
        for index, row in enumerate(result.get("rows", []) or []):
            label = f"{name}: rows[{index}]"
            for key in ("storage_histogram", "served_histogram"):
                errors.extend(_check_histogram(f"{label}.{key}", row.get(key)))
            for key in ("storage_imbalance", "served_imbalance"):
                value = row.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{label} has bad {key} {value!r}")
    return errors


def check_manifest(path: Path) -> list[str]:
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path.name}: unreadable JSON ({error})"]
    errors = []
    if manifest.get("schema") != MANIFEST_SCHEMA:
        errors.append(f"{path.name}: bad schema {manifest.get('schema')!r}")
    scenarios = manifest.get("scenarios")
    if not isinstance(scenarios, dict):
        errors.append(f"{path.name}: missing scenarios map")
        return errors
    run_cache = manifest.get("cache")
    for scenario_id, entry in scenarios.items():
        label = f"{path.name}: scenario {scenario_id!r}"
        if not isinstance(entry, dict):
            errors.append(f"{label} is not an object")
            continue
        seconds = entry.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            errors.append(f"{label} has bad seconds {seconds!r}")
        tasks = entry.get("tasks")
        if not isinstance(tasks, int) or tasks < 1:
            errors.append(f"{label} has bad tasks {tasks!r}")
        if "cache" not in entry:
            errors.append(f"{label} is missing cache hit/miss counts")
            continue
        cache = entry["cache"]
        if run_cache is None:
            if cache is not None:
                errors.append(
                    f"{label} has cache counts but the run had no cache"
                )
            continue
        if not isinstance(cache, dict):
            errors.append(f"{label} cache is not an object")
            continue
        for field in ("hits", "misses"):
            value = cache.get(field)
            if not isinstance(value, int) or value < 0:
                errors.append(f"{label} has bad cache {field} {value!r}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    directory = Path(argv[1])
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 2
    documents = sorted(directory.glob("*.json"))
    manifest = directory / "manifest.json"
    scenario_documents = [p for p in documents if p != manifest]
    if not scenario_documents:
        print(f"no scenario JSON documents in {directory}", file=sys.stderr)
        return 1
    errors: list[str] = []
    for path in scenario_documents:
        errors.extend(check_scenario_document(path))
    if manifest.exists():
        errors.extend(check_manifest(manifest))
    for error in errors:
        print(f"SCHEMA ERROR: {error}", file=sys.stderr)
    if errors:
        return 1
    print(
        f"ok: {len(scenario_documents)} scenario document(s) valid"
        f"{' + manifest' if manifest.exists() else ''}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
