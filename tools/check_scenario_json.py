#!/usr/bin/env python3
"""Validate a ``repro run --json-dir`` output directory.

Usage: ``python tools/check_scenario_json.py <json-dir>``

Checks every ``*.json`` scenario document against the stable result schema
(``repro-scenario-result/v1``): required keys, schema id, filename/id
agreement, non-empty report and result, and a well-formed manifest.  Used
by the CI scenario-engine smoke leg; exits non-zero with a per-file error
listing on any violation.  No third-party dependencies.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULT_SCHEMA = "repro-scenario-result/v1"
MANIFEST_SCHEMA = "repro-scenario-manifest/v2"

REQUIRED_KEYS = {
    "schema": str,
    "id": str,
    "title": str,
    "family": list,
    "protocols": list,
    "metrics": list,
    "workload": str,
    "aliases": list,
    "scale": dict,
    "result": (dict, list),
    "report": str,
}


def check_scenario_document(path: Path) -> list[str]:
    errors: list[str] = []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path.name}: unreadable JSON ({error})"]
    for key, expected_type in REQUIRED_KEYS.items():
        if key not in document:
            errors.append(f"{path.name}: missing key {key!r}")
        elif not isinstance(document[key], expected_type):
            errors.append(
                f"{path.name}: key {key!r} has type "
                f"{type(document[key]).__name__}"
            )
    if errors:
        return errors
    if document["schema"] != RESULT_SCHEMA:
        errors.append(
            f"{path.name}: schema {document['schema']!r} != {RESULT_SCHEMA!r}"
        )
    if document["id"] != path.stem:
        errors.append(
            f"{path.name}: id {document['id']!r} does not match filename"
        )
    if not document["report"].strip():
        errors.append(f"{path.name}: empty report")
    if not document["result"]:
        errors.append(f"{path.name}: empty result")
    if "label" not in document["scale"]:
        errors.append(f"{path.name}: scale has no label")
    return errors


def check_manifest(path: Path) -> list[str]:
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path.name}: unreadable JSON ({error})"]
    errors = []
    if manifest.get("schema") != MANIFEST_SCHEMA:
        errors.append(f"{path.name}: bad schema {manifest.get('schema')!r}")
    scenarios = manifest.get("scenarios")
    if not isinstance(scenarios, dict):
        errors.append(f"{path.name}: missing scenarios map")
        return errors
    run_cache = manifest.get("cache")
    for scenario_id, entry in scenarios.items():
        label = f"{path.name}: scenario {scenario_id!r}"
        if not isinstance(entry, dict):
            errors.append(f"{label} is not an object")
            continue
        seconds = entry.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            errors.append(f"{label} has bad seconds {seconds!r}")
        tasks = entry.get("tasks")
        if not isinstance(tasks, int) or tasks < 1:
            errors.append(f"{label} has bad tasks {tasks!r}")
        if "cache" not in entry:
            errors.append(f"{label} is missing cache hit/miss counts")
            continue
        cache = entry["cache"]
        if run_cache is None:
            if cache is not None:
                errors.append(
                    f"{label} has cache counts but the run had no cache"
                )
            continue
        if not isinstance(cache, dict):
            errors.append(f"{label} cache is not an object")
            continue
        for field in ("hits", "misses"):
            value = cache.get(field)
            if not isinstance(value, int) or value < 0:
                errors.append(f"{label} has bad cache {field} {value!r}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    directory = Path(argv[1])
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 2
    documents = sorted(directory.glob("*.json"))
    manifest = directory / "manifest.json"
    scenario_documents = [p for p in documents if p != manifest]
    if not scenario_documents:
        print(f"no scenario JSON documents in {directory}", file=sys.stderr)
        return 1
    errors: list[str] = []
    for path in scenario_documents:
        errors.extend(check_scenario_document(path))
    if manifest.exists():
        errors.extend(check_manifest(manifest))
    for error in errors:
        print(f"SCHEMA ERROR: {error}", file=sys.stderr)
    if errors:
        return 1
    print(
        f"ok: {len(scenario_documents)} scenario document(s) valid"
        f"{' + manifest' if manifest.exists() else ''}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
