#!/usr/bin/env python3
"""Scenario: Internet-scale routing on self-certifying names.

Proposals such as AIP, HIP, and LISP separate location from identity and
route on flat (often self-certifying) identifiers; the paper argues Disco is
the missing routing layer that makes this scalable with bounded stretch.
This example builds an AS-level-like Internet topology, names each domain by
the hash of a public key (a self-certifying name), and compares Disco against
S4, VRR, and path-vector routing on the three axes of the paper's
evaluation: per-node state, stretch, and congestion.

Run:  python examples/internet_routing.py
"""

from __future__ import annotations

import hashlib

from repro import internet_as_level
from repro.naming.names import FlatName
from repro.staticsim import StaticSimulation
from repro.utils.formatting import format_table


def self_certifying_name(domain: int) -> FlatName:
    """A name derived from a (synthetic) public key: hash of the key bytes."""
    public_key = f"domain-{domain}-public-key".encode("utf-8")
    return FlatName(hashlib.sha256(public_key).hexdigest()[:40])


def main() -> None:
    internet = internet_as_level(600, seed=23)
    names = [self_certifying_name(d) for d in internet.nodes()]
    print(f"Internet-like AS topology: {internet}")

    simulation = StaticSimulation(
        internet,
        ("disco", "nd-disco", "s4", "vrr", "path-vector"),
        seed=23,
        scheme_options={
            "disco": {"names": names},
            "nd-disco": {"names": names},
            "s4": {"names": names},
            "vrr": {"names": names},
        },
    )
    results = simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=True,
        measure_congestion_flag=True,
        pair_sample=500,
    )

    rows = []
    for name in ("Disco", "ND-Disco", "S4", "VRR", "Path-Vector"):
        state = results.state[name].entry_summary
        stretch = results.stretch[name]
        congestion = results.congestion[name]
        rows.append(
            [
                name,
                state.mean,
                state.maximum,
                stretch.first_summary.mean,
                stretch.later_summary.mean,
                congestion.summary.p99,
                congestion.max_usage(),
            ]
        )
    print(
        format_table(
            [
                "protocol",
                "state mean",
                "state max",
                "first stretch",
                "later stretch",
                "edge load p99",
                "edge load max",
            ],
            rows,
            float_format="{:.2f}",
        )
    )
    print(
        "\nExpected shape (paper Figs. 2/4/10): Disco and ND-Disco keep state"
        " balanced; S4's max state blows up on Internet-like graphs; VRR has"
        " both heavy state tails and high stretch; path vector has stretch 1"
        " but Θ(n) state per node."
    )


if __name__ == "__main__":
    main()
