#!/usr/bin/env python3
"""Quickstart: build Disco on a random network and route on flat names.

This example walks through the library's core workflow:

1. generate a topology,
2. build the Disco routing protocol on it (landmarks, vicinities, addresses,
   sloppy groups, dissemination overlay -- all computed in their converged
   state),
3. route a few flows and look at first-packet vs later-packet paths,
4. measure per-node state and path stretch the way the paper's evaluation
   does.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DiscoRouting,
    gnm_random_graph,
    measure_state,
    measure_stretch,
)
from repro.graphs.shortest_paths import shortest_path, path_length


def main() -> None:
    # 1. A connected 256-node random graph with average degree 8, the same
    #    family as the paper's G(n,m) comparison topology.
    topology = gnm_random_graph(256, seed=42)
    print(f"topology: {topology}")

    # 2. Converged Disco state.  The seed controls landmark selection and the
    #    overlay's finger choices, so results are fully reproducible.
    disco = DiscoRouting(topology, seed=42)
    print(f"landmarks: {len(disco.landmarks)} of {topology.num_nodes} nodes")
    print(f"vicinity size: {len(disco.vicinities[0])} nodes per node")

    # 3. Route a flow.  Disco is name-independent: the sender only knows the
    #    destination's flat name; the first packet finds the address through
    #    the sender's vicinity and the destination's sloppy group.
    source, target = 3, 200
    first = disco.first_packet_route(source, target)
    later = disco.later_packet_route(source, target)
    optimal = shortest_path(topology, source, target)
    print(f"\nflow {source} -> {target}")
    print(f"  first packet ({first.mechanism}): {len(first.path) - 1} hops")
    print(f"  later packets ({later.mechanism}): {len(later.path) - 1} hops")
    print(f"  shortest path: {len(optimal) - 1} hops")
    print(
        "  first-packet stretch: "
        f"{first.length(topology) / path_length(topology, optimal):.2f}"
    )

    # 4. Evaluation-style measurements over the whole network.
    state = measure_state(disco)
    stretch = measure_stretch(disco, pair_sample=300, seed=7)
    print("\nnetwork-wide measurements")
    print(
        f"  state entries per node: mean {state.entry_summary.mean:.0f}, "
        f"max {state.entry_summary.maximum:.0f} "
        f"(vs {topology.num_nodes - 1} for shortest-path routing)"
    )
    print(
        f"  first-packet stretch: mean {stretch.first_summary.mean:.3f}, "
        f"max {stretch.first_summary.maximum:.2f} (bound: 7)"
    )
    print(
        f"  later-packet stretch: mean {stretch.later_summary.mean:.3f}, "
        f"max {stretch.later_summary.maximum:.2f} (bound: 3)"
    )


if __name__ == "__main__":
    main()
