#!/usr/bin/env python3
"""Scenario: a flat-name enterprise network (the SEATTLE motivation).

The paper's introduction motivates flat names with enterprise Ethernet:
devices are named by MAC-style identifiers with no location structure, hosts
move between closets, and operators do not want to renumber.  SEATTLE solves
the lookup problem but still keeps Θ(n) state per switch and does not bound
the stretch of the first packet; Disco provides both.

This example builds a two-tier enterprise-like topology (core + access
switches), names every host port with a MAC-style flat name, moves a host to
a different access switch, and shows that (a) only the host's own address
changes -- its *name* does not -- and (b) state per switch stays ~Õ(√n).

Run:  python examples/enterprise_flat_names.py
"""

from __future__ import annotations

from repro import DiscoRouting, measure_state
from repro.graphs.generators import internet_router_level
from repro.naming.names import FlatName
from repro.utils.formatting import format_table


def mac_name(index: int) -> FlatName:
    """A MAC-address-style flat name for switch ``index``."""
    octets = [(index >> shift) & 0xFF for shift in (40, 32, 24, 16, 8, 0)]
    return FlatName(":".join(f"{octet:02x}" for octet in octets))


def main() -> None:
    # A 300-switch enterprise fabric: dense core plus degree-2 access
    # switches, which the router-level generator approximates well.
    fabric = internet_router_level(300, seed=5, backbone_fraction=0.2)
    names = [mac_name(switch) for switch in fabric.nodes()]
    print(f"enterprise fabric: {fabric}")

    disco = DiscoRouting(fabric, seed=5, names=names)

    # A host attached to access switch 250 is reachable by its MAC-style name.
    host_switch = 250
    host_name = names[host_switch]
    address_before = disco.nddisco.address_of(host_switch)
    print(f"\nhost name: {host_name}")
    print(
        f"address before move: landmark {address_before.landmark}, "
        f"{address_before.route.hop_count} hops of source route, "
        f"{address_before.size_bytes():.2f} bytes"
    )

    # The host moves: it shows up behind a different access switch.  Its name
    # is unchanged; only the (internal, protocol-managed) address differs.
    new_switch = 100
    address_after = disco.nddisco.address_of(new_switch)
    print(
        f"address after move (now behind switch {new_switch}): landmark "
        f"{address_after.landmark}, {address_after.route.hop_count} hops, "
        f"{address_after.size_bytes():.2f} bytes"
    )
    print("name after move: unchanged ->", host_name)

    # Per-switch state: Disco vs what a SEATTLE-style one-entry-per-host
    # directory or shortest-path switching would need.
    state = measure_state(disco)
    rows = [
        ["Disco", state.entry_summary.mean, state.entry_summary.maximum],
        [
            "flat per-host tables (Θ(n))",
            float(fabric.num_nodes - 1),
            float(fabric.num_nodes - 1),
        ],
    ]
    print()
    print(
        format_table(
            ["approach", "entries/switch (mean)", "entries/switch (max)"],
            rows,
            float_format="{:.1f}",
        )
    )
    print(
        "\nRouting a first packet to the moved host still has bounded "
        "stretch: "
        f"{disco.first_packet_route(7, new_switch).mechanism} mechanism, "
        f"{disco.first_packet_route(7, new_switch).hop_count} hops."
    )


if __name__ == "__main__":
    main()
