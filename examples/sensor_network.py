#!/usr/bin/env python3
"""Scenario: routing in a large wireless sensor network (S4's home turf).

S4 was designed for wireless sensor networks; the paper shows that Disco
matches its average state while avoiding its two weaknesses -- unbalanced
worst-case state and high first-packet stretch on latency-weighted graphs.
This example builds a geometric random graph (nodes scattered in a field,
links between radio neighbors, link weights = distances/latencies), runs
Disco, NDDisco and S4 side by side, and prints the comparison the paper's
Figs. 3 and 5 make.

Run:  python examples/sensor_network.py
"""

from __future__ import annotations

from repro import geometric_random_graph
from repro.staticsim import StaticSimulation
from repro.utils.formatting import format_table


def main() -> None:
    # A 400-sensor deployment with average radio degree 8.
    field = geometric_random_graph(400, seed=11, average_degree=8.0)
    print(f"sensor field: {field} (weights are link latencies)")

    simulation = StaticSimulation(field, ("disco", "nd-disco", "s4"), seed=11)
    results = simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=True,
        measure_congestion_flag=True,
        pair_sample=400,
    )

    rows = []
    for name in ("Disco", "ND-Disco", "S4"):
        state = results.state[name].entry_summary
        stretch = results.stretch[name]
        congestion = results.congestion[name]
        rows.append(
            [
                name,
                state.mean,
                state.maximum,
                stretch.first_summary.mean,
                stretch.first_summary.maximum,
                stretch.later_summary.mean,
                congestion.max_usage(),
            ]
        )
    print(
        format_table(
            [
                "protocol",
                "state mean",
                "state max",
                "first stretch mean",
                "first stretch max",
                "later stretch mean",
                "max edge load",
            ],
            rows,
            float_format="{:.2f}",
        )
    )
    print(
        "\nExpected shape (paper Figs. 3/5): S4's first-packet stretch tail is"
        " far above Disco's on latency-weighted graphs, because S4's first"
        " packet detours through a location-service landmark that can be"
        " physically far away, while Disco finds the address inside the"
        " sender's vicinity."
    )


if __name__ == "__main__":
    main()
