#!/usr/bin/env python3
"""Regenerate every table and figure of the paper at the configured scale.

Runs the full experiment suite (Figs. 1-10 plus the address-size,
finger-count, n-estimate-error, static-accuracy, and theorem-verification
studies) and prints each report.  Scale is controlled by the ``REPRO_SCALE``
environment variable (default: laptop-sized topologies; see
``repro.experiments.config``).

Run:  python examples/reproduce_paper.py [experiment-id ...]
      python examples/reproduce_paper.py --list
"""

from __future__ import annotations

import sys
import time

from repro.experiments import default_scale
from repro.experiments.runner import EXPERIMENTS, run_experiment


def main(argv: list[str]) -> int:
    if "--list" in argv:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0
    selected = [arg for arg in argv if not arg.startswith("-")] or list(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    scale = default_scale()
    print(f"running {len(selected)} experiments at scale '{scale.label}'\n")
    for experiment_id in selected:
        started = time.time()
        _, report = run_experiment(experiment_id, scale)
        elapsed = time.time() - started
        print(report)
        print(f"\n[{experiment_id} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
