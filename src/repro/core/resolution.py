"""The landmark name-resolution database (§4.3).

"We can solve this by running a consistent hashing database over the
(globally-known) set of landmarks...  Every node is aware of its own address
(ℓv, ℓv ; v), so it can insert it into the database, and other nodes can
query the database to determine v's address.  This state is soft: it can be
updated, for example, every t minutes and timed out after 2t + 1 minutes."

:class:`LandmarkResolutionDatabase` models the converged content of that
database: which landmark stores which (name → address) record, how many
entries each landmark therefore carries (this feeds the per-node state
accounting of Theorem 2 and Fig. 7), and the lookup path a query would take.
Soft-state refresh/timeout behaviour is exercised by the discrete-event
simulator, which drives :meth:`insert` / :meth:`expire_older_than` with a
virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.addressing.address import Address
from repro.naming.consistent_hash import ConsistentHashRing
from repro.naming.names import FlatName

__all__ = ["ResolutionRecord", "LandmarkResolutionDatabase"]


@dataclass(frozen=True)
class ResolutionRecord:
    """One soft-state record: a node's name, its address, and its insert time."""

    name: FlatName
    address: Address
    inserted_at: float = 0.0


class LandmarkResolutionDatabase:
    """Consistent-hashing storage of (name → address) records on landmarks.

    Parameters
    ----------
    landmarks:
        The landmark node ids that jointly host the database.
    virtual_nodes:
        Ring points per landmark; 1 reproduces the simple construction, and
        larger values provide the "multiple hash functions" load smoothing
        mentioned in §4.5.
    refresh_interval:
        The soft-state refresh period t (minutes in the paper, arbitrary
        virtual-time units here).  Records expire after ``2 * t + 1``.
    """

    def __init__(
        self,
        landmarks: Iterable[int],
        *,
        virtual_nodes: int = 1,
        refresh_interval: float = 10.0,
    ) -> None:
        landmark_list = sorted(set(landmarks))
        if not landmark_list:
            raise ValueError("resolution database requires at least one landmark")
        if refresh_interval <= 0:
            raise ValueError(
                f"refresh_interval must be > 0, got {refresh_interval}"
            )
        self._ring = ConsistentHashRing(landmark_list, virtual_nodes=virtual_nodes)
        self._refresh_interval = refresh_interval
        self._records: dict[int, dict[FlatName, ResolutionRecord]] = {
            landmark: {} for landmark in landmark_list
        }

    # -- configuration accessors -------------------------------------------

    @property
    def landmarks(self) -> list[int]:
        """The landmark ids hosting the database (sorted)."""
        return sorted(self._records)

    @property
    def refresh_interval(self) -> float:
        """The soft-state refresh period t."""
        return self._refresh_interval

    @property
    def timeout(self) -> float:
        """The soft-state timeout 2t + 1."""
        return 2.0 * self._refresh_interval + 1.0

    # -- storage ------------------------------------------------------------

    def home_landmark(self, name: FlatName) -> int:
        """Return the landmark that owns ``name`` under consistent hashing."""
        return self._ring.owner(name.hash_value)

    def insert(
        self, name: FlatName, address: Address, *, now: float = 0.0
    ) -> int:
        """Insert/refresh the record for ``name``; returns the home landmark."""
        landmark = self.home_landmark(name)
        self._records[landmark][name] = ResolutionRecord(
            name=name, address=address, inserted_at=now
        )
        return landmark

    def lookup(self, name: FlatName) -> Address | None:
        """Return the stored address for ``name``, or None if absent."""
        landmark = self.home_landmark(name)
        record = self._records[landmark].get(name)
        return record.address if record is not None else None

    def lookup_record(self, name: FlatName) -> ResolutionRecord | None:
        """Return the full stored record for ``name``, or None if absent."""
        landmark = self.home_landmark(name)
        return self._records[landmark].get(name)

    def expire_older_than(self, now: float) -> int:
        """Drop records older than the soft-state timeout; returns count dropped."""
        dropped = 0
        cutoff = now - self.timeout
        for records in self._records.values():
            stale = [name for name, rec in records.items() if rec.inserted_at < cutoff]
            for name in stale:
                del records[name]
                dropped += 1
        return dropped

    # -- state accounting ---------------------------------------------------

    def entries_at(self, landmark: int) -> int:
        """Number of resolution records stored at ``landmark`` (0 for non-hosts)."""
        return len(self._records.get(landmark, ()))

    def entry_bytes_at(self, landmark: int, *, name_bytes: int = 4) -> float:
        """Bytes of resolution state at ``landmark`` (names + addresses)."""
        return sum(
            record.address.mapping_entry_bytes(name_bytes)
            for record in self._records.get(landmark, {}).values()
        )

    def load_distribution(self) -> dict[int, int]:
        """Return entries per landmark (the load-imbalance view of §4.5)."""
        return {landmark: len(records) for landmark, records in self._records.items()}

    def populate(
        self,
        names: Iterable[FlatName],
        addresses: Iterable[Address],
        *,
        now: float = 0.0,
    ) -> None:
        """Bulk-insert the (name, address) pairs (converged-state construction)."""
        for name, address in zip(names, addresses):
            self.insert(name, address, now=now)
