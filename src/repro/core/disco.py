"""Disco: name-independent compact routing on flat names (§4.4-§4.5).

Disco composes three pieces, all built in this package:

1. **NDDisco** (:class:`~repro.core.nddisco.NDDiscoRouting`) -- landmarks,
   vicinities, and addresses with explicit routes;
2. the **landmark name-resolution database** (§4.3), used as a fallback and
   for overlay finger lookups;
3. the **distributed name database**: sloppy groups, the Symphony-style
   overlay, and the direction-monotone dissemination protocol that places
   every node's address at all members of its sloppy group.

Routing a first packet from s to t (§4.4 "Routing"):

* if s holds a direct route (t is a landmark or t ∈ V(s)) -- use it;
* else if s stores t's address (s ∈ G(t)) -- route via NDDisco;
* otherwise s picks the vicinity member w with the longest prefix match
  between h(w) and h(t); w.h.p. w ∈ G(t) and knows t's address, so the packet
  travels s ; w ; ℓt ; t (stretch ≤ 7, Theorem 1);
* in the vanishingly rare case that w does not know t's address, the packet
  falls back to the landmark resolution database (§4.3).

Later packets use NDDisco with the destination's handshake (stretch ≤ 3).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from array import array

from repro.addressing.address import NAME_BYTES_IPV4, NAME_BYTES_IPV6
from repro.core.nddisco import NDDiscoRouting
from repro.core.overlay import DisseminationOverlay
from repro.core.shortcutting import ShortcutMode, apply_shortcuts
from repro.core.sloppy_groups import SloppyGrouping
from repro.core.tables import SubstrateTables, get_backend
from repro.core.vicinity import VicinityTable
from repro.graphs.topology import Topology
from repro.naming.hashspace import hash_prefix
from repro.naming.names import FlatName
from repro.protocols.base import RouteResult, RoutingScheme

__all__ = ["DiscoRouting"]


class DiscoRouting(RoutingScheme):
    """Converged-state model of the full Disco protocol.

    Parameters
    ----------
    topology:
        The (connected) network.
    seed:
        Seed for landmark selection and overlay finger draws.
    shortcut_mode:
        Shortcutting heuristic for relay routes (default: No Path Knowledge,
        as in the paper's headline results).
    num_fingers:
        Outgoing overlay fingers per node (1 or 3 in the paper).
    estimated_n:
        Estimate(s) of the network size used for sloppy grouping -- a single
        value or a per-node mapping.  Defaults to the true n.  The
        §5.2 error-injection experiment passes per-node perturbed values.
    nddisco:
        Optionally reuse an existing :class:`NDDiscoRouting` built on the
        same topology (saves recomputing landmarks, vicinities, and
        addresses when an experiment evaluates both protocols).
    """

    name = "Disco"

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        shortcut_mode: ShortcutMode = ShortcutMode.NO_PATH_KNOWLEDGE,
        vicinity_scale: float = 1.0,
        num_fingers: int = 1,
        estimated_n: float | Mapping[int, float] | None = None,
        names: Sequence[FlatName] | None = None,
        nddisco: NDDiscoRouting | None = None,
    ) -> None:
        super().__init__(topology)
        if nddisco is not None:
            # Identity is the common case; equality (same nodes and weighted
            # edges) admits substrates round-tripped through the scenario
            # engine's disk cache, which are content-equal distinct objects.
            if nddisco.topology is not topology and nddisco.topology != topology:
                raise ValueError("nddisco was built on a different topology")
            self._nddisco = nddisco
        else:
            self._nddisco = NDDiscoRouting(
                topology,
                seed=seed,
                shortcut_mode=shortcut_mode,
                vicinity_scale=vicinity_scale,
                names=names,
                resolve_first_packet=True,
            )
        self._shortcut_mode = self._nddisco.shortcut_mode
        self._grouping = SloppyGrouping(self._nddisco.names, estimated_n)
        self._overlay = DisseminationOverlay(
            self._grouping, num_fingers=num_fingers, seed=seed
        )
        counts, byte_totals = self._compute_group_storage()
        if get_backend() == "array":
            # Flat per-node rows instead of a list of boxed ints plus an
            # int-keyed float dict; indexing below is unchanged.
            n = self._nddisco.topology.num_nodes
            self._group_entry_counts = array("q", counts)
            self._group_entry_bytes = array(
                "d", (byte_totals[node] for node in range(n))
            )
        else:
            self._group_entry_counts = counts
            self._group_entry_bytes = byte_totals

    # -- construction helpers ------------------------------------------------

    def _compute_group_storage(self) -> tuple[list[int], dict[int, float]]:
        """Count stored sloppy-group address mappings (and bytes) per node.

        Node ``h`` stores node ``o``'s address iff their hashes share at
        least ``max(k_h, k_o)`` bits (the converged core-group condition).
        Buckets are built per distinct prefix length so the computation is
        O(n · #distinct-k) rather than O(n²).
        """
        grouping = self._grouping
        addresses = self._nddisco.addresses
        n = grouping.num_nodes
        distinct_ks = sorted({grouping.prefix_bits_of(v) for v in range(n)})

        # buckets[(bits, owner_k)][prefix] -> (count, total mapping bytes)
        buckets: dict[tuple[int, int], dict[int, tuple[int, float]]] = {}
        for owner_k in distinct_ks:
            owners = [v for v in range(n) if grouping.prefix_bits_of(v) == owner_k]
            for bits in distinct_ks:
                needed = max(bits, owner_k)
                key = (needed, owner_k)
                if key in buckets:
                    continue
                bucket: dict[int, tuple[int, float]] = {}
                for owner in owners:
                    prefix = hash_prefix(grouping.hash_of(owner), needed)
                    count, total = bucket.get(prefix, (0, 0.0))
                    bucket[prefix] = (
                        count + 1,
                        total + addresses[owner].mapping_entry_bytes(NAME_BYTES_IPV4),
                    )
                buckets[key] = bucket

        counts = [0] * n
        byte_totals: dict[int, float] = {}
        for holder in range(n):
            holder_k = grouping.prefix_bits_of(holder)
            holder_hash = grouping.hash_of(holder)
            total_count = 0
            total_bytes = 0.0
            for owner_k in distinct_ks:
                needed = max(holder_k, owner_k)
                bucket = buckets[(needed, owner_k)]
                prefix = hash_prefix(holder_hash, needed)
                count, bytes_sum = bucket.get(prefix, (0, 0.0))
                total_count += count
                total_bytes += bytes_sum
            # Exclude the holder's own record (it knows its own address anyway
            # and the paper counts stored *mappings* for other nodes).
            own_bytes = self._nddisco.addresses[holder].mapping_entry_bytes(
                NAME_BYTES_IPV4
            )
            counts[holder] = max(0, total_count - 1)
            byte_totals[holder] = max(0.0, total_bytes - own_bytes)
        return counts, byte_totals

    # -- accessors -------------------------------------------------------------

    @property
    def nddisco(self) -> NDDiscoRouting:
        """The underlying name-dependent protocol instance."""
        return self._nddisco

    @property
    def tables(self) -> "SubstrateTables | None":
        """The embedded substrate's flat slabs (``None`` on "dict")."""
        return self._nddisco.tables

    @property
    def shortcut_mode(self) -> ShortcutMode:
        """The shortcutting heuristic in force (shared with NDDisco)."""
        return self._shortcut_mode

    @shortcut_mode.setter
    def shortcut_mode(self, mode: ShortcutMode) -> None:
        """Switch the heuristic for both Disco and its underlying NDDisco."""
        if not isinstance(mode, ShortcutMode):
            raise TypeError(f"expected ShortcutMode, got {type(mode).__name__}")
        self._shortcut_mode = mode
        self._nddisco.shortcut_mode = mode

    @property
    def grouping(self) -> SloppyGrouping:
        """The sloppy grouping in force."""
        return self._grouping

    @property
    def overlay(self) -> DisseminationOverlay:
        """The dissemination overlay."""
        return self._overlay

    @property
    def landmarks(self) -> set[int]:
        """The landmark set."""
        return self._nddisco.landmarks

    @property
    def vicinities(self) -> list[VicinityTable]:
        """Per-node vicinities."""
        return self._nddisco.vicinities

    def group_address_entries(self, node: int) -> int:
        """Sloppy-group address mappings stored at ``node`` (excluding its own)."""
        return self._group_entry_counts[node]

    # -- state accounting -------------------------------------------------------

    def state_entries(self, node: int) -> int:
        """NDDisco entries plus sloppy-group address mappings plus overlay links."""
        self._check_endpoints(node, node)
        return (
            self._nddisco.state_entries(node)
            + self._group_entry_counts[node]
            + self._overlay.degree(node)
        )

    def state_bytes(self, node: int, *, name_bytes: int = NAME_BYTES_IPV4) -> float:
        """Bytes of data-plane state at ``node`` (Fig. 7 accounting)."""
        base = self._nddisco.state_bytes(node, name_bytes=name_bytes)
        group_bytes = self._group_entry_bytes[node]
        if name_bytes != NAME_BYTES_IPV4:
            # The cached byte totals were computed with IPv4-sized names;
            # rescale the per-entry fixed cost (two names per mapping entry).
            delta_per_entry = 2.0 * (name_bytes - NAME_BYTES_IPV4)
            group_bytes += self._group_entry_counts[node] * delta_per_entry
        overlay_bytes = 0.0
        for neighbor in self._overlay.neighbors(node):
            overlay_bytes += self._nddisco.addresses[neighbor].mapping_entry_bytes(
                name_bytes
            )
        return base + group_bytes + overlay_bytes

    def state_profile(
        self, nodes: Sequence[int]
    ) -> tuple[list[int], list[float], list[float]]:
        """Batched state accounting: ``(entries, IPv4 bytes, IPv6 bytes)``.

        Mirrors :meth:`state_entries` / :meth:`state_bytes` value for
        value on top of NDDisco's batched profile.
        """
        nd_entries, nd_v4, nd_v6 = self._nddisco.state_profile(nodes)
        addresses = self._nddisco.addresses
        entries_out: list[int] = []
        bytes_v4: list[float] = []
        bytes_v6: list[float] = []
        for index, node in enumerate(nodes):
            self._check_endpoints(node, node)
            count = self._group_entry_counts[node]
            entries_out.append(
                nd_entries[index] + count + self._overlay.degree(node)
            )
            neighbors = list(self._overlay.neighbors(node))
            for name_bytes, base, out in (
                (NAME_BYTES_IPV4, nd_v4[index], bytes_v4),
                (NAME_BYTES_IPV6, nd_v6[index], bytes_v6),
            ):
                group_bytes = self._group_entry_bytes[node]
                if name_bytes != NAME_BYTES_IPV4:
                    delta_per_entry = 2.0 * (name_bytes - NAME_BYTES_IPV4)
                    group_bytes += count * delta_per_entry
                overlay_bytes = 0.0
                for neighbor in neighbors:
                    overlay_bytes += addresses[neighbor].mapping_entry_bytes(
                        name_bytes
                    )
                out.append(base + group_bytes + overlay_bytes)
        return entries_out, bytes_v4, bytes_v6

    # -- routing ----------------------------------------------------------------

    def knows_address(self, holder: int, owner: int) -> bool:
        """True if ``holder`` stores ``owner``'s address after convergence."""
        return self._grouping.stores_address_of(holder, owner)

    def _group_contact(self, source: int, target: int) -> int | None:
        """The vicinity member of ``source`` most likely to know ``target``'s address."""
        vicinity = self._nddisco.vicinities[source]
        candidates = {
            member: distance
            for member, distance in vicinity.distances.items()
            if member != source
        }
        return self._grouping.best_group_contact(target, candidates)

    def first_packet_route(self, source: int, target: int) -> RouteResult:
        """Route the first packet of a flow (stretch ≤ 7 w.h.p.)."""
        self._check_endpoints(source, target)
        nddisco = self._nddisco
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        if nddisco.knows_direct_route(source, target):
            return RouteResult(
                path=tuple(nddisco.direct_route(source, target)), mechanism="direct"
            )
        if self.knows_address(source, target):
            path, _ = nddisco.compact_route(source, target)
            return RouteResult(path=tuple(path), mechanism="known-address")

        contact = self._group_contact(source, target)
        if contact is not None and self.knows_address(contact, target):
            forward = self._via_contact_route(source, contact, target)
            reverse = None
            if self._shortcut_mode.uses_reverse_route:
                reverse = self._reverse_first_packet_route(source, target)
            path = apply_shortcuts(
                self._topology,
                nddisco.vicinities,
                forward,
                self._shortcut_mode,
                reverse_route=reverse,
            )
            return RouteResult(path=tuple(path), mechanism="group-contact")

        # Vanishingly rare: no vicinity member knows the address.  Fall back
        # to the landmark resolution database (§4.3 / §4.4).
        result = nddisco.first_packet_route(source, target)
        return RouteResult(path=result.path, mechanism="resolution-fallback")

    def _via_contact_route(self, source: int, contact: int, target: int) -> list[int]:
        """The raw s ; w ; ℓt ; t route through group contact ``contact``."""
        nddisco = self._nddisco
        to_contact = nddisco.vicinities[source].path_to(contact)
        if contact == target:
            return to_contact
        onward = nddisco.relay_route(contact, target)
        return to_contact + onward[1:]

    def _reverse_first_packet_route(self, source: int, target: int) -> list[int]:
        """The symmetric t ; w' ; ℓs ; s route used by reverse-path selection."""
        nddisco = self._nddisco
        if nddisco.knows_direct_route(target, source):
            return nddisco.direct_route(target, source)
        if self.knows_address(target, source):
            return nddisco.relay_route(target, source)
        contact = self._group_contact(target, source)
        if contact is not None and self.knows_address(contact, source):
            return self._via_contact_route(target, contact, source)
        return nddisco.relay_route(target, source)

    def later_packet_route(self, source: int, target: int) -> RouteResult:
        """Route packets after the first (stretch ≤ 3, via NDDisco handshake)."""
        return self._nddisco.later_packet_route(source, target)
