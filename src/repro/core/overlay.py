"""The Symphony-style address-dissemination overlay (§4.4).

"Each node v maintains a set of overlay neighbors N(v).  Similar to a DHT
structure, N(v) includes v's successor and predecessor in the circular
ordering of nodes according to their hash values h(·).  N(v) also includes a
small number of long-distance links called 'fingers'.  To select a finger, a
node v picks a random hash-value a from the part of hash-space that falls
within G(v).  Following [32] (Symphony), a is picked such that the likelihood
of picking a value is inversely proportional to its distance in hash-space
from h(v)."

:class:`DisseminationOverlay` builds the converged overlay: the global ring
(successor/predecessor links) plus each node's outgoing fingers (1 or 3 in
the paper's experiments), resolved -- as the protocol does via the landmark
resolution database -- to the live node whose hash is closest to the drawn
value.  The overlay is undirected for dissemination purposes: a TCP
connection carries announcements both ways, so a node's effective neighbor
set contains both its outgoing and incoming links ("an average of |N(v)| ≈ 4
or 8 overlay connections ... counting both outgoing and incoming
connections").
"""

from __future__ import annotations

import math

from repro.core.sloppy_groups import SloppyGrouping
from repro.naming.hashspace import HASH_BITS, HASH_SPACE, circular_distance
from repro.utils.randomness import make_rng
from repro.utils.validation import require_positive

__all__ = ["DisseminationOverlay"]


class DisseminationOverlay:
    """The ring-plus-fingers overlay used to disseminate addresses.

    Parameters
    ----------
    grouping:
        The sloppy grouping (provides names, hashes, and per-node group
        definitions).
    num_fingers:
        Outgoing long-distance links per node (the paper evaluates 1 and 3).
    seed:
        RNG seed for the harmonic finger draws.
    """

    def __init__(
        self,
        grouping: SloppyGrouping,
        *,
        num_fingers: int = 1,
        seed: int = 0,
    ) -> None:
        require_positive("num_fingers", num_fingers, allow_zero=True)
        self._grouping = grouping
        self._num_fingers = num_fingers
        self._seed = seed
        n = grouping.num_nodes

        # Ring order: nodes sorted by hash value (ties by node id).
        self._ring_order = sorted(
            range(n), key=lambda node: (grouping.hash_of(node), node)
        )
        self._ring_position = {
            node: index for index, node in enumerate(self._ring_order)
        }
        self._sorted_hashes = [grouping.hash_of(node) for node in self._ring_order]

        self._successor: dict[int, int] = {}
        self._predecessor: dict[int, int] = {}
        for index, node in enumerate(self._ring_order):
            self._successor[node] = self._ring_order[(index + 1) % n]
            self._predecessor[node] = self._ring_order[(index - 1) % n]

        self._outgoing_fingers: dict[int, list[int]] = {
            node: self._choose_fingers(node) for node in range(n)
        }
        self._neighbors: dict[int, set[int]] = {node: set() for node in range(n)}
        for node in range(n):
            if n > 1:
                self._neighbors[node].add(self._successor[node])
                self._neighbors[node].add(self._predecessor[node])
            for finger in self._outgoing_fingers[node]:
                self._neighbors[node].add(finger)
                self._neighbors[finger].add(node)
        for node in range(n):
            self._neighbors[node].discard(node)

    # -- finger selection ----------------------------------------------------

    def _group_region(self, node: int) -> tuple[int, int]:
        """Return (start, size) of the hash-space region of node's group."""
        k = self._grouping.prefix_bits_of(node)
        if k <= 0:
            return 0, HASH_SPACE
        region_size = 1 << (HASH_BITS - k)
        prefix = self._grouping.hash_of(node) >> (HASH_BITS - k)
        return prefix * region_size, region_size

    def _choose_fingers(self, node: int) -> list[int]:
        """Draw the node's outgoing fingers with Symphony's harmonic rule."""
        if self._num_fingers == 0 or self._grouping.num_nodes <= 3:
            return []
        rng = make_rng(self._seed, f"fingers/{node}")
        region_start, region_size = self._group_region(node)
        own_hash = self._grouping.hash_of(node)
        own_offset = (own_hash - region_start) % HASH_SPACE
        fingers: list[int] = []
        attempts = 0
        max_attempts = self._num_fingers * 20
        while len(fingers) < self._num_fingers and attempts < max_attempts:
            attempts += 1
            # Log-uniform (harmonic) distance within the group's region, in
            # either direction around the node's own position.
            distance = math.exp(rng.random() * math.log(max(region_size, 2)))
            direction = 1 if rng.random() < 0.5 else -1
            offset = (own_offset + direction * int(distance)) % region_size
            target_value = (region_start + offset) % HASH_SPACE
            finger = self._resolve_hash(target_value, exclude=node)
            if finger is None:
                continue
            if finger not in fingers and finger not in (
                self._successor.get(node),
                self._predecessor.get(node),
            ):
                fingers.append(finger)
        return fingers

    def _resolve_hash(self, value: int, *, exclude: int) -> int | None:
        """Return the node whose hash is circularly closest to ``value``.

        This models the lookup "querying the landmark-based resolution
        database for the node with the closest hash-value to a" (§4.4).
        Implemented with a binary search over the ring order, checking a few
        candidates on either side of the insertion point (enough to skip the
        excluded node and handle wrap-around).
        """
        import bisect

        order = self._ring_order
        n = len(order)
        if n == 0 or (n == 1 and order[0] == exclude):
            return None
        hashes = self._sorted_hashes
        index = bisect.bisect_left(hashes, value)
        best: int | None = None
        best_distance = HASH_SPACE + 1
        for offset in range(-2, 3):
            position = (index + offset) % n
            node = order[position]
            if node == exclude:
                continue
            dist = circular_distance(self._grouping.hash_of(node), value)
            if dist < best_distance or (dist == best_distance and (best is None or node < best)):
                best = node
                best_distance = dist
        return best

    # -- accessors -----------------------------------------------------------

    @property
    def grouping(self) -> SloppyGrouping:
        """The sloppy grouping the overlay is organised around."""
        return self._grouping

    @property
    def num_fingers(self) -> int:
        """Outgoing fingers per node."""
        return self._num_fingers

    def successor(self, node: int) -> int:
        """The node's ring successor (next larger hash, wrapping around)."""
        return self._successor[node]

    def predecessor(self, node: int) -> int:
        """The node's ring predecessor."""
        return self._predecessor[node]

    def outgoing_fingers(self, node: int) -> list[int]:
        """The node's outgoing long-distance links."""
        return list(self._outgoing_fingers[node])

    def neighbors(self, node: int) -> set[int]:
        """All overlay neighbors (ring links plus outgoing and incoming fingers)."""
        return set(self._neighbors[node])

    def degree(self, node: int) -> int:
        """Number of overlay connections at ``node``."""
        return len(self._neighbors[node])

    def average_degree(self) -> float:
        """Mean overlay degree (≈ 4 with 1 finger, ≈ 8 with 3, per §4.4)."""
        n = self._grouping.num_nodes
        if n == 0:
            return 0.0
        return sum(len(self._neighbors[v]) for v in range(n)) / n

    def group_neighbors(self, node: int) -> set[int]:
        """Overlay neighbors that ``node`` believes are in its own group.

        Dissemination only uses these ("nodes only propagate advertisements
        to and from nodes they believe belong to their own group").
        """
        return {
            neighbor
            for neighbor in self._neighbors[node]
            if self._grouping.believes_same_group(node, neighbor)
        }

    def ring_nodes(self) -> list[int]:
        """Nodes in ring (hash) order."""
        return list(self._ring_order)
