"""Landmark selection (§4.2).

"Landmarks are selected uniform-randomly by having each node decide locally
and independently whether to become a landmark.  Specifically, each node picks
a random number p uniform in [0, 1], and decides to become a landmark if
p < sqrt((log n)/n).  Thus, the expected number of landmarks is
sqrt(n log n)."

Two practical provisions from the paper are modelled as well:

* **Churn hysteresis** -- "a node v only flips its landmark status if n has
  changed by at least a factor 2 since the last time v changed its status",
  which :class:`LandmarkSet.reconsider` implements for the dynamic scenarios.
* **At least one landmark** -- with tiny n the random rule can select zero
  landmarks, in which case routing through landmarks would be impossible; the
  selector then promotes the node with the smallest draw, which preserves the
  "local decision" flavour (every node can compute the same fallback from the
  gossiped draws) while keeping small test topologies functional.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.graphs.engine import get_engine
from repro.graphs.topology import Topology
from repro.utils.randomness import make_rng
from repro.utils.validation import require_positive

__all__ = [
    "landmark_probability",
    "select_landmarks",
    "landmark_spts",
    "closest_landmarks",
    "LandmarkSet",
]


def landmark_probability(num_nodes: int) -> float:
    """Return the per-node landmark probability sqrt(log n / n).

    Natural logarithm is used (the paper's analysis is asymptotic and
    indifferent to the base); the value is clamped to 1.0 for very small n
    where the formula exceeds one.
    """
    require_positive("num_nodes", num_nodes)
    if num_nodes == 1:
        return 1.0
    return min(1.0, math.sqrt(math.log(num_nodes) / num_nodes))


def select_landmarks(
    num_nodes: int,
    *,
    seed: int = 0,
    probability: float | None = None,
) -> set[int]:
    """Select landmarks by independent biased coin flips.

    Parameters
    ----------
    num_nodes:
        Number of nodes n.
    seed:
        RNG seed (each node's draw is derived from the seed and its id, so
        the decision really is per-node and insensitive to iteration order).
    probability:
        Override for the landmark probability; defaults to
        :func:`landmark_probability`.

    Returns
    -------
    set[int]
        The selected landmark node ids; never empty.
    """
    require_positive("num_nodes", num_nodes)
    p = landmark_probability(num_nodes) if probability is None else probability
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
    draws: list[float] = []
    landmarks: set[int] = set()
    for node in range(num_nodes):
        draw = make_rng(seed, f"landmark-draw/{node}").random()
        draws.append(draw)
        if draw < p:
            landmarks.add(node)
    if not landmarks:
        landmarks.add(min(range(num_nodes), key=lambda v: draws[v]))
    return landmarks


def landmark_spts(
    topology: Topology, landmarks: Iterable[int]
) -> dict[int, tuple[list[float], list[int]]]:
    """Shortest-path trees rooted at every landmark, as dense rows.

    Returns a dict mapping each landmark (in ascending id order) to a
    ``(dist_row, parent_row)`` pair of lists indexed by node id.  Nodes
    outside the landmark's component keep ``0.0`` / ``-1`` (the converged
    protocol models assume connected topologies).

    On the CSR engine all trees are built by one batched driver over a shared
    scratch arena (:meth:`CSRGraph.batched_spt`); both NDDisco and S4 build
    their landmark state through this helper, and
    :class:`~repro.staticsim.simulation.StaticSimulation` shares the result
    between them.
    """
    ordered = sorted(landmarks)
    result: dict[int, tuple[list[float], list[int]]] = {}
    if get_engine() == "csr":
        for landmark, dist_row, parent_row in topology.csr().batched_spt(ordered):
            result[landmark] = (dist_row, parent_row)
        return result
    from repro.graphs.shortest_paths import dijkstra

    num_nodes = topology.num_nodes
    for landmark in ordered:
        distances, parents = dijkstra(topology, landmark)
        dist_row = [0.0] * num_nodes
        parent_row = [-1] * num_nodes
        for node, value in distances.items():
            dist_row[node] = value
        for node, parent in parents.items():
            parent_row[node] = parent
        result[landmark] = (dist_row, parent_row)
    return result


def closest_landmarks(
    spts: dict[int, tuple[list[float], list[int]]], num_nodes: int
) -> tuple[list[int], list[float]]:
    """Per-node closest landmark (ties toward the smaller landmark id).

    Returns ``(closest, distance)`` lists indexed by node id, computed by
    sweeping the dense SPT rows once per landmark -- the flat-array
    replacement for an O(n · |L|) ``min(..., key=lambda ...)`` per node.
    """
    if not spts:
        raise ValueError("at least one landmark SPT is required")
    ordered = sorted(spts)
    first = ordered[0]
    best_distance = list(spts[first][0])
    best_landmark = [first] * num_nodes
    for landmark in ordered[1:]:
        row = spts[landmark][0]
        for node in range(num_nodes):
            if row[node] < best_distance[node]:
                best_distance[node] = row[node]
                best_landmark[node] = landmark
    return best_landmark, best_distance


@dataclass
class LandmarkSet:
    """The landmark set plus the bookkeeping for dynamic reconsideration.

    Attributes
    ----------
    landmarks:
        Current landmark node ids.
    seed:
        Seed the per-node draws derive from.
    population_at_last_change:
        Per-node record of the network size when that node last flipped its
        status; used by :meth:`reconsider` to implement the factor-2
        hysteresis rule of §4.2.
    """

    landmarks: set[int]
    seed: int = 0
    population_at_last_change: dict[int, int] = field(default_factory=dict)

    @classmethod
    def create(
        cls, topology_or_n: Topology | int, *, seed: int = 0
    ) -> "LandmarkSet":
        """Create a landmark set for a topology or a node count."""
        if isinstance(topology_or_n, Topology):
            num_nodes = topology_or_n.num_nodes
        else:
            num_nodes = int(topology_or_n)
        selected = select_landmarks(num_nodes, seed=seed)
        return cls(
            landmarks=selected,
            seed=seed,
            population_at_last_change={node: num_nodes for node in range(num_nodes)},
        )

    def __contains__(self, node: int) -> bool:
        return node in self.landmarks

    def __len__(self) -> int:
        return len(self.landmarks)

    def reconsider(self, node: int, current_n: int) -> bool:
        """Re-evaluate ``node``'s landmark status for a new network size.

        Implements the hysteresis rule: the node re-flips its biased coin
        (with the probability for ``current_n``) only if the network size has
        changed by at least a factor of 2 since its last status change.

        Returns
        -------
        bool
            True if the node's status changed.
        """
        require_positive("current_n", current_n)
        last_n = self.population_at_last_change.get(node, current_n)
        if last_n > 0 and 0.5 < current_n / last_n < 2.0:
            return False
        p = landmark_probability(current_n)
        draw = make_rng(self.seed, f"landmark-redraw/{node}/{current_n}").random()
        was_landmark = node in self.landmarks
        is_landmark = draw < p
        self.population_at_last_change[node] = current_n
        if is_landmark == was_landmark:
            return False
        if is_landmark:
            self.landmarks.add(node)
        else:
            self.landmarks.discard(node)
        return True

    def expected_count(self, num_nodes: int) -> float:
        """Expected number of landmarks for a network of ``num_nodes``."""
        return num_nodes * landmark_probability(num_nodes)
