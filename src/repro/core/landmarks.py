"""Landmark selection (§4.2).

"Landmarks are selected uniform-randomly by having each node decide locally
and independently whether to become a landmark.  Specifically, each node picks
a random number p uniform in [0, 1], and decides to become a landmark if
p < sqrt((log n)/n).  Thus, the expected number of landmarks is
sqrt(n log n)."

Two practical provisions from the paper are modelled as well:

* **Churn hysteresis** -- "a node v only flips its landmark status if n has
  changed by at least a factor 2 since the last time v changed its status",
  which :class:`LandmarkSet.reconsider` implements for the dynamic scenarios.
* **At least one landmark** -- with tiny n the random rule can select zero
  landmarks, in which case routing through landmarks would be impossible; the
  selector then promotes the node with the smallest draw, which preserves the
  "local decision" flavour (every node can compute the same fallback from the
  gossiped draws) while keeping small test topologies functional.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.graphs.topology import Topology
from repro.utils.randomness import make_rng
from repro.utils.validation import require_positive

__all__ = ["landmark_probability", "select_landmarks", "LandmarkSet"]


def landmark_probability(num_nodes: int) -> float:
    """Return the per-node landmark probability sqrt(log n / n).

    Natural logarithm is used (the paper's analysis is asymptotic and
    indifferent to the base); the value is clamped to 1.0 for very small n
    where the formula exceeds one.
    """
    require_positive("num_nodes", num_nodes)
    if num_nodes == 1:
        return 1.0
    return min(1.0, math.sqrt(math.log(num_nodes) / num_nodes))


def select_landmarks(
    num_nodes: int,
    *,
    seed: int = 0,
    probability: float | None = None,
) -> set[int]:
    """Select landmarks by independent biased coin flips.

    Parameters
    ----------
    num_nodes:
        Number of nodes n.
    seed:
        RNG seed (each node's draw is derived from the seed and its id, so
        the decision really is per-node and insensitive to iteration order).
    probability:
        Override for the landmark probability; defaults to
        :func:`landmark_probability`.

    Returns
    -------
    set[int]
        The selected landmark node ids; never empty.
    """
    require_positive("num_nodes", num_nodes)
    p = landmark_probability(num_nodes) if probability is None else probability
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
    draws: list[float] = []
    landmarks: set[int] = set()
    for node in range(num_nodes):
        draw = make_rng(seed, f"landmark-draw/{node}").random()
        draws.append(draw)
        if draw < p:
            landmarks.add(node)
    if not landmarks:
        landmarks.add(min(range(num_nodes), key=lambda v: draws[v]))
    return landmarks


@dataclass
class LandmarkSet:
    """The landmark set plus the bookkeeping for dynamic reconsideration.

    Attributes
    ----------
    landmarks:
        Current landmark node ids.
    seed:
        Seed the per-node draws derive from.
    population_at_last_change:
        Per-node record of the network size when that node last flipped its
        status; used by :meth:`reconsider` to implement the factor-2
        hysteresis rule of §4.2.
    """

    landmarks: set[int]
    seed: int = 0
    population_at_last_change: dict[int, int] = field(default_factory=dict)

    @classmethod
    def create(
        cls, topology_or_n: Topology | int, *, seed: int = 0
    ) -> "LandmarkSet":
        """Create a landmark set for a topology or a node count."""
        if isinstance(topology_or_n, Topology):
            num_nodes = topology_or_n.num_nodes
        else:
            num_nodes = int(topology_or_n)
        selected = select_landmarks(num_nodes, seed=seed)
        return cls(
            landmarks=selected,
            seed=seed,
            population_at_last_change={node: num_nodes for node in range(num_nodes)},
        )

    def __contains__(self, node: int) -> bool:
        return node in self.landmarks

    def __len__(self) -> int:
        return len(self.landmarks)

    def reconsider(self, node: int, current_n: int) -> bool:
        """Re-evaluate ``node``'s landmark status for a new network size.

        Implements the hysteresis rule: the node re-flips its biased coin
        (with the probability for ``current_n``) only if the network size has
        changed by at least a factor of 2 since its last status change.

        Returns
        -------
        bool
            True if the node's status changed.
        """
        require_positive("current_n", current_n)
        last_n = self.population_at_last_change.get(node, current_n)
        if last_n > 0 and 0.5 < current_n / last_n < 2.0:
            return False
        p = landmark_probability(current_n)
        draw = make_rng(self.seed, f"landmark-redraw/{node}/{current_n}").random()
        was_landmark = node in self.landmarks
        is_landmark = draw < p
        self.population_at_last_change[node] = current_n
        if is_landmark == was_landmark:
            return False
        if is_landmark:
            self.landmarks.add(node)
        else:
            self.landmarks.discard(node)
        return True

    def expected_count(self, num_nodes: int) -> float:
        """Expected number of landmarks for a network of ``num_nodes``."""
        return num_nodes * landmark_probability(num_nodes)
