"""NDDisco: the name-dependent distributed compact routing protocol (§4.2).

NDDisco is the foundation Disco is built on.  Each node:

* knows shortest paths to every **landmark** (selected randomly with
  probability sqrt(log n / n)),
* knows shortest paths to every node in its **vicinity** (the Θ(√(n log n))
  closest nodes),
* owns an **address** (ℓv, ℓv ; v): its closest landmark plus an explicit,
  label-encoded route from that landmark down to itself,
* if it is a landmark, additionally hosts a share of the consistent-hashing
  **name-resolution database** mapping names to addresses (§4.3).

This module models the *converged* protocol state (what path-vector route
learning produces once it quiesces; the dynamic message exchange itself is
modelled in :mod:`repro.sim`) and answers the evaluation's state and routing
queries through the :class:`~repro.protocols.base.RoutingScheme` interface.

Routing behaviour:

* **first packet** -- the sender does not know the destination's address, so
  (as in the paper's evaluation setup, §5.1, where NDDisco is "coupled with
  the landmark-based name resolution database") the packet detours through
  the landmark that owns h(t) in the resolution database, then proceeds
  toward t via the compact route.  Set ``resolve_first_packet=False`` to get
  the pure name-dependent behaviour (sender magically knows the address),
  whose stretch is at most 5.
* **later packets** -- the destination's handshake either hands the sender an
  exact shortest path (when s ∈ V(t)) or confirms the relay route; stretch is
  at most 3 (Theorem 1 / [44]).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.addressing.address import Address, NAME_BYTES_IPV4, NAME_BYTES_IPV6
from repro.addressing.explicit_route import ExplicitRoute
from repro.addressing.labels import LabelCodec
from repro.core.landmarks import closest_landmarks, landmark_spts, select_landmarks
from repro.core.resolution import LandmarkResolutionDatabase
from repro.core.shortcutting import ShortcutMode, apply_shortcuts
from repro.core.substrate_build import build_substrate_tables
from repro.core.tables import SubstrateTables, get_backend
from repro.core.vicinity import VicinityTable, compute_vicinities
from repro.graphs.engine import get_engine
from repro.graphs.topology import Topology
from repro.naming.names import FlatName, name_for_node
from repro.protocols.base import RouteResult, RoutingScheme

__all__ = ["NDDiscoRouting"]


class NDDiscoRouting(RoutingScheme):
    """Converged-state model of NDDisco.

    Parameters
    ----------
    topology:
        The (connected) network.
    seed:
        Seed for landmark selection.
    shortcut_mode:
        Shortcutting heuristic applied to relay routes.  The paper's headline
        results use ``NO_PATH_KNOWLEDGE``.
    vicinity_scale:
        Constant factor on the Θ(√(n log n)) vicinity size.
    landmarks:
        Optional externally chosen landmark set (operators may pick
        landmarks non-randomly, §6); defaults to the random rule.
    names:
        Flat names per node; default ``node-<id>``.
    resolve_first_packet:
        If True (default), first packets detour through the resolution
        database's home landmark for the destination name.
    resolution_virtual_nodes:
        Virtual ring points per landmark in the resolution database.
    workers:
        Opt-in multiprocessing fan-out for the substrate build: on the
        slab-direct path the landmark SPTs and the per-node vicinity
        searches both partition over the worker pool (see
        :func:`~repro.core.substrate_build.build_substrate_tables`); on
        the component-wise fallback it is forwarded to
        :func:`~repro.core.vicinity.compute_vicinities`.  Results are
        byte-identical for any worker count.
    threads:
        In-kernel thread fan-out for the same phases -- the default
        parallel path when no worker pool is requested (``None`` resolves
        via ``REPRO_KERNEL_THREADS`` / CPU count, ``0`` pins the serial
        per-source loop).  Byte-identical for every width.
    storage / vicinity_storage / persist_storage:
        Slab placement for the slab-direct build -- ``None`` (RAM arrays),
        ``"mmap"`` (anonymous mmap), or a directory path (file-backed
        slabs, mmap-attachable afterwards); ``vicinity_storage`` overrides
        the choice for the vicinity slabs and ``persist_storage=False``
        skips finishing a directory into a complete artifact.  Ignored on
        the component-wise fallback paths (dict backend, reference engine,
        pre-supplied ``vicinities``).
    build_stats / build_progress:
        Optional build instrumentation, forwarded to the slab-direct
        builder: ``build_stats`` (a dict) receives per-phase wall-clock
        seconds and slab byte counts, ``build_progress`` one line per
        phase.  ``repro substrate`` uses these for its large-n reporting.
    """

    name = "ND-Disco"

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        shortcut_mode: ShortcutMode = ShortcutMode.NO_PATH_KNOWLEDGE,
        vicinity_scale: float = 1.0,
        landmarks: set[int] | None = None,
        names: Sequence[FlatName] | None = None,
        vicinities: Sequence[VicinityTable] | None = None,
        resolve_first_packet: bool = True,
        resolution_virtual_nodes: int = 1,
        workers: int | None = None,
        threads: int | None = None,
        storage: "str | None" = None,
        vicinity_storage: "str | None" = None,
        persist_storage: bool = True,
        build_stats: dict | None = None,
        build_progress: "Callable[[str], None] | None" = None,
    ) -> None:
        super().__init__(topology)
        self._seed = seed
        self._shortcut_mode = shortcut_mode
        self._resolve_first_packet = resolve_first_packet
        n = topology.num_nodes

        self._names: list[FlatName] = (
            list(names) if names is not None else [name_for_node(v) for v in range(n)]
        )
        if len(self._names) != n:
            raise ValueError(
                f"names must have exactly {n} entries, got {len(self._names)}"
            )

        self._landmarks: set[int] = (
            set(landmarks) if landmarks is not None else select_landmarks(n, seed=seed)
        )
        for landmark in self._landmarks:
            if not 0 <= landmark < n:
                raise ValueError(f"landmark {landmark} out of range")
        if not self._landmarks:
            raise ValueError("landmark set must be non-empty")

        # The converged substrate: landmark SPT rows, closest-landmark
        # rows, vicinities, and address payloads as one set of flat typed
        # slabs (:class:`SubstrateTables`).  On the default "array"
        # backend + CSR engine the slab-direct builder
        # (:func:`~repro.core.substrate_build.build_substrate_tables`)
        # writes kernel results straight into the preallocated slabs --
        # optionally fanning the SPT and vicinity phases over a worker
        # pool and/or packing into mmap-backed storage -- without ever
        # materializing the per-node dict intermediates.  Every attribute
        # below keeps its historical dict/list shape through thin views,
        # and the "dict" backend keeps the original per-node object
        # graphs, built component-wise, as the differential oracle (the
        # two paths are asserted byte-identical in
        # ``tests/test_substrate_build.py``).
        self._codec = LabelCodec(topology)
        if (
            get_backend() == "array"
            and get_engine() == "csr"
            and vicinities is None
        ):
            self._tables: SubstrateTables | None = build_substrate_tables(
                topology,
                self._landmarks,
                codec=self._codec,
                vicinity_scale=vicinity_scale,
                workers=workers,
                threads=threads,
                storage=storage,
                vicinity_storage=vicinity_storage,
                persist=persist_storage,
                stats=build_stats,
                progress=build_progress,
            )
        elif get_backend() == "array":
            spts = landmark_spts(topology, self._landmarks)
            closest_rows = closest_landmarks(spts, n)
            built_vicinities: Sequence[VicinityTable] = (
                list(vicinities)
                if vicinities is not None
                else compute_vicinities(
                    topology, scale=vicinity_scale, workers=workers
                )
            )
            if len(built_vicinities) != n:
                raise ValueError("vicinities must cover every node")
            self._tables = SubstrateTables.from_components(
                n, spts, closest_rows, built_vicinities, self._codec
            )
        else:
            self._tables = None

        if self._tables is not None:
            self._landmark_spts = self._tables.spt_rows()
            self._closest_landmark, self._closest_landmark_distance = (
                self._tables.closest_rows()
            )
            self._vicinities = self._tables.vicinity_views()
            self._addresses: list[Address] = self._tables.addresses()
        else:
            spts = landmark_spts(topology, self._landmarks)
            closest_rows = closest_landmarks(spts, n)
            built_vicinities = (
                list(vicinities)
                if vicinities is not None
                else compute_vicinities(
                    topology, scale=vicinity_scale, workers=workers
                )
            )
            if len(built_vicinities) != n:
                raise ValueError("vicinities must cover every node")
            self._landmark_spts = spts
            self._closest_landmark, self._closest_landmark_distance = closest_rows
            self._vicinities = list(built_vicinities)
            # Addresses: explicit route from the closest landmark down its
            # SPT.
            self._addresses = []
            for node in range(n):
                landmark = self._closest_landmark[node]
                tree_path = _extract_path_dense(
                    spts[landmark][1], landmark, node
                )
                route = ExplicitRoute.from_path(self._codec, tree_path)
                self._addresses.append(
                    Address(node=node, landmark=landmark, route=route)
                )
        self._landmark_distances = {
            landmark: rows[0] for landmark, rows in self._landmark_spts.items()
        }
        self._landmark_parents = {
            landmark: rows[1] for landmark, rows in self._landmark_spts.items()
        }

        # Name-resolution database over the landmarks.
        self._resolution = LandmarkResolutionDatabase(
            self._landmarks, virtual_nodes=resolution_virtual_nodes
        )
        self._resolution.populate(self._names, self._addresses)

    # -- accessors used by Disco and the experiments ------------------------

    @property
    def tables(self) -> SubstrateTables | None:
        """The flat substrate slabs backing this scheme's state.

        ``None`` on the "dict" backend (the differential oracle).  Treat as
        read-only; the cache layer persists and shares these slabs as raw
        buffers, and pool workers may attach them zero-copy.
        """
        return self._tables

    @property
    def landmarks(self) -> set[int]:
        """The landmark set (a copy)."""
        return set(self._landmarks)

    @property
    def vicinities(self) -> list[VicinityTable]:
        """Per-node vicinity tables (indexed by node id)."""
        return self._vicinities

    @property
    def landmark_spts(self) -> dict[int, tuple[list[float], list[int]]]:
        """Dense landmark SPT rows, keyed by landmark.

        Exposed so that another scheme built on the same landmark set (S4 in
        :class:`~repro.staticsim.simulation.StaticSimulation`) can reuse the
        trees instead of recomputing them.  Treat as read-only.
        """
        return self._landmark_spts

    @property
    def closest_landmark_rows(self) -> tuple[list[int], list[float]]:
        """Per-node closest landmark and its distance, indexed by node id.

        Shared with sibling schemes like :attr:`landmark_spts`; read-only.
        """
        return self._closest_landmark, self._closest_landmark_distance

    @property
    def addresses(self) -> list[Address]:
        """Per-node addresses (indexed by node id)."""
        return self._addresses

    @property
    def names(self) -> list[FlatName]:
        """Per-node flat names (indexed by node id)."""
        return self._names

    @property
    def codec(self) -> LabelCodec:
        """The label codec defining per-hop forwarding labels."""
        return self._codec

    @property
    def resolution_database(self) -> LandmarkResolutionDatabase:
        """The landmark-hosted name-resolution database."""
        return self._resolution

    @property
    def shortcut_mode(self) -> ShortcutMode:
        """The shortcutting heuristic in force."""
        return self._shortcut_mode

    @shortcut_mode.setter
    def shortcut_mode(self, mode: ShortcutMode) -> None:
        """Switch the shortcutting heuristic (routing-time only; no rebuild)."""
        if not isinstance(mode, ShortcutMode):
            raise TypeError(f"expected ShortcutMode, got {type(mode).__name__}")
        self._shortcut_mode = mode

    def closest_landmark(self, node: int) -> int:
        """Return ℓv, the landmark closest to ``node``."""
        return self._closest_landmark[node]

    def address_of(self, node: int) -> Address:
        """Return the address of ``node``."""
        return self._addresses[node]

    def landmark_distance(self, landmark: int, node: int) -> float:
        """Return d(landmark, node).

        Raises
        ------
        KeyError
            If ``landmark`` is not a landmark.
        """
        if landmark not in self._landmark_distances:
            raise KeyError(f"{landmark} is not a landmark")
        return self._landmark_distances[landmark][node]

    def landmark_path(self, landmark: int, node: int) -> list[int]:
        """Return the landmark's SPT path from ``landmark`` to ``node``."""
        if landmark not in self._landmark_parents:
            raise KeyError(f"{landmark} is not a landmark")
        return _extract_path_dense(self._landmark_parents[landmark], landmark, node)

    # -- state accounting ---------------------------------------------------

    def label_mapping_entries(self, node: int) -> int:
        """Forwarding-label mapping entries at ``node``.

        "The node really needs to remember the mapping only for those
        forwarding labels that will actually be used; these will be for the
        neighbors leading along shortest paths to landmarks or nodes in the
        node's vicinity" (§4.5 Theorem 2).
        """
        used_neighbors: set[int] = set()
        for landmark in self._landmarks:
            if landmark == node:
                continue
            parent = self._landmark_parents[landmark][node]
            if parent >= 0:
                used_neighbors.add(parent)
        vicinity = self._vicinities[node]
        for member, parent in vicinity.predecessors.items():
            if parent == node:
                used_neighbors.add(member)
        return len(used_neighbors)

    def resolution_entries(self, node: int) -> int:
        """Name-resolution records hosted at ``node`` (0 for non-landmarks)."""
        return self._resolution.entries_at(node)

    def state_entries(self, node: int) -> int:
        """Data-plane entries: landmarks + vicinity + label mappings + resolution."""
        self._check_endpoints(node, node)
        vicinity = self._vicinities[node]
        landmark_entries = len(self._landmarks) - (1 if node in self._landmarks else 0)
        vicinity_entries = len(vicinity) - 1  # exclude the node itself
        return (
            landmark_entries
            + vicinity_entries
            + self.label_mapping_entries(node)
            + self.resolution_entries(node)
        )

    def state_bytes(self, node: int, *, name_bytes: int = NAME_BYTES_IPV4) -> float:
        """Data-plane state at ``node`` in bytes (see Fig. 7).

        Each landmark / vicinity forwarding entry costs one name plus a
        one-byte next-hop label; label-mapping entries cost two bytes (label
        plus interface); each resolution record costs the destination name
        plus its full address (landmark name plus explicit-route labels).
        """
        vicinity = self._vicinities[node]
        landmark_entries = len(self._landmarks) - (1 if node in self._landmarks else 0)
        vicinity_entries = len(vicinity) - 1
        forwarding_bytes = (landmark_entries + vicinity_entries) * (name_bytes + 1.0)
        label_bytes = self.label_mapping_entries(node) * 2.0
        resolution_bytes = self._resolution.entry_bytes_at(node, name_bytes=name_bytes)
        return forwarding_bytes + label_bytes + resolution_bytes

    def state_profile(
        self, nodes: Sequence[int]
    ) -> tuple[list[int], list[float], list[float]]:
        """Batched state accounting: ``(entries, IPv4 bytes, IPv6 bytes)``.

        Mirrors :meth:`state_entries` / :meth:`state_bytes` value for
        value, computing the shared per-node intermediates (label-mapping
        counts) once instead of once per metric.  Used by
        :func:`repro.metrics.state.measure_state`.
        """
        landmarks = self._landmarks
        num_landmarks = len(landmarks)
        parents = self._landmark_parents
        entries_out: list[int] = []
        bytes_v4: list[float] = []
        bytes_v6: list[float] = []
        for node in nodes:
            self._check_endpoints(node, node)
            used_neighbors: set[int] = set()
            for landmark in landmarks:
                if landmark == node:
                    continue
                parent = parents[landmark][node]
                if parent >= 0:
                    used_neighbors.add(parent)
            vicinity = self._vicinities[node]
            for member, parent in vicinity.predecessors.items():
                if parent == node:
                    used_neighbors.add(member)
            label_count = len(used_neighbors)
            landmark_entries = num_landmarks - (1 if node in landmarks else 0)
            vicinity_entries = len(vicinity) - 1
            entries_out.append(
                landmark_entries
                + vicinity_entries
                + label_count
                + self._resolution.entries_at(node)
            )
            for name_bytes, out in (
                (NAME_BYTES_IPV4, bytes_v4),
                (NAME_BYTES_IPV6, bytes_v6),
            ):
                forwarding_bytes = (landmark_entries + vicinity_entries) * (
                    name_bytes + 1.0
                )
                label_bytes = label_count * 2.0
                resolution_bytes = self._resolution.entry_bytes_at(
                    node, name_bytes=name_bytes
                )
                out.append(forwarding_bytes + label_bytes + resolution_bytes)
        return entries_out, bytes_v4, bytes_v6

    # -- routing ------------------------------------------------------------

    def knows_direct_route(self, source: int, target: int) -> bool:
        """True if ``source`` holds a shortest path to ``target`` in its tables."""
        return target in self._landmarks or target in self._vicinities[source]

    def direct_route(self, source: int, target: int) -> list[int]:
        """Return the shortest path ``source`` holds toward ``target``.

        Only valid when :meth:`knows_direct_route` is True.
        """
        if target in self._vicinities[source]:
            return self._vicinities[source].path_to(target)
        if target in self._landmarks:
            # Reverse of the landmark's SPT path to the source.
            return list(reversed(self.landmark_path(target, source)))
        raise ValueError(f"{source} holds no direct route to {target}")

    def relay_route(self, source: int, target: int) -> list[int]:
        """Return the raw relay route source ; ℓt ; t (no shortcuts)."""
        landmark = self._closest_landmark[target]
        to_landmark = list(reversed(self.landmark_path(landmark, source)))
        from_landmark = list(self._addresses[target].route.path)
        return to_landmark + from_landmark[1:]

    def compact_route(self, source: int, target: int) -> tuple[list[int], str]:
        """Route using converged NDDisco state, assuming the address is known.

        Returns the path and the mechanism label.
        """
        self._check_endpoints(source, target)
        if source == target:
            return [source], "self"
        if self.knows_direct_route(source, target):
            return self.direct_route(source, target), "direct"
        forward = self.relay_route(source, target)
        reverse = (
            self.relay_route(target, source)
            if self._shortcut_mode.uses_reverse_route
            else None
        )
        path = apply_shortcuts(
            self._topology,
            self._vicinities,
            forward,
            self._shortcut_mode,
            reverse_route=reverse,
        )
        return path, "landmark-relay"

    def first_packet_route(self, source: int, target: int) -> RouteResult:
        """First packet: resolve the name (if configured), then compact-route."""
        self._check_endpoints(source, target)
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        if self.knows_direct_route(source, target):
            return RouteResult(
                path=tuple(self.direct_route(source, target)), mechanism="direct"
            )
        if not self._resolve_first_packet:
            path, mechanism = self.compact_route(source, target)
            return RouteResult(path=tuple(path), mechanism=mechanism)
        resolver = self._resolution.home_landmark(self._names[target])
        to_resolver = list(reversed(self.landmark_path(resolver, source)))
        if resolver == target:
            return RouteResult(path=tuple(to_resolver), mechanism="resolver-is-target")
        onward, _ = self.compact_route(resolver, target)
        full = to_resolver + onward[1:]
        return RouteResult(
            path=tuple(_trim_at_destination(full, target)),
            mechanism="resolve-then-route",
        )

    def later_packet_route(self, source: int, target: int) -> RouteResult:
        """Later packets: handshake gives a shortest path when s ∈ V(t)."""
        self._check_endpoints(source, target)
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        if self.knows_direct_route(source, target):
            return RouteResult(
                path=tuple(self.direct_route(source, target)), mechanism="direct"
            )
        if source in self._vicinities[target]:
            # t knows the shortest path s ; t and informs s (handshake).
            reverse = self._vicinities[target].path_to(source)
            return RouteResult(
                path=tuple(reversed(reverse)), mechanism="handshake"
            )
        path, mechanism = self.compact_route(source, target)
        return RouteResult(path=tuple(path), mechanism=mechanism)


def _extract_path_dense(parents: list[int], root: int, node: int) -> list[int]:
    """Reconstruct the root ; node path from a dense parent list (-1 = none)."""
    if node == root:
        return [root]
    path = [node]
    current = node
    steps = 0
    limit = len(parents)
    while current != root:
        parent = parents[current]
        if parent < 0 or steps > limit:
            raise ValueError(f"node {node} not reachable from root {root}")
        path.append(parent)
        current = parent
        steps += 1
    path.reverse()
    return path


def _trim_at_destination(path: list[int], destination: int) -> list[int]:
    """Cut ``path`` at the first time it reaches ``destination``."""
    index = path.index(destination)
    return path[: index + 1]
