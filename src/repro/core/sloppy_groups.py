"""Sloppy groups: hash-prefix grouping of nodes (§4.4).

"Node v is a member of a 'sloppy group' of nodes that have in common the
first few bits of h(v).  Specifically, let G(v) be the set of nodes w for
which the first k := floor(log2(sqrt(n)/log n)) bits of h(w) match those of
h(v)."

The grouping is *sloppy* because k is computed from each node's own estimate
of n, which may differ slightly across nodes.  The paper leans on two
properties of this definition, both exposed here:

* **Consistency** -- k changes only when the estimate of n changes by a
  constant factor, so churn does not reshuffle groups.
* **Graceful disagreement** -- nodes whose estimates of n are within a factor
  of two disagree by at most one bit of prefix, so there is a "core group"
  G'(v) on which everyone agrees; dissemination over the ring reaches all of
  it.

:class:`SloppyGrouping` captures a converged grouping given (possibly
per-node) estimates of n, and answers the membership and storage questions
the static simulator needs: which addresses does node v store, and which
vicinity member of s belongs to t's group.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.naming.hashspace import HASH_BITS, common_prefix_length, hash_prefix
from repro.naming.names import FlatName
from repro.utils.validation import require_positive

__all__ = ["group_prefix_bits", "SloppyGrouping"]


def group_prefix_bits(estimated_n: float) -> int:
    """Return k = floor(log2(sqrt(n) / log n)) clamped to [0, HASH_BITS].

    For very small n the formula is non-positive; k = 0 then means "a single
    group containing everyone", which is the correct degenerate behaviour
    (every node stores every address, and state is trivially fine at that
    scale).
    """
    require_positive("estimated_n", estimated_n)
    if estimated_n < 4:
        return 0
    value = math.sqrt(estimated_n) / math.log(estimated_n)
    if value <= 1.0:
        return 0
    return min(HASH_BITS, int(math.floor(math.log2(value))))


class SloppyGrouping:
    """A converged sloppy grouping of named nodes.

    Parameters
    ----------
    names:
        Flat names indexed by node id (``names[v]`` is v's name).
    estimated_n:
        Either a single estimate shared by all nodes, or a per-node mapping
        (used by the n-estimate-error experiment, §5.2).  Each node derives
        its own prefix length k from its own estimate.
    """

    def __init__(
        self,
        names: Sequence[FlatName],
        estimated_n: float | Mapping[int, float] | None = None,
    ) -> None:
        if not names:
            raise ValueError("names must be non-empty")
        self._names = list(names)
        self._num_nodes = len(self._names)
        self._hashes = [name.hash_value for name in self._names]
        if estimated_n is None:
            estimates: dict[int, float] = {
                node: float(self._num_nodes) for node in range(self._num_nodes)
            }
        elif isinstance(estimated_n, Mapping):
            estimates = {
                node: float(estimated_n.get(node, self._num_nodes))
                for node in range(self._num_nodes)
            }
        else:
            estimates = {
                node: float(estimated_n) for node in range(self._num_nodes)
            }
        for node, estimate in estimates.items():
            require_positive(f"estimated_n[{node}]", estimate)
        self._estimates = estimates
        self._prefix_bits = {
            node: group_prefix_bits(estimate) for node, estimate in estimates.items()
        }

    # -- basic accessors ---------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the grouping."""
        return self._num_nodes

    def name_of(self, node: int) -> FlatName:
        """Return the flat name of ``node``."""
        return self._names[node]

    def hash_of(self, node: int) -> int:
        """Return the hash-space position of ``node``'s name."""
        return self._hashes[node]

    def prefix_bits_of(self, node: int) -> int:
        """Return the prefix length k that ``node`` uses (from its own n estimate)."""
        return self._prefix_bits[node]

    def estimate_of(self, node: int) -> float:
        """Return the estimate of n that ``node`` holds."""
        return self._estimates[node]

    # -- group membership --------------------------------------------------

    def group_of(self, node: int) -> set[int]:
        """Return G(node): nodes sharing node's first k bits, by node's own k."""
        k = self._prefix_bits[node]
        own_prefix = hash_prefix(self._hashes[node], k)
        return {
            other
            for other in range(self._num_nodes)
            if hash_prefix(self._hashes[other], k) == own_prefix
        }

    def believes_same_group(self, believer: int, other: int) -> bool:
        """Return True if ``believer`` considers ``other`` part of its own group."""
        k = self._prefix_bits[believer]
        return common_prefix_length(
            self._hashes[believer], self._hashes[other]
        ) >= k

    def stores_address_of(self, holder: int, owner: int) -> bool:
        """Return True if ``holder`` stores ``owner``'s address after convergence.

        In the converged state this is the *core-group* condition: the two
        hashes must share at least ``max(k_holder, k_owner)`` bits, so both
        the owner (who originates the announcement) and the holder (who must
        accept and retain it) consider each other group members.  The
        dynamic dissemination simulator verifies this model (§5.2
        static-accuracy experiment).
        """
        if holder == owner:
            return True
        needed = max(self._prefix_bits[holder], self._prefix_bits[owner])
        return common_prefix_length(
            self._hashes[holder], self._hashes[owner]
        ) >= needed

    def stored_addresses(self, holder: int) -> set[int]:
        """Return the set of nodes whose addresses ``holder`` stores."""
        return {
            owner
            for owner in range(self._num_nodes)
            if self.stores_address_of(holder, owner)
        }

    def core_group_of(self, node: int) -> set[int]:
        """Return G'(node): members on which node and the member both agree."""
        return {
            other
            for other in range(self._num_nodes)
            if self.stores_address_of(other, node) and self.stores_address_of(node, other)
        }

    # -- routing support ---------------------------------------------------

    def best_group_contact(
        self,
        target: int,
        candidates: Mapping[int, float],
    ) -> int | None:
        """Pick the vicinity member most likely to know ``target``'s address.

        "s locally computes h(t).  It then examines its vicinity and finds
        the node w in V(s) which has the longest prefix match between h(w)
        and h(t)" (§4.4).  ``candidates`` maps vicinity members to their
        distance from s; the longest prefix match wins, with ties broken by
        smaller distance then smaller node id (a deterministic rendering of
        the paper's "closest node with a long-enough prefix match"
        optimisation).

        Returns None if ``candidates`` is empty.
        """
        if not candidates:
            return None
        target_hash = self._hashes[target]
        best_node: int | None = None
        best_key: tuple[int, float, int] | None = None
        for node, distance in candidates.items():
            match = common_prefix_length(self._hashes[node], target_hash)
            key = (-match, distance, node)
            if best_key is None or key < best_key:
                best_key = key
                best_node = node
        return best_node

    def group_sizes(self) -> dict[int, int]:
        """Return the size of each group keyed by its prefix value.

        Only meaningful when all nodes share one estimate of n (and hence one
        k); with per-node estimates the notion of "the" group is fuzzy, and
        this method uses the majority k.
        """
        ks = sorted(self._prefix_bits.values())
        k = ks[len(ks) // 2]
        sizes: dict[int, int] = {}
        for value in self._hashes:
            prefix = hash_prefix(value, k)
            sizes[prefix] = sizes.get(prefix, 0) + 1
        return sizes
