"""Address dissemination over the overlay (§4.4).

"Within this overlay, we can efficiently disseminate routing state in a
manner very close to a distance vector (DV) routing protocol," with four
differences from standard DV: announcements carry only (name, address); they
are propagated only between nodes that believe each other to be in the same
sloppy group; and -- the key loop-freedom trick -- "node v propagates
advertisements only to those nodes in N(v) ∩ G(v) which would cause the
message to continue in the same direction: that is, announcements received
from an overlay neighbor with higher hash-value are propagated only to
neighbors with lower hash-values, and vice-versa."

:class:`AddressDissemination` simulates that propagation for any set of
originating nodes and reports the quantities the paper studies:

* message counts (total, and per node) -- feeds Fig. 8's Disco overhead and
  the 1-vs-3-finger comparison,
* announcement hop distances (mean / max overlay hops to reach a store) --
  the "average and maximum distances traveled by address announcements were
  5.77 and 24 [1 finger] ... 3.04 and 16 [3 fingers]" measurement,
* coverage -- whether every node that *should* store an address (the
  converged model of :meth:`SloppyGrouping.stores_address_of`) actually
  receives the announcement, which empirically validates the static model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.overlay import DisseminationOverlay
from repro.utils.distributions import summarize

__all__ = ["DisseminationReport", "AddressDissemination"]


@dataclass(frozen=True)
class DisseminationReport:
    """Aggregate results of disseminating announcements from many origins.

    Attributes
    ----------
    total_messages:
        Total overlay messages sent across all announcements.
    messages_per_node:
        Mean messages sent per node.
    mean_hop_distance, max_hop_distance:
        Mean / max overlay-hop distance at which receiving nodes first got an
        announcement.
    coverage:
        Fraction of (origin, intended-store) pairs that the announcement
        actually reached.
    origins:
        Number of origins simulated.
    """

    total_messages: int
    messages_per_node: float
    mean_hop_distance: float
    max_hop_distance: int
    coverage: float
    origins: int


class AddressDissemination:
    """Simulates direction-monotone DV dissemination over the overlay."""

    def __init__(self, overlay: DisseminationOverlay) -> None:
        self._overlay = overlay
        self._grouping = overlay.grouping

    @property
    def overlay(self) -> DisseminationOverlay:
        """The overlay announcements travel over."""
        return self._overlay

    def disseminate_from(
        self, origin: int
    ) -> tuple[dict[int, int], int]:
        """Disseminate ``origin``'s announcement; return (hop distances, messages).

        Returns
        -------
        (reached, messages)
            ``reached`` maps every node that received (and accepted) the
            announcement to the overlay-hop count at which it first arrived;
            the origin itself is included at distance 0.  ``messages`` is the
            number of overlay messages sent.
        """
        grouping = self._grouping
        origin_hash = grouping.hash_of(origin)
        reached: dict[int, int] = {origin: 0}
        messages = 0
        # Each queue item is (node, direction, hops). direction is +1 if the
        # announcement is travelling toward higher hash values, -1 otherwise.
        queue: deque[tuple[int, int, int]] = deque()

        def forward(sender: int, hops: int, direction: int | None) -> int:
            """Send from ``sender`` to eligible neighbors; return messages sent."""
            sent = 0
            for neighbor in self._overlay.group_neighbors(sender):
                neighbor_hash = grouping.hash_of(neighbor)
                sender_hash = grouping.hash_of(sender)
                if neighbor_hash == sender_hash:
                    continue
                step_direction = 1 if neighbor_hash > sender_hash else -1
                if direction is not None and step_direction != direction:
                    continue
                # The neighbor must also consider the *origin* part of its
                # group to accept and re-propagate the announcement.
                sent += 1
                if not grouping.believes_same_group(neighbor, origin):
                    continue
                if neighbor not in reached or reached[neighbor] > hops + 1:
                    if neighbor not in reached:
                        queue.append((neighbor, step_direction, hops + 1))
                    reached[neighbor] = min(reached.get(neighbor, hops + 1), hops + 1)
            return sent

        # The origin sends in both directions.
        messages += forward(origin, 0, None)
        while queue:
            node, direction, hops = queue.popleft()
            messages += forward(node, hops, direction)
        # Remove nodes that received copies but do not themselves consider the
        # origin a group member (they neither store nor re-propagate), except
        # they were never added to `reached` in the first place; the origin
        # hash bookkeeping above already enforces this.
        del origin_hash
        return reached, messages

    def run(
        self, origins: Iterable[int] | None = None
    ) -> DisseminationReport:
        """Disseminate announcements from ``origins`` (default: every node)."""
        grouping = self._grouping
        n = grouping.num_nodes
        origin_list: Sequence[int] = (
            list(origins) if origins is not None else list(range(n))
        )
        if not origin_list:
            raise ValueError("origins must be non-empty")
        total_messages = 0
        hop_samples: list[int] = []
        intended = 0
        covered = 0
        for origin in origin_list:
            reached, messages = self.disseminate_from(origin)
            total_messages += messages
            hop_samples.extend(h for node, h in reached.items() if node != origin)
            for holder in range(n):
                if holder == origin:
                    continue
                if grouping.stores_address_of(holder, origin):
                    intended += 1
                    if holder in reached:
                        covered += 1
        hop_summary = summarize(hop_samples) if hop_samples else None
        return DisseminationReport(
            total_messages=total_messages,
            messages_per_node=total_messages / n,
            mean_hop_distance=hop_summary.mean if hop_summary else 0.0,
            max_hop_distance=int(hop_summary.maximum) if hop_summary else 0,
            coverage=(covered / intended) if intended else 1.0,
            origins=len(origin_list),
        )

    def stored_addresses_from_dissemination(self, origin: int) -> set[int]:
        """Return the nodes that end up storing ``origin``'s address.

        A node stores the announcement if it received it and believes the
        origin belongs to its own group.
        """
        reached, _ = self.disseminate_from(origin)
        return {
            node
            for node in reached
            if self._grouping.believes_same_group(node, origin)
        }
