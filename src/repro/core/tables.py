"""Flat array-backed routing-scheme state (the substrate tables layer).

The converged landmark substrate that NDDisco builds (and Disco embeds and
S4 borrows) was historically held as per-node Python object graphs:
``dict[int, list[float]]`` landmark tables, one ``dict`` pair per vicinity,
one boxed float per distance.  This module stores the same state as
row-major typed slabs -- ``array('d')`` / ``array('q')`` -- exactly like the
CSR snapshot did for the graph itself in PR 1:

* **Landmark SPT slabs** -- distances and parents for every landmark,
  ``|L| x n`` row-major (row order = ascending landmark id).
* **Closest-landmark rows** -- per-node closest landmark and its distance.
* **Vicinity table** (:class:`NodeSearchTables`) -- CSR-style offsets over
  a flat member slab, with aligned distance and parent slabs, members kept
  in Dijkstra settle order so iteration matches the historical dicts.
* **Address payloads** -- per-node explicit-route node paths, labels, and
  bit sizes as CSR slabs.

The dict-shaped accessors the rest of the system consumes stay available as
thin views (:class:`Row`, :class:`SearchMap`, :class:`VicinityView`), so the
public scheme API and every experiment output are byte-identical to the
dict implementation -- which lives on behind ``use_backend("dict")`` as the
differential oracle, mirroring ``engine.use_engine("reference")`` for the
kernels.

Because the slabs are plain buffers they also serialize as raw bytes
(:meth:`SubstrateTables.__getstate__`), deduplicating equal floats by
construction, and publish zero-copy into one shared-memory segment
(:class:`SharedTables`) that pool workers attach with
:meth:`SubstrateTables.from_shared` instead of unpickling private copies.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
from array import array
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

__all__ = [
    "NodeSearchTables",
    "Row",
    "SearchMap",
    "SharedTables",
    "SharedTablesHandle",
    "SlabArena",
    "SubstrateTables",
    "VicinityView",
    "SLAB_SCHEMA",
    "get_backend",
    "use_backend",
]

#: On-disk raw-slab layout version (``save_slabs`` / ``from_mmap``): a
#: directory holding ``manifest.json`` plus one little-endian 8-byte-item
#: ``<slab name>.bin`` file per slab.
SLAB_SCHEMA = "repro-tables-slabs/v1"

#: Backends: "array" (slab-backed, the default) and "dict" (the historical
#: per-node object graphs, kept as the differential oracle).
_BACKENDS = ("array", "dict")

_BACKEND: str | None = None


def get_backend() -> str:
    """The active scheme-state backend ("array" or "dict").

    Resolved once from ``REPRO_TABLES`` (default ``array``); switch at
    runtime with :func:`use_backend`.
    """
    global _BACKEND
    if _BACKEND is None:
        _BACKEND = os.environ.get("REPRO_TABLES", "array").strip().lower()
    if _BACKEND not in _BACKENDS:
        raise ValueError(
            f"unknown tables backend {_BACKEND!r}; expected one of {_BACKENDS}"
        )
    return _BACKEND


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily select a scheme-state backend.

    >>> with use_backend("dict") as active:
    ...     active
    'dict'
    """
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown tables backend {name!r}; expected one of {_BACKENDS}"
        )
    global _BACKEND
    previous = get_backend()
    _BACKEND = name
    try:
        yield name
    finally:
        _BACKEND = previous


class Row:
    """Read-only, list-shaped view of one row of a slab.

    Indexing, ``len``, iteration, ``reversed``, slicing (returns a list),
    and element-wise equality against any sequence all behave like the
    dense ``list`` rows they replace.  Pickling reduces to the owning
    tables object plus coordinates, so every pickle of a substrate carries
    each slab's bytes exactly once no matter how many rows view it.
    """

    __slots__ = ("_owner", "_slot", "_start", "_stop", "_view")

    def __init__(self, owner: object, slot: str, start: int, stop: int) -> None:
        self._owner = owner
        self._slot = slot
        self._start = start
        self._stop = stop
        self._view = memoryview(getattr(owner, slot))[start:stop]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._view[index].tolist()
        return self._view[index]

    def __len__(self) -> int:
        return len(self._view)

    def __iter__(self):
        return iter(self._view)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            other = other._view
        try:
            length = len(other)  # type: ignore[arg-type]
        except TypeError:
            return NotImplemented
        if len(self._view) != length:
            return False
        view = self._view
        return all(view[i] == other[i] for i in range(length))  # type: ignore[index]

    __hash__ = None  # type: ignore[assignment]

    def tolist(self) -> list:
        """Materialize the row as a plain list."""
        return self._view.tolist()

    def __reduce__(self):
        return (Row, (self._owner, self._slot, self._start, self._stop))

    def __repr__(self) -> str:
        return (
            f"Row({type(self._owner).__name__}.{self._slot}"
            f"[{self._start}:{self._stop}])"
        )


class SearchMap:
    """Dict-shaped read-only view of one node's truncated-search row.

    Maps member node id -> value (distance or parent) over the slab range
    ``[lo, hi)`` of a :class:`NodeSearchTables`.  Iteration preserves the
    Dijkstra settle order the historical dicts had; membership and lookup
    go through the table's lazy per-node position index.
    """

    __slots__ = ("_table", "_node", "_slot", "_lo", "_hi")

    def __init__(
        self, table: "NodeSearchTables", node: int, slot: str, lo: int, hi: int
    ) -> None:
        self._table = table
        self._node = node
        self._slot = slot
        self._lo = lo
        self._hi = hi

    def _position(self, key: object) -> int | None:
        if type(key) is not int:
            if not isinstance(key, int):
                return None
            key = int(key)
        position = self._table._index(self._node).get(key)
        if position is None or not self._lo <= position < self._hi:
            return None
        return position

    def __contains__(self, key: object) -> bool:
        return self._position(key) is not None

    def __getitem__(self, key: int):
        position = self._position(key)
        if position is None:
            raise KeyError(key)
        return getattr(self._table, self._slot)[position]

    def get(self, key: int, default=None):
        position = self._position(key)
        if position is None:
            return default
        return getattr(self._table, self._slot)[position]

    def __len__(self) -> int:
        return self._hi - self._lo

    def __iter__(self):
        return iter(memoryview(self._table.members)[self._lo : self._hi])

    def keys(self):
        return memoryview(self._table.members)[self._lo : self._hi].tolist()

    def values(self):
        return memoryview(getattr(self._table, self._slot))[
            self._lo : self._hi
        ].tolist()

    def items(self):
        members = memoryview(self._table.members)[self._lo : self._hi]
        values = memoryview(getattr(self._table, self._slot))[
            self._lo : self._hi
        ]
        return zip(members.tolist(), values.tolist())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SearchMap):
            other = dict(other.items())
        if not isinstance(other, Mapping):
            return NotImplemented
        if len(other) != len(self):
            return False
        return all(
            key in other and other[key] == value for key, value in self.items()
        )

    __hash__ = None  # type: ignore[assignment]

    def __reduce__(self):
        return (
            SearchMap,
            (self._table, self._node, self._slot, self._lo, self._hi),
        )

    def __repr__(self) -> str:
        return f"SearchMap(node={self._node}, {self._slot}, n={len(self)})"


class NodeSearchTables:
    """Per-node truncated-search results as CSR slabs.

    One row per node, members in settle order (``members[offset[v]]`` is
    ``v`` itself).  Backs both the NDDisco vicinities and the S4 reverse
    clusters ("balls"); :meth:`distance_maps` / :meth:`predecessor_maps`
    give the dict-shaped views the routing code consumes (the predecessor
    map of a row excludes the owner, matching the historical dicts).
    """

    __slots__ = ("num_nodes", "offsets", "members", "dists", "parents", "_indexes")

    def __init__(
        self,
        num_nodes: int,
        offsets: "array | memoryview",
        members: "array | memoryview",
        dists: "array | memoryview",
        parents: "array | memoryview",
    ) -> None:
        self.num_nodes = num_nodes
        self.offsets = offsets
        self.members = members
        self.dists = dists
        self.parents = parents
        self._indexes: list[dict[int, int] | None] = [None] * num_nodes

    @classmethod
    def from_searches(
        cls,
        searches: Sequence[tuple[Mapping[int, float], Mapping[int, int]]],
    ) -> "NodeSearchTables":
        """Build slabs from per-node ``(distances, predecessors)`` dicts.

        ``searches[v]`` must be rooted at ``v`` (the kernels' dict results:
        distances iterate in settle order starting with the root, the
        predecessor dict covers every settled node but the root).
        """
        offsets = [0]
        members: list[int] = []
        dists: list[float] = []
        parents: list[int] = []
        position = 0
        for node, (distances, predecessors) in enumerate(searches):
            order = list(distances)
            if not order:
                raise ValueError(f"search {node} has no settled members")
            if order[0] != node:
                raise ValueError(
                    f"search {node} does not start at its own node "
                    f"(got {order[0]})"
                )
            members.extend(order)
            dists.extend(distances.values())
            parents.append(-1)
            iterator = iter(order)
            next(iterator)
            parents.extend(predecessors[member] for member in iterator)
            position += len(order)
            offsets.append(position)
        return cls(
            len(searches),
            array("q", offsets),
            array("q", members),
            array("d", dists),
            array("q", parents),
        )

    def with_rows(
        self,
        updates: Mapping[int, tuple[Mapping[int, float], Mapping[int, int]]],
    ) -> "NodeSearchTables":
        """Return new tables with the rows of ``updates`` replaced.

        ``updates`` maps node -> ``(distances, predecessors)`` in the same
        shape :meth:`from_searches` accepts.  Row lengths may change (a
        partition can shrink a truncated search below k), so the slabs are
        rebuilt; untouched rows are copied wholesale via slab slices, never
        re-walked.  The result is bit-identical to :meth:`from_searches`
        over the full updated search set.
        """
        offsets = array("q", [0])
        members = array("q")
        dists = array("d")
        parents = array("q")
        old_members = memoryview(self.members)
        old_dists = memoryview(self.dists)
        old_parents = memoryview(self.parents)
        for node in range(self.num_nodes):
            update = updates.get(node)
            if update is None:
                lo, hi = self.row_bounds(node)
                members.extend(old_members[lo:hi])
                dists.extend(old_dists[lo:hi])
                parents.extend(old_parents[lo:hi])
            else:
                distances, predecessors = update
                order = list(distances)
                if not order or order[0] != node:
                    raise ValueError(
                        f"replacement search {node} does not start at its "
                        "own node"
                    )
                members.extend(order)
                dists.extend(distances.values())
                parents.append(-1)
                iterator = iter(order)
                next(iterator)
                parents.extend(predecessors[member] for member in iterator)
            offsets.append(len(members))
        return NodeSearchTables(self.num_nodes, offsets, members, dists, parents)

    def _index(self, node: int) -> dict[int, int]:
        """member -> absolute slab position for ``node``'s row (lazy)."""
        index = self._indexes[node]
        if index is None:
            lo = self.offsets[node]
            hi = self.offsets[node + 1]
            members = self.members
            index = {members[pos]: pos for pos in range(lo, hi)}
            self._indexes[node] = index
        return index

    def row_bounds(self, node: int) -> tuple[int, int]:
        """The ``[lo, hi)`` slab range of ``node``'s row."""
        return self.offsets[node], self.offsets[node + 1]

    def distance_map(self, node: int) -> SearchMap:
        """Member -> distance view for ``node`` (includes the owner at 0)."""
        lo, hi = self.row_bounds(node)
        return SearchMap(self, node, "dists", lo, hi)

    def predecessor_map(self, node: int) -> SearchMap:
        """Member -> parent view for ``node`` (excludes the owner)."""
        lo, hi = self.row_bounds(node)
        return SearchMap(self, node, "parents", lo + 1, hi)

    def path_from_owner(self, node: int, member: int) -> list[int]:
        """Shortest path ``node .. member`` along the row's search tree."""
        if member == node:
            return [node]
        index = self._index(node)
        position = index.get(member)
        if position is None:
            raise KeyError(member)
        lo = self.offsets[node]
        parents = self.parents
        path = [member]
        current = member
        while current != node:
            pos = index.get(current)
            if pos is None or pos == lo:
                raise ValueError(
                    f"target {member} not reachable from {node} in "
                    "predecessor map"
                )
            current = parents[pos]
            path.append(current)
        path.reverse()
        return path

    def __getstate__(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "slabs": {
                "offsets": ("q", bytes(self.offsets.tobytes())),
                "members": ("q", bytes(self.members.tobytes())),
                "dists": ("d", bytes(self.dists.tobytes())),
                "parents": ("q", bytes(self.parents.tobytes())),
            },
        }

    def __setstate__(self, state: dict) -> None:
        self.num_nodes = state["num_nodes"]
        for slot, (typecode, payload) in state["slabs"].items():
            slab = array(typecode)
            slab.frombytes(payload)
            setattr(self, slot, slab)
        self._indexes = [None] * self.num_nodes


class VicinityView:
    """Slab-backed stand-in for :class:`~repro.core.vicinity.VicinityTable`.

    Duck-types the frozen dataclass the routing and shortcutting code
    consumes: membership, ``len``, ``distances`` / ``predecessors``
    mappings (settle order preserved), ``path_to``, ``distance_to``,
    ``members``, and ``radius``.
    """

    __slots__ = ("_table", "node", "_distances", "_predecessors")

    def __init__(self, table: NodeSearchTables, node: int) -> None:
        self._table = table
        self.node = node
        self._distances: SearchMap | None = None
        self._predecessors: SearchMap | None = None

    @property
    def distances(self) -> SearchMap:
        if self._distances is None:
            self._distances = self._table.distance_map(self.node)
        return self._distances

    @property
    def predecessors(self) -> SearchMap:
        if self._predecessors is None:
            self._predecessors = self._table.predecessor_map(self.node)
        return self._predecessors

    def __contains__(self, other: int) -> bool:
        return other in self.distances

    def __len__(self) -> int:
        lo, hi = self._table.row_bounds(self.node)
        return hi - lo

    @property
    def members(self) -> set[int]:
        """The member node ids (including the owner)."""
        return set(self.distances.keys())

    def distance_to(self, member: int) -> float:
        """Shortest distance from the owner to ``member``."""
        return self.distances[member]

    def path_to(self, member: int) -> list[int]:
        """Shortest path from the owner to ``member`` (owner first)."""
        if member not in self.distances:
            raise KeyError(
                f"node {member} is not in the vicinity of {self.node}"
            )
        return self._table.path_from_owner(self.node, member)

    def radius(self) -> float:
        """Distance to the farthest vicinity member (0.0 for a lone node)."""
        lo, hi = self._table.row_bounds(self.node)
        if lo == hi:
            return 0.0
        return max(memoryview(self._table.dists)[lo:hi])

    def __reduce__(self):
        return (VicinityView, (self._table, self.node))

    def __repr__(self) -> str:
        return f"VicinityView(node={self.node}, size={len(self)})"


#: Slab layout of a SubstrateTables, in publication order:
#: (attribute, typecode).  The vicinity sub-slabs follow when present.
_TABLE_SLOTS: tuple[tuple[str, str], ...] = (
    ("landmark_ids", "q"),
    ("spt_dist", "d"),
    ("spt_parent", "q"),
    ("closest", "q"),
    ("closest_dist", "d"),
    ("addr_offsets", "q"),
    ("addr_path", "q"),
    ("addr_labels", "q"),
    ("addr_bits", "q"),
)

_VICINITY_SLOTS: tuple[tuple[str, str], ...] = (
    ("offsets", "q"),
    ("members", "q"),
    ("dists", "d"),
    ("parents", "q"),
)


class SubstrateTables:
    """The converged landmark substrate as flat typed slabs.

    Built once per scheme from the kernel outputs
    (:meth:`from_components`); every dict-shaped accessor the schemes
    expose is a cached thin view over these slabs.
    """

    __slots__ = (
        "num_nodes",
        "landmark_ids",
        "spt_dist",
        "spt_parent",
        "closest",
        "closest_dist",
        "vicinity",
        "addr_offsets",
        "addr_path",
        "addr_labels",
        "addr_bits",
        "_landmark_pos",
        "_spt_rows",
        "_closest_rows",
        "_vicinity_views",
    )

    def __init__(
        self,
        num_nodes: int,
        landmark_ids,
        spt_dist,
        spt_parent,
        closest,
        closest_dist,
        vicinity: NodeSearchTables | None,
        addr_offsets,
        addr_path,
        addr_labels,
        addr_bits,
    ) -> None:
        self.num_nodes = num_nodes
        self.landmark_ids = landmark_ids
        self.spt_dist = spt_dist
        self.spt_parent = spt_parent
        self.closest = closest
        self.closest_dist = closest_dist
        self.vicinity = vicinity
        self.addr_offsets = addr_offsets
        self.addr_path = addr_path
        self.addr_labels = addr_labels
        self.addr_bits = addr_bits
        self._reset_views()

    def _reset_views(self) -> None:
        self._landmark_pos = {
            landmark: index for index, landmark in enumerate(self.landmark_ids)
        }
        self._spt_rows: dict[int, tuple[Row, Row]] | None = None
        self._closest_rows: tuple[Row, Row] | None = None
        self._vicinity_views: list[VicinityView] | None = None

    @classmethod
    def from_components(
        cls,
        num_nodes: int,
        spts: Mapping[int, tuple[Sequence[float], Sequence[int]]],
        closest_rows: tuple[Sequence[int], Sequence[float]],
        vicinities: Sequence[object] | None,
        codec: "object | None",
    ) -> "SubstrateTables":
        """Assemble slabs from the kernel outputs.

        ``spts`` maps landmark -> dense ``(dist_row, parent_row)``;
        ``closest_rows`` are the per-node closest-landmark rows;
        ``vicinities`` (optional) are per-node tables with ``distances`` /
        ``predecessors`` mappings in settle order; ``codec`` (optional, a
        :class:`~repro.addressing.labels.LabelCodec`) enables the address
        payload slabs.
        """
        landmark_ids = array("q", sorted(spts))
        spt_dist = array("d")
        spt_parent = array("q")
        for landmark in landmark_ids:
            dist_row, parent_row = spts[landmark]
            spt_dist.extend(dist_row)
            spt_parent.extend(parent_row)
        closest = array("q", closest_rows[0])
        closest_dist = array("d", closest_rows[1])

        vicinity = None
        if vicinities is not None:
            vicinity = NodeSearchTables.from_searches(
                [(table.distances, table.predecessors) for table in vicinities]
            )

        addr_offsets = array("q", [0])
        addr_path = array("q")
        addr_labels = array("q")
        addr_bits = array("q")
        tables = cls(
            num_nodes,
            landmark_ids,
            spt_dist,
            spt_parent,
            closest,
            closest_dist,
            vicinity,
            addr_offsets,
            addr_path,
            addr_labels,
            addr_bits,
        )
        if codec is not None and len(closest) == num_nodes:
            position = 0
            for node in range(num_nodes):
                path = tables.spt_path(closest[node], node)
                addr_path.extend(path)
                addr_labels.extend(codec.encode_path(path))
                addr_labels.append(-1)  # row terminator keeps rows aligned
                addr_bits.append(codec.path_bits(path))
                position += len(path)
                addr_offsets.append(position)
        return tables

    # -- landmark SPT views -------------------------------------------------

    @property
    def landmarks(self) -> list[int]:
        """The landmark ids (ascending)."""
        return self.landmark_ids.tolist()

    def spt_rows(self) -> dict[int, tuple[Row, Row]]:
        """Landmark -> ``(dist_row, parent_row)`` views (cached, stable)."""
        if self._spt_rows is None:
            n = self.num_nodes
            self._spt_rows = {
                landmark: (
                    Row(self, "spt_dist", index * n, (index + 1) * n),
                    Row(self, "spt_parent", index * n, (index + 1) * n),
                )
                for index, landmark in enumerate(self.landmark_ids)
            }
        return self._spt_rows

    def closest_rows(self) -> tuple[Row, Row]:
        """Per-node ``(closest landmark, distance)`` row views (cached)."""
        if self._closest_rows is None:
            n = self.num_nodes
            self._closest_rows = (
                Row(self, "closest", 0, n),
                Row(self, "closest_dist", 0, n),
            )
        return self._closest_rows

    def spt_distance(self, landmark: int, node: int) -> float:
        """d(landmark, node) straight from the slab."""
        return self.spt_dist[self._landmark_pos[landmark] * self.num_nodes + node]

    def spt_path(self, landmark: int, node: int) -> list[int]:
        """The landmark's SPT path ``landmark .. node`` from the parent slab."""
        base = self._landmark_pos[landmark] * self.num_nodes
        if node == landmark:
            return [landmark]
        parents = self.spt_parent
        path = [node]
        current = node
        steps = 0
        limit = self.num_nodes
        while current != landmark:
            parent = parents[base + current]
            if parent < 0 or steps > limit:
                raise ValueError(
                    f"node {node} not reachable from root {landmark}"
                )
            path.append(parent)
            current = parent
            steps += 1
        path.reverse()
        return path

    # -- vicinity views -----------------------------------------------------

    def vicinity_views(self) -> list[VicinityView]:
        """Per-node vicinity views (cached, indexed by node id)."""
        if self.vicinity is None:
            raise ValueError("these tables were built without vicinities")
        if self._vicinity_views is None:
            self._vicinity_views = [
                VicinityView(self.vicinity, node)
                for node in range(self.num_nodes)
            ]
        return self._vicinity_views

    # -- address payloads ---------------------------------------------------

    def address_path(self, node: int) -> list[int]:
        """The explicit-route node path of ``node``'s address."""
        lo = self.addr_offsets[node]
        hi = self.addr_offsets[node + 1]
        return memoryview(self.addr_path)[lo:hi].tolist()

    def addresses(self) -> list:
        """Materialize per-node :class:`Address` objects from the slabs."""
        from repro.addressing.address import Address
        from repro.addressing.explicit_route import ExplicitRoute

        offsets = self.addr_offsets
        paths = memoryview(self.addr_path)
        labels = memoryview(self.addr_labels)
        bits = self.addr_bits
        closest = self.closest
        out = []
        for node in range(self.num_nodes):
            lo = offsets[node]
            hi = offsets[node + 1]
            path = tuple(paths[lo:hi].tolist())
            # Label rows carry a -1 terminator so the same offsets slab
            # addresses both (labels per row = path length - 1).
            row_labels = tuple(labels[lo : hi - 1].tolist())
            route = ExplicitRoute(path=path, labels=row_labels, bits=bits[node])
            out.append(
                Address(node=node, landmark=closest[node], route=route)
            )
        return out

    # -- incremental maintenance hooks --------------------------------------
    #
    # The event-driven churn engine (repro.dynamics.engine) repairs its own
    # list-backed state per event; these hooks let a slab snapshot catch up
    # by rewriting only the touched entries/rows.  They assume the dense-row
    # conventions of this class (connected topology: every distance finite),
    # which is exactly the regime the replay-differential tests pin.  See
    # repro.core.substrate_build.apply_maintenance for the driver.

    def patch_spt_row(self, landmark: int, nodes, dist_row, parent_row) -> None:
        """Overwrite entries of one landmark's SPT row in place.

        ``dist_row`` / ``parent_row`` are full dense rows (node-indexed);
        only the entries listed in ``nodes`` are written.  Cached views stay
        valid (they read through the slabs).
        """
        base = self._landmark_pos[landmark] * self.num_nodes
        spt_dist = self.spt_dist
        spt_parent = self.spt_parent
        for node in nodes:
            spt_dist[base + node] = dist_row[node]
            spt_parent[base + node] = parent_row[node]

    def patch_closest(self, nodes, closest_row, closest_dist_row) -> None:
        """Overwrite per-node closest-landmark entries in place."""
        closest = self.closest
        closest_dist = self.closest_dist
        for node in nodes:
            closest[node] = closest_row[node]
            closest_dist[node] = closest_dist_row[node]

    def replace_vicinity(self, vicinity: NodeSearchTables) -> None:
        """Swap in updated vicinity slabs (see NodeSearchTables.with_rows)."""
        self.vicinity = vicinity
        self._vicinity_views = None

    def patch_addresses(self, dirty_nodes, codec) -> None:
        """Rebuild the address slabs after SPT/closest patches.

        Explicit-route *paths* are re-walked (over the already-patched
        parent slabs) only for ``dirty_nodes``; clean rows are copied
        wholesale.  Forwarding *labels and bit sizes* are re-encoded for
        every row with the caller's ``codec``: a label is a neighbor's
        position in its node's adjacency list, so any adjacency change
        renumbers labels on every path through the touched nodes -- ``codec``
        must be built on the mutated topology.
        """
        if len(self.addr_offsets) != self.num_nodes + 1:
            raise ValueError("these tables were built without addresses")
        dirty = set(dirty_nodes)
        old_offsets = self.addr_offsets
        old_path = memoryview(self.addr_path)
        new_offsets = array("q", [0])
        new_path = array("q")
        new_labels = array("q")
        new_bits = array("q")
        for node in range(self.num_nodes):
            if node in dirty:
                path = self.spt_path(self.closest[node], node)
                new_path.extend(path)
            else:
                lo = old_offsets[node]
                hi = old_offsets[node + 1]
                path = old_path[lo:hi].tolist()
                new_path.extend(old_path[lo:hi])
            new_labels.extend(codec.encode_path(path))
            new_labels.append(-1)  # row terminator keeps rows aligned
            new_bits.append(codec.path_bits(path))
            new_offsets.append(len(new_path))
        self.addr_offsets = new_offsets
        self.addr_path = new_path
        self.addr_labels = new_labels
        self.addr_bits = new_bits

    # -- serialization ------------------------------------------------------

    def __getstate__(self) -> dict:
        slabs = {
            slot: (typecode, bytes(memoryview(getattr(self, slot)).tobytes()))
            for slot, typecode in _TABLE_SLOTS
        }
        return {
            "num_nodes": self.num_nodes,
            "slabs": slabs,
            "vicinity": self.vicinity,
        }

    def __setstate__(self, state: dict) -> None:
        self.num_nodes = state["num_nodes"]
        for slot, (typecode, payload) in state["slabs"].items():
            slab = array(typecode)
            slab.frombytes(payload)
            setattr(self, slot, slab)
        self.vicinity = state["vicinity"]
        self._reset_views()

    # -- shared-memory attachment -------------------------------------------

    @classmethod
    def from_shared(cls, handle: "SharedTablesHandle") -> "SubstrateTables":
        """Attach to a published tables segment; zero-copy views, no copy.

        Mirrors :meth:`CSRGraph.from_shared`: the slabs become typed
        ``memoryview`` casts over the shared segment, the mapping stays
        alive exactly as long as the views do, and the publisher keeps
        ownership of the segment's name (attachers never unlink).
        """
        from repro.graphs.csr import _attach_untracked

        shm = _attach_untracked(handle.shm_name)
        buf = shm.buf
        views: dict[str, memoryview] = {}
        offset = 0
        for name, typecode, count in handle.slots:
            end = offset + 8 * count
            views[name] = buf[offset:end].cast(typecode)
            offset = end
        vicinity = None
        if handle.vicinity_nodes is not None:
            vicinity = NodeSearchTables(
                handle.vicinity_nodes,
                views["vicinity.offsets"],
                views["vicinity.members"],
                views["vicinity.dists"],
                views["vicinity.parents"],
            )
        tables = cls(
            handle.num_nodes,
            views["landmark_ids"],
            views["spt_dist"],
            views["spt_parent"],
            views["closest"],
            views["closest_dist"],
            vicinity,
            views["addr_offsets"],
            views["addr_path"],
            views["addr_labels"],
            views["addr_bits"],
        )
        # Hand lifetime management to the views (see CSRGraph.from_shared):
        # the last live view unmaps the segment, and close() only drops the
        # file descriptor.
        shm._buf = None
        shm._mmap = None
        shm.close()
        return tables

    # -- raw-slab persistence (mmap attach) ----------------------------------

    def slab_items(self) -> list[tuple[str, str, object]]:
        """Every slab as ``(name, typecode, buffer)`` in publication order.

        Vicinity sub-slabs are named ``vicinity.<slot>`` and follow the
        table slots, matching :class:`SharedTables`' segment layout and the
        on-disk slab-directory layout.
        """
        slabs: list[tuple[str, str, object]] = [
            (slot, typecode, getattr(self, slot))
            for slot, typecode in _TABLE_SLOTS
        ]
        if self.vicinity is not None:
            slabs.extend(
                (f"vicinity.{slot}", typecode, getattr(self.vicinity, slot))
                for slot, typecode in _VICINITY_SLOTS
            )
        return slabs

    def slab_bytes(self) -> int:
        """Total raw slab payload in bytes (every item is 8 bytes)."""
        return sum(8 * len(slab) for _, _, slab in self.slab_items())

    def save_slabs(
        self, path: "str | os.PathLike", *, skip: "set[str] | None" = None
    ) -> str:
        """Write the tables as a raw slab directory (see :data:`SLAB_SCHEMA`).

        The directory is mmap-attachable with :meth:`from_mmap` -- the
        natural format for substrates larger than RAM, and the format the
        artifact cache stores big ``tables`` artifacts in.  ``skip`` names
        slabs whose ``.bin`` files already hold the final content (the
        out-of-core build packs the big slabs straight into those files and
        only the small slabs plus the manifest remain to be written).
        Returns the directory path.
        """
        path = os.fspath(path)
        os.makedirs(path, exist_ok=True)
        slabs = self.slab_items()
        for name, _typecode, slab in slabs:
            if skip and name in skip:
                continue
            target = os.path.join(path, f"{name}.bin")
            scratch = target + ".tmp"
            with open(scratch, "wb") as handle:
                # write() consumes the buffer directly -- no bytes copy, so
                # slabs larger than RAM stream straight from their mmap.
                handle.write(memoryview(slab))
            os.replace(scratch, target)
        manifest = {
            "schema": SLAB_SCHEMA,
            "num_nodes": self.num_nodes,
            "vicinity_nodes": (
                self.vicinity.num_nodes if self.vicinity is not None else None
            ),
            "slots": [
                [name, typecode, len(slab)] for name, typecode, slab in slabs
            ],
        }
        manifest_path = os.path.join(path, "manifest.json")
        scratch = manifest_path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
        os.replace(scratch, manifest_path)
        return path

    @classmethod
    def from_mmap(cls, path: "str | os.PathLike") -> "SubstrateTables":
        """Attach to a raw slab directory written by :meth:`save_slabs`.

        Mirrors :meth:`from_shared`, with files instead of a shared-memory
        segment: every slab becomes a typed ``memoryview`` cast over a
        read-only ``mmap`` of its ``.bin`` file, so attaching is O(1) in
        the substrate size and the resident set grows only with the pages
        actually touched -- substrates larger than RAM stay usable, and
        concurrent attachers (e.g. scenario-shard workers) share one page
        cache instead of private copies.  Each mapping stays alive exactly
        as long as its views do.
        """
        path = os.fspath(path)
        with open(os.path.join(path, "manifest.json"), encoding="utf-8") as f:
            manifest = json.load(f)
        if manifest.get("schema") != SLAB_SCHEMA:
            raise ValueError(
                f"unsupported slab schema {manifest.get('schema')!r} in "
                f"{path} (expected {SLAB_SCHEMA})"
            )
        views: dict[str, memoryview] = {}
        for name, typecode, count in manifest["slots"]:
            views[name] = _mmap_slab_file(
                os.path.join(path, f"{name}.bin"), typecode, count
            )
        vicinity = None
        if manifest["vicinity_nodes"] is not None:
            vicinity = NodeSearchTables(
                manifest["vicinity_nodes"],
                views["vicinity.offsets"],
                views["vicinity.members"],
                views["vicinity.dists"],
                views["vicinity.parents"],
            )
        return cls(
            manifest["num_nodes"],
            views["landmark_ids"],
            views["spt_dist"],
            views["spt_parent"],
            views["closest"],
            views["closest_dist"],
            vicinity,
            views["addr_offsets"],
            views["addr_path"],
            views["addr_labels"],
            views["addr_bits"],
        )


def _mmap_slab_file(path: str, typecode: str, count: int) -> memoryview:
    """Read-only typed view over one slab file (the view owns the mapping)."""
    if count == 0:
        return memoryview(b"").cast(typecode)
    expected = 8 * count
    size = os.path.getsize(path)
    if size != expected:
        raise ValueError(
            f"slab file {path} holds {size} bytes, manifest expects {expected}"
        )
    with open(path, "rb") as handle:
        mapped = _mmap.mmap(handle.fileno(), expected, access=_mmap.ACCESS_READ)
    # The cast memoryview keeps the mapping alive via the buffer protocol;
    # dropping the last view unmaps it.
    return memoryview(mapped).cast(typecode)


@dataclass(frozen=True)
class SharedTablesHandle:
    """Picklable description of a published :class:`SubstrateTables`.

    ``slots`` lists every slab in segment order as
    ``(name, typecode, item_count)``; ``vicinity_nodes`` is the vicinity
    table's node count (``None`` when the tables carry no vicinities).
    """

    shm_name: str
    num_nodes: int
    vicinity_nodes: int | None
    slots: tuple[tuple[str, str, int], ...]


class SharedTables:
    """Publish one immutable :class:`SubstrateTables` in shared memory.

    All slabs are packed back to back (every item is 8 bytes, so the
    layout in :attr:`SharedTablesHandle.slots` is self-describing).  The
    publisher owns the segment's lifetime: call :meth:`close` (or use as a
    context manager) once the consumers are done; attachers' views stay
    valid until they drop them, exactly like :class:`SharedCSR`.
    """

    def __init__(self, tables: SubstrateTables) -> None:
        from multiprocessing import shared_memory

        slabs: list[tuple[str, str, object]] = [
            (slot, typecode, getattr(tables, slot))
            for slot, typecode in _TABLE_SLOTS
        ]
        vicinity_nodes = None
        if tables.vicinity is not None:
            vicinity_nodes = tables.vicinity.num_nodes
            slabs.extend(
                (f"vicinity.{slot}", typecode, getattr(tables.vicinity, slot))
                for slot, typecode in _VICINITY_SLOTS
            )
        slots = tuple(
            (name, typecode, len(slab)) for name, typecode, slab in slabs
        )
        total = sum(8 * count for _, _, count in slots)
        self._shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        buf = self._shm.buf
        offset = 0
        for (name, typecode, count), (_, _, slab) in zip(slots, slabs):
            end = offset + 8 * count
            if count:
                buf[offset:end].cast(typecode)[:] = slab
            offset = end
        self.handle = SharedTablesHandle(
            shm_name=self._shm.name,
            num_nodes=tables.num_nodes,
            vicinity_nodes=vicinity_nodes,
            slots=slots,
        )

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None

    def __enter__(self) -> "SharedTables":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SlabArena:
    """Writable slab allocator for the slab-direct substrate build.

    Three storage modes, selected by ``storage``:

    * ``None`` / ``"array"`` -- plain ``array`` slabs in RAM (the default;
      what :meth:`SubstrateTables.from_components` has always produced).
    * ``"mmap"`` -- anonymous ``mmap`` slabs: still RAM, but page-aligned
      and returned to the OS as whole pages when dropped, which keeps the
      build's peak footprint flat for the big SPT / vicinity slabs.
    * a directory path -- file-backed ``mmap`` slabs named
      ``<slab name>.bin`` inside the directory, i.e. the build packs
      straight into the :data:`SLAB_SCHEMA` on-disk layout and the finished
      directory only needs the small slabs and the manifest
      (:meth:`SubstrateTables.save_slabs` with ``skip=arena.file_slabs``)
      to become mmap-attachable.  This is the out-of-core mode: slabs
      larger than RAM spill to disk through the page cache.

    Buffers returned by :meth:`alloc` are writable (``array`` objects or
    ``memoryview`` casts of the mapping).  :meth:`trim` shrinks a slab
    whose final fill fell short of its preallocated capacity (disconnected
    truncated searches); callers must drop every view of the slab first.
    """

    def __init__(self, storage: "str | os.PathLike | None" = None) -> None:
        if storage is None or storage == "array":
            self.mode = "array"
            self.root: str | None = None
        elif storage == "mmap":
            self.mode = "mmap"
            self.root = None
        else:
            self.mode = "dir"
            self.root = os.fspath(storage)
            os.makedirs(self.root, exist_ok=True)
        self._slabs: dict[str, tuple[str, object, str | None]] = {}

    @property
    def file_slabs(self) -> set[str]:
        """Names of slabs backed by files in the arena directory."""
        return {
            name
            for name, (_typecode, _backing, path) in self._slabs.items()
            if path is not None
        }

    def alloc(self, name: str, typecode: str, count: int):
        """Allocate a zero-filled slab of ``count`` 8-byte items."""
        if name in self._slabs:
            raise ValueError(f"slab {name!r} already allocated")
        nbytes = 8 * count
        if self.mode == "array" or count == 0:
            backing: object = array(typecode, bytes(nbytes))
            self._slabs[name] = (typecode, backing, None)
            return backing
        if self.mode == "mmap":
            backing = _mmap.mmap(-1, nbytes)
            self._slabs[name] = (typecode, backing, None)
            return memoryview(backing).cast(typecode)
        path = os.path.join(self.root, f"{name}.bin")
        with open(path, "wb") as handle:
            handle.truncate(nbytes)
        with open(path, "r+b") as handle:
            backing = _mmap.mmap(
                handle.fileno(), nbytes, access=_mmap.ACCESS_WRITE
            )
        self._slabs[name] = (typecode, backing, path)
        return memoryview(backing).cast(typecode)

    def view(self, name: str):
        """A fresh writable buffer for an allocated slab."""
        typecode, backing, _path = self._slabs[name]
        if isinstance(backing, array):
            return backing
        return memoryview(backing).cast(typecode)

    def trim(self, name: str, count: int):
        """Shrink ``name`` to ``count`` items; returns the new buffer.

        Every outstanding view of the slab must have been dropped (a live
        export raises ``BufferError``).
        """
        typecode, backing, path = self._slabs[name]
        nbytes = 8 * count
        if isinstance(backing, array):
            del backing[count:]
            return backing
        if len(backing) == nbytes:
            return self.view(name)
        if count == 0:
            backing.close()
            if path is not None:
                os.truncate(path, 0)
            empty = array(typecode)
            self._slabs[name] = (typecode, empty, None)
            return empty
        if path is None:
            backing.resize(nbytes)
            return self.view(name)
        backing.flush()
        backing.close()
        os.truncate(path, nbytes)
        with open(path, "r+b") as handle:
            backing = _mmap.mmap(
                handle.fileno(), nbytes, access=_mmap.ACCESS_WRITE
            )
        self._slabs[name] = (typecode, backing, path)
        return self.view(name)

    def flush(self) -> None:
        """Flush file-backed slabs to disk (no-op for the RAM modes)."""
        for _typecode, backing, path in self._slabs.values():
            if path is not None:
                backing.flush()
