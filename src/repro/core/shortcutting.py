"""Shortcutting heuristics (§4.2, evaluated in Fig. 6).

A compact-routing relay route s ; ℓt ; t can be far from shortest even when
the stretch bound holds; the paper layers cheap heuristics on top:

* **To-Destination** (from S4): "if at any point the packet passes through a
  node which knows a direct path to t, then the direct path is followed."
* **Shorter{ReversePath, ForwardPath}**: "we try both the forward and reverse
  routes s→t and t→s, and use the shorter of these."
* **No Path Knowledge**: To-Destination combined with forward/reverse
  selection -- the default used for all headline results.
* **Up-Down Stream**: "every node along the route [inspects] the route and
  see[s] whether it knows a shorter path to any of the nodes along the route
  (via its vicinity routes)" -- requires carrying the node identifiers of the
  whole route on the first packet.
* **Path Knowledge**: Up-Down-Stream combined with forward/reverse selection.

The heuristics operate purely on information nodes legitimately hold
(vicinity routes), so they never violate the protocol's state bound; they can
only shorten routes, so the stretch guarantees are preserved.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.core.vicinity import VicinityTable
from repro.graphs.shortest_paths import path_length
from repro.graphs.topology import Topology

__all__ = ["ShortcutMode", "apply_shortcuts", "truncate_at_destination"]


class ShortcutMode(enum.Enum):
    """Which shortcutting heuristic to apply to relay routes."""

    NONE = "none"
    TO_DESTINATION = "to-destination"
    SHORTER_REVERSE_FORWARD = "shorter-reverse-forward"
    NO_PATH_KNOWLEDGE = "no-path-knowledge"
    UP_DOWN_STREAM = "up-down-stream"
    PATH_KNOWLEDGE = "path-knowledge"

    @property
    def uses_reverse_route(self) -> bool:
        """True if the mode compares the forward route against the reverse one."""
        return self in (
            ShortcutMode.SHORTER_REVERSE_FORWARD,
            ShortcutMode.NO_PATH_KNOWLEDGE,
            ShortcutMode.PATH_KNOWLEDGE,
        )

    @property
    def per_hop_heuristic(self) -> str:
        """The per-hop transformation: 'none', 'to-destination' or 'up-down-stream'."""
        if self in (ShortcutMode.TO_DESTINATION, ShortcutMode.NO_PATH_KNOWLEDGE):
            return "to-destination"
        if self in (ShortcutMode.UP_DOWN_STREAM, ShortcutMode.PATH_KNOWLEDGE):
            return "up-down-stream"
        return "none"


def truncate_at_destination(route: Sequence[int]) -> list[int]:
    """Cut the route at the first time it touches its own destination.

    A relay route s ; ℓt ; t can pass through t on the way to ℓt; any real
    forwarding plane delivers the packet at that point, so every heuristic
    (including "no shortcutting") applies this truncation.
    """
    if not route:
        return []
    destination = route[-1]
    first_index = route.index(destination)
    return list(route[: first_index + 1])


def _shortcut_to_destination(
    route: Sequence[int], vicinities: Sequence[VicinityTable]
) -> list[int]:
    """Splice in a direct vicinity path from the first node that knows one."""
    if len(route) <= 1:
        return list(route)
    destination = route[-1]
    for index, node in enumerate(route[:-1]):
        if destination in vicinities[node]:
            return list(route[:index]) + vicinities[node].path_to(destination)
    return list(route)


def _shortcut_up_down_stream(
    topology: Topology,
    route: Sequence[int],
    vicinities: Sequence[VicinityTable],
    *,
    max_passes: int = 8,
) -> list[int]:
    """Let every node splice in a shorter vicinity path to any downstream node.

    Scans the route front to back; at each position it looks for the
    *farthest* downstream node it holds a strictly shorter vicinity route to
    and splices that route in.  Repeats until a pass makes no change (the
    total length strictly decreases with every splice, so this terminates;
    ``max_passes`` is a safety valve only).
    """
    current = list(route)
    for _ in range(max_passes):
        changed = False
        index = 0
        while index < len(current) - 1:
            node = current[index]
            vicinity = vicinities[node]
            best_splice: list[int] | None = None
            best_target_index = -1
            # Prefer the farthest downstream improvement.
            for target_index in range(len(current) - 1, index, -1):
                target = current[target_index]
                if target not in vicinity:
                    continue
                segment = current[index : target_index + 1]
                segment_length = path_length(topology, segment)
                if vicinity.distance_to(target) < segment_length:
                    best_splice = vicinity.path_to(target)
                    best_target_index = target_index
                    break
            if best_splice is not None:
                current = (
                    current[:index] + best_splice + current[best_target_index + 1 :]
                )
                changed = True
            index += 1
        if not changed:
            break
    return current


def _apply_per_hop(
    topology: Topology,
    route: Sequence[int],
    vicinities: Sequence[VicinityTable],
    heuristic: str,
) -> list[int]:
    truncated = truncate_at_destination(route)
    if heuristic == "none":
        return truncated
    if heuristic == "to-destination":
        return _shortcut_to_destination(truncated, vicinities)
    if heuristic == "up-down-stream":
        return _shortcut_up_down_stream(topology, truncated, vicinities)
    raise ValueError(f"unknown per-hop heuristic {heuristic!r}")


def apply_shortcuts(
    topology: Topology,
    vicinities: Sequence[VicinityTable],
    forward_route: Sequence[int],
    mode: ShortcutMode,
    *,
    reverse_route: Sequence[int] | None = None,
) -> list[int]:
    """Apply ``mode`` to a relay route and return the resulting path.

    Parameters
    ----------
    forward_route:
        The s → ... → t relay route built by the protocol.
    reverse_route:
        The t → ... → s relay route (as built from t's side), required by the
        modes that compare directions.  It is evaluated with the same per-hop
        heuristic and then reversed, and the shorter of the two directions is
        returned.

    Returns
    -------
    list[int]
        A path from ``forward_route[0]`` to ``forward_route[-1]``.
    """
    if not forward_route:
        raise ValueError("forward_route must be non-empty")
    heuristic = mode.per_hop_heuristic
    forward = _apply_per_hop(topology, forward_route, vicinities, heuristic)
    if not mode.uses_reverse_route:
        return forward
    if reverse_route is None:
        raise ValueError(f"mode {mode.value} requires a reverse_route")
    if reverse_route[0] != forward_route[-1] or reverse_route[-1] != forward_route[0]:
        raise ValueError(
            "reverse_route must run from the destination back to the source"
        )
    reverse = _apply_per_hop(topology, reverse_route, vicinities, heuristic)
    reverse_as_forward = list(reversed(reverse))
    if path_length(topology, reverse_as_forward) < path_length(topology, forward):
        return reverse_as_forward
    return forward
