"""Operator-controlled landmark selection policies (§6 discussion).

The paper's landmarks are chosen uniform-randomly, but §6 points out that the
guarantees "require only that each node has at least one landmark within its
vicinity and that there are Õ(√n) total landmarks.  These rules would permit
an operator to choose landmarks in non-random ways, for example to pick a
more well-provisioned landmark".

This module provides such policies, all returning roughly the same number of
landmarks as the random rule so that state stays Õ(√n):

* :func:`random_landmarks` -- the paper's default (a thin wrapper).
* :func:`degree_based_landmarks` -- pick the highest-degree nodes
  ("well-provisioned" routers); on Internet-like graphs these are the core.
* :func:`spread_landmarks` -- a greedy farthest-point selection that spreads
  landmarks across the topology, minimising the worst node-to-landmark
  distance (useful when vicinity coverage, not provisioning, is the concern).

The landmark-policy ablation experiment compares state and stretch across
these choices.
"""

from __future__ import annotations

import math

from repro.core.landmarks import landmark_probability, select_landmarks
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.topology import Topology
from repro.utils.randomness import make_rng
from repro.utils.validation import require_positive

__all__ = [
    "target_landmark_count",
    "random_landmarks",
    "degree_based_landmarks",
    "spread_landmarks",
]


def target_landmark_count(num_nodes: int) -> int:
    """The Õ(√n) landmark budget: the expected count of the random rule."""
    require_positive("num_nodes", num_nodes)
    return max(1, int(round(num_nodes * landmark_probability(num_nodes))))


def random_landmarks(topology: Topology, *, seed: int = 0) -> set[int]:
    """The paper's default: independent biased coin flips at every node."""
    return select_landmarks(topology.num_nodes, seed=seed)


def degree_based_landmarks(
    topology: Topology, *, count: int | None = None, seed: int = 0
) -> set[int]:
    """Pick the ``count`` highest-degree nodes as landmarks.

    Ties are broken by node id.  ``count`` defaults to the random rule's
    expected landmark count so the Õ(√n) budget is respected.  The ``seed``
    parameter is accepted for interface uniformity with the other policies
    (the selection itself is deterministic).
    """
    del seed
    if count is None:
        count = target_landmark_count(topology.num_nodes)
    require_positive("count", count)
    count = min(count, topology.num_nodes)
    ranked = sorted(
        topology.nodes(), key=lambda node: (-topology.degree(node), node)
    )
    return set(ranked[:count])


def spread_landmarks(
    topology: Topology, *, count: int | None = None, seed: int = 0
) -> set[int]:
    """Greedy farthest-point landmark placement.

    Starts from a random node and repeatedly adds the node farthest (in
    weighted distance) from the current landmark set.  This is the classic
    2-approximation of the k-center objective, so the worst node-to-landmark
    distance is near-minimal for the given budget -- the property that keeps
    "a landmark within every vicinity" comfortable.
    """
    if count is None:
        count = target_landmark_count(topology.num_nodes)
    require_positive("count", count)
    count = min(count, topology.num_nodes)
    rng = make_rng(seed, "spread-landmarks")
    first = rng.randrange(topology.num_nodes)
    landmarks = {first}
    best_distance, _ = dijkstra(topology, first)
    distance_to_set = {
        node: best_distance.get(node, math.inf) for node in topology.nodes()
    }
    while len(landmarks) < count:
        farthest = max(
            (node for node in topology.nodes() if node not in landmarks),
            key=lambda node: (distance_to_set[node], node),
        )
        landmarks.add(farthest)
        new_distances, _ = dijkstra(topology, farthest)
        for node, value in new_distances.items():
            if value < distance_to_set[node]:
                distance_to_set[node] = value
    return landmarks
