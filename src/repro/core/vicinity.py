"""Vicinities: the Θ(√(n log n)) nodes closest to each node (§4.2).

"Each node v learns shortest paths to every node in its vicinity V(v): the
Θ(√(n log n)) nodes closest to v.  These sizes ensure that each node has a
landmark within its vicinity w.h.p."

A :class:`VicinityTable` stores, for one node, the members of its vicinity
with their distances and the predecessor tree of the truncated shortest-path
search, so that the routing code can both test membership (O(1)) and extract
the actual shortest path to any member (for forwarding, shortcutting, and
congestion accounting).

Unlike S4's clusters, the vicinity size is *fixed* by n alone -- "S4 expands
its cluster until it reaches a landmark, while NDDisco and Disco have
vicinities which are fixed at Θ(√(n log n)) nodes" (§5.2) -- which is what
enforces the per-node state bound on any topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.csr import parallel_k_nearest
from repro.graphs.engine import get_engine
from repro.graphs.shortest_paths import dijkstra_k_nearest, extract_path
from repro.graphs.topology import Topology
from repro.utils.validation import require_positive

__all__ = ["vicinity_size", "VicinityTable", "compute_vicinities"]


def vicinity_size(num_nodes: int, *, scale: float = 1.0) -> int:
    """Return the target vicinity size ceil(scale * sqrt(n * ln n)).

    ``scale`` is the constant hidden in the Θ; 1.0 reproduces the paper's
    sizing (with natural log), and the experiments keep it at 1.0.  The size
    is clamped to ``num_nodes`` (a node's vicinity can never exceed the whole
    network) and is at least 1 (the node itself).
    """
    require_positive("num_nodes", num_nodes)
    require_positive("scale", scale)
    if num_nodes == 1:
        return 1
    size = math.ceil(scale * math.sqrt(num_nodes * math.log(num_nodes)))
    return max(1, min(num_nodes, size))


@dataclass(frozen=True)
class VicinityTable:
    """The vicinity of one node: members, distances, and shortest paths.

    Attributes
    ----------
    node:
        The vicinity's owner v.
    distances:
        Mapping member -> shortest distance d(v, member).  Includes v itself
        at distance 0.
    predecessors:
        Predecessor map of the truncated Dijkstra rooted at ``node``; paths
        to members are reconstructed from it on demand.
    """

    node: int
    distances: dict[int, float]
    predecessors: dict[int, int]

    def __contains__(self, other: int) -> bool:
        return other in self.distances

    def __len__(self) -> int:
        return len(self.distances)

    @property
    def members(self) -> set[int]:
        """The member node ids (including the owner)."""
        return set(self.distances)

    def distance_to(self, member: int) -> float:
        """Shortest distance from the owner to ``member``.

        Raises
        ------
        KeyError
            If ``member`` is not in the vicinity.
        """
        return self.distances[member]

    def path_to(self, member: int) -> list[int]:
        """Shortest path from the owner to ``member`` (owner first)."""
        if member not in self.distances:
            raise KeyError(
                f"node {member} is not in the vicinity of {self.node}"
            )
        return extract_path(self.predecessors, self.node, member)

    def radius(self) -> float:
        """Distance to the farthest vicinity member (0.0 for a lone node)."""
        return max(self.distances.values()) if self.distances else 0.0


def compute_vicinity(
    topology: Topology, node: int, size: int
) -> VicinityTable:
    """Compute the vicinity of a single node (``size`` closest nodes)."""
    distances, predecessors = dijkstra_k_nearest(topology, node, size)
    return VicinityTable(node=node, distances=distances, predecessors=predecessors)


def compute_vicinities(
    topology: Topology,
    *,
    size: int | None = None,
    scale: float = 1.0,
    workers: int | None = None,
    threads: int | None = None,
) -> list[VicinityTable]:
    """Compute every node's vicinity.

    Parameters
    ----------
    size:
        Explicit vicinity size; defaults to :func:`vicinity_size` for the
        topology's node count.
    scale:
        Passed to :func:`vicinity_size` when ``size`` is not given.
    workers:
        Opt-in multiprocessing fan-out for the (embarrassingly parallel)
        per-node searches; ``None`` or ``1`` runs the serial batched driver.
        Results are identical either way.
    threads:
        Opt-in in-kernel thread fan-out (see
        :func:`repro.graphs.csr.kernel_threads`): the per-node searches go
        down in one batched C call and, like the worker path, come back as
        slab-backed views.  Ignored when ``workers`` already selected the
        process pool; byte-identical results for any width.

    Returns
    -------
    list
        Indexed by node id.  The serial paths return
        :class:`VicinityTable` objects; the fan-out paths return
        slab-backed :class:`~repro.core.tables.VicinityView` stand-ins
        (same read API) so workers ship four flat typed arrays per chunk
        instead of pickling every vicinity as two dicts, and the parent
        builds one :class:`~repro.core.tables.NodeSearchTables` instead
        of ``2n`` dicts.
    """
    if size is None:
        size = vicinity_size(topology.num_nodes, scale=scale)
    require_positive("size", size)
    if get_engine() == "csr":
        if (workers is not None and workers > 1) or (
            threads is not None and threads != 0
        ):
            from repro.core.tables import NodeSearchTables, VicinityView
            from repro.graphs.csr import parallel_k_nearest_flat

            if workers is not None and workers > 1:
                offsets, members, dists, parents = parallel_k_nearest_flat(
                    topology, size, workers=workers
                )
            else:
                offsets, members, dists, parents = (
                    topology.csr().k_nearest_batch_flat(size, threads=threads)
                )
            tables = NodeSearchTables(
                topology.num_nodes, offsets, members, dists, parents
            )
            return [
                VicinityView(tables, node)
                for node in range(topology.num_nodes)
            ]
        searches = parallel_k_nearest(topology, size, workers=workers or 1)
        return [
            VicinityTable(node=node, distances=distances, predecessors=predecessors)
            for node, (distances, predecessors) in enumerate(searches)
        ]
    return [
        compute_vicinity(topology, node, size) for node in topology.nodes()
    ]
