"""The paper's primary contribution: NDDisco and Disco.

This package implements §4 of the paper:

* :mod:`repro.core.landmarks` -- random landmark selection with churn
  hysteresis (§4.2 "Landmarks").
* :mod:`repro.core.vicinity` -- each node's Θ(√(n log n))-node vicinity
  (§4.2 "Vicinities").
* :mod:`repro.core.nddisco` -- the name-dependent compact routing protocol
  NDDisco: addresses with explicit routes, stretch-5 first packets,
  stretch-3 later packets (§4.2).
* :mod:`repro.core.shortcutting` -- the shortcutting heuristics of §4.2
  (To-Destination, reverse/forward selection, Up-Down-Stream, Path
  Knowledge) evaluated in Fig. 6.
* :mod:`repro.core.resolution` -- the consistent-hashing name-resolution
  database over the landmark set (§4.3).
* :mod:`repro.core.sloppy_groups` -- hash-prefix sloppy groups (§4.4).
* :mod:`repro.core.overlay` -- the Symphony-style dissemination overlay
  (ring + fingers) (§4.4).
* :mod:`repro.core.dissemination` -- the direction-monotone distance-vector
  dissemination of addresses over that overlay (§4.4).
* :mod:`repro.core.disco` -- the full name-independent protocol, stretch-7
  first packets and stretch-3 later packets (§4.4-§4.5).
"""

from repro.core.landmarks import LandmarkSet, select_landmarks, landmark_probability
from repro.core.vicinity import VicinityTable, compute_vicinities, vicinity_size
from repro.core.nddisco import NDDiscoRouting
from repro.core.disco import DiscoRouting
from repro.core.resolution import LandmarkResolutionDatabase
from repro.core.sloppy_groups import SloppyGrouping, group_prefix_bits
from repro.core.overlay import DisseminationOverlay
from repro.core.dissemination import AddressDissemination, DisseminationReport
from repro.core.shortcutting import ShortcutMode, apply_shortcuts

__all__ = [
    "AddressDissemination",
    "DiscoRouting",
    "DisseminationOverlay",
    "DisseminationReport",
    "LandmarkResolutionDatabase",
    "LandmarkSet",
    "NDDiscoRouting",
    "ShortcutMode",
    "SloppyGrouping",
    "VicinityTable",
    "apply_shortcuts",
    "compute_vicinities",
    "group_prefix_bits",
    "landmark_probability",
    "select_landmarks",
    "vicinity_size",
]
