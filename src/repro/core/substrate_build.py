"""Slab-direct, multi-core substrate construction.

:func:`build_substrate_tables` produces the same :class:`SubstrateTables`
that :meth:`SubstrateTables.from_components` assembles from dict-shaped
kernel outputs -- bit-identical, slab for slab -- but writes the kernel
results *straight into* preallocated row-major slabs:

* **Landmark SPT rows** -- each landmark's dense distance / parent rows are
  copied from the search arena into their slab rows with two C-level slice
  assignments (:meth:`CSRGraph.spt_rows_into`); no ``2n`` boxed floats per
  landmark.
* **Closest-landmark rows** -- folded incrementally per SPT row by the
  ``closest_update`` C helper (ascending landmark order, strict ``<``, best
  distance seeded at ``+inf`` -- provably the same tie-break as the
  reference sweep in :func:`repro.core.landmarks.closest_landmarks`).
* **Vicinity CSR** -- per-node truncated searches gathered directly into
  the member / distance / parent slabs (:meth:`CSRGraph.k_nearest_into`);
  the per-node dict pairs and :class:`VicinityTable` objects of the
  historical path are never materialized.
* **Address payloads** -- explicit-route paths walked directly over the
  parent slab and encoded into the address slabs.

A worker fan-out layers on top (``workers=N``): landmark SPTs and per-node
vicinity searches partition contiguously over a :class:`SharedCSR`
publication, workers return flat typed rows (raw bytes over the pipe, no
dict pickling), and the parent performs one deterministic merge -- chunk
results are consumed in task order and written into disjoint slab ranges,
so any worker count produces byte-identical slabs.

Slabs can outgrow RAM: ``storage`` selects where the big slabs live (RAM
arrays, anonymous mmap, or a file-backed slab directory -- see
:class:`repro.core.tables.SlabArena`), and ``vicinity_storage`` overrides
the choice for the vicinity slabs so e.g. a million-node build can put the
SPT slabs on disk and keep the vicinity slabs in anonymous mmap.

The historical dict-mediated path survives behind ``use_backend("dict")``
as the differential oracle; ``tests/test_substrate_build.py`` asserts all
slabs byte-identical across the dict path, the slab-direct serial path,
a 2-worker build, and an mmap re-attach.
"""

from __future__ import annotations

import ctypes
import time
from array import array
from math import inf
from typing import Callable, Iterable, Sequence

from repro.core.tables import NodeSearchTables, SlabArena, SubstrateTables
from repro.core.vicinity import vicinity_size as default_vicinity_size
from repro.graphs import _ckernels
from repro.graphs.csr import (
    _chunks,
    _k_nearest_flat_chunk,
    _pool_args,
    _publish_csr,
    kernel_threads,
)
from repro.graphs.topology import Topology

__all__ = [
    "apply_maintenance",
    "build_substrate_tables",
    "build_ball_tables",
    "cluster_sizes_from_members",
]


def _progress(callback: Callable[[str], None] | None, message: str) -> None:
    if callback is not None:
        callback(message)


def _record(stats: dict | None, key: str, value) -> None:
    if stats is not None:
        stats[key] = value


def _closest_update(
    clib, n: int, dist_row, landmark: int, best_dist, best_landmark, p_best
) -> None:
    """Fold one SPT distance row into the running closest-landmark rows."""
    if clib is not None:
        p_row = (ctypes.c_double * n).from_buffer(dist_row)
        clib.closest_update(n, p_row, landmark, p_best[0], p_best[1])
        return
    for node in range(n):
        d = dist_row[node]
        if d < best_dist[node]:
            best_dist[node] = d
            best_landmark[node] = landmark


def _spt_rows_chunk(sources: list[int]) -> tuple[array, array]:
    """Worker: dense SPT rows for a chunk of landmarks, as two flat arrays."""
    from repro.graphs import csr as csr_module

    graph = csr_module._WORKER_CSR
    assert graph is not None
    n = graph.num_nodes
    dist = array("d", bytes(8 * n * len(sources)))
    parent = array("q", bytes(8 * n * len(sources)))
    dist_mv = memoryview(dist)
    parent_mv = memoryview(parent)
    for index, source in enumerate(sources):
        graph.spt_rows_into(
            source,
            dist_mv[index * n : (index + 1) * n],
            parent_mv[index * n : (index + 1) * n],
        )
    return dist, parent


def build_substrate_tables(
    topology: Topology,
    landmarks: Iterable[int],
    *,
    codec: "object | None" = None,
    size: int | None = None,
    vicinity_scale: float = 1.0,
    include_vicinity: bool = True,
    workers: int | None = None,
    threads: int | None = None,
    storage: "str | None" = None,
    vicinity_storage: "str | None" = None,
    persist: bool = True,
    stats: dict | None = None,
    progress: Callable[[str], None] | None = None,
) -> SubstrateTables:
    """Build converged :class:`SubstrateTables` slab-direct.

    Parameters
    ----------
    topology:
        The network (CSR engine; the reference engine and the dict backend
        keep using the historical component-wise path).
    landmarks:
        The landmark node ids (any iterable; processed in ascending order).
    codec:
        Optional :class:`~repro.addressing.labels.LabelCodec`; enables the
        address payload slabs, exactly as in ``from_components``.
    size / vicinity_scale:
        Vicinity sizing (explicit size wins; default is the paper's
        ``ceil(scale * sqrt(n ln n))``).
    include_vicinity:
        ``False`` builds landmark-only tables (S4's own substrate build).
    workers:
        Opt-in process fan-out for the SPT and vicinity phases; results
        are byte-identical for any worker count.  When given (> 1), it
        takes precedence over ``threads`` -- the ``SharedCSR`` pool is
        kept as the differential oracle for the deterministic merge.
    threads:
        In-kernel thread fan-out for the SPT and vicinity phases -- the
        default parallel path on the C tier.  Each phase is one batched C
        call (``spt_rows_batch`` / ``k_nearest_batch``) fanned over POSIX
        threads with per-thread scratch arenas; ``None`` resolves via
        :func:`repro.graphs.csr.kernel_threads` (``REPRO_KERNEL_THREADS``,
        then the CPU count), ``0`` forces the historical per-source serial
        loop.  Results are byte-identical for every width.
    storage / vicinity_storage:
        Slab placement (see :class:`~repro.core.tables.SlabArena`):
        ``None``/``"array"`` for RAM arrays, ``"mmap"`` for anonymous mmap,
        or a directory path for file-backed slabs.  ``vicinity_storage``
        overrides ``storage`` for the vicinity slabs.
    persist:
        When a directory arena is in play, finish it into a complete
        mmap-attachable slab artifact (write the manifest plus any slabs
        living outside the directory).  Pass ``False`` when slabs are
        deliberately split across media (e.g. SPT slabs on a small disk,
        vicinity in anonymous mmap) and copying the off-disk slabs in
        would not fit.
    stats / progress:
        Optional instrumentation: ``stats`` (a dict) receives per-phase
        wall-clock seconds and slab byte counts; ``progress`` receives
        one human-readable line per phase.
    """
    n = topology.num_nodes
    ordered = sorted(set(landmarks))
    if not ordered:
        raise ValueError("at least one landmark is required")
    if ordered[0] < 0 or ordered[-1] >= n:
        raise ValueError(f"landmark ids must be in [0, {n}); got {ordered[0]}, {ordered[-1]}")
    num_landmarks = len(ordered)
    worker_count = max(1, workers or 1)
    clib = _ckernels.load_kernels()
    csr = topology.csr()
    # The in-kernel batch drivers are the default fan-out on the C tier;
    # an explicit worker pool takes precedence (it is the differential
    # oracle for the deterministic merge), and threads=0 pins the
    # historical per-source serial loop.
    batch_tier = csr.tier == "c" and threads != 0 and worker_count <= 1
    _record(
        stats, "kernel_threads", kernel_threads(threads) if batch_tier else 0
    )

    arena = SlabArena(storage)
    vicinity_arena = (
        arena
        if vicinity_storage is None or vicinity_storage == storage
        else SlabArena(vicinity_storage)
    )

    # -- landmark SPT rows + closest-landmark fold --------------------------
    started = time.perf_counter()
    landmark_ids = array("q", ordered)
    spt_dist = arena.alloc("spt_dist", "d", num_landmarks * n)
    spt_parent = arena.alloc("spt_parent", "q", num_landmarks * n)
    spt_dist_mv = memoryview(spt_dist)
    spt_parent_mv = memoryview(spt_parent)
    closest_dist = array("d", [inf]) * n
    closest = array("q", [-1]) * n
    p_best = (
        (
            (ctypes.c_double * n).from_buffer(closest_dist),
            (ctypes.c_int64 * n).from_buffer(closest),
        )
        if clib is not None and not batch_tier
        else (None, None)
    )

    def fold_row(index: int, landmark: int) -> None:
        _closest_update(
            clib,
            n,
            spt_dist_mv[index * n : (index + 1) * n],
            landmark,
            closest_dist,
            closest,
            p_best,
        )

    if worker_count > 1 and num_landmarks >= 2 * worker_count:
        from multiprocessing import Pool

        chunks = _chunks(ordered, worker_count * 4)
        shared = _publish_csr(topology, None)
        initializer, initargs = _pool_args(topology, None, shared)
        try:
            with Pool(
                worker_count, initializer=initializer, initargs=initargs
            ) as pool:
                index = 0
                # imap preserves task order: chunk c's rows land at row
                # index sum(len(chunks[:c])) regardless of which worker
                # finished first, and the closest fold consumes rows in
                # ascending landmark order -- the deterministic merge.
                for chunk, (dist_block, parent_block) in zip(
                    chunks, pool.imap(_spt_rows_chunk, chunks)
                ):
                    start = index * n
                    end = start + len(chunk) * n
                    spt_dist_mv[start:end] = memoryview(dist_block)
                    spt_parent_mv[start:end] = memoryview(parent_block)
                    for landmark in chunk:
                        fold_row(index, landmark)
                        index += 1
        finally:
            if shared is not None:
                shared.close()
    elif batch_tier:
        # One C call for the whole phase: the landmark loop, the fill
        # repair, and the ascending closest fold all run in-kernel, fanned
        # over the batch threads (byte-identical for every width).
        csr.spt_rows_batch_into(
            landmark_ids,
            spt_dist,
            spt_parent,
            closest_dist=closest_dist,
            closest_landmark=closest,
            threads=threads,
        )
    else:
        for index, landmark in enumerate(ordered):
            csr.spt_rows_into(
                landmark,
                spt_dist_mv[index * n : (index + 1) * n],
                spt_parent_mv[index * n : (index + 1) * n],
            )
            fold_row(index, landmark)
    p_best = None
    elapsed = time.perf_counter() - started
    _record(stats, "spt_seconds", elapsed)
    _progress(
        progress,
        f"landmark SPTs: {num_landmarks} trees x {n} nodes in {elapsed:.1f}s",
    )

    # -- address payloads ---------------------------------------------------
    started = time.perf_counter()
    addr_offsets = array("q", [0])
    addr_path = array("q")
    addr_labels = array("q")
    addr_bits = array("q")
    if codec is not None:
        landmark_pos = {landmark: i for i, landmark in enumerate(ordered)}
        encode_path = codec.encode_path
        path_bits = codec.path_bits
        position = 0
        for node in range(n):
            landmark = closest[node]
            base = landmark_pos[landmark] * n
            path = [node]
            current = node
            steps = 0
            while current != landmark:
                parent = spt_parent_mv[base + current]
                if parent < 0 or steps > n:
                    raise ValueError(
                        f"node {node} not reachable from root {landmark}"
                    )
                path.append(parent)
                current = parent
                steps += 1
            path.reverse()
            addr_path.extend(path)
            addr_labels.extend(encode_path(path))
            addr_labels.append(-1)  # row terminator keeps rows aligned
            addr_bits.append(path_bits(path))
            position += len(path)
            addr_offsets.append(position)
    elapsed = time.perf_counter() - started
    _record(stats, "address_seconds", elapsed)
    if codec is not None:
        _progress(progress, f"addresses: {n} routes in {elapsed:.1f}s")

    # -- vicinity CSR -------------------------------------------------------
    vicinity = None
    if include_vicinity:
        started = time.perf_counter()
        if size is None:
            size = default_vicinity_size(n, scale=vicinity_scale)
        capacity = n * min(size, n)
        offsets = array("q", [0])
        members = vicinity_arena.alloc("vicinity.members", "q", capacity)
        dists = vicinity_arena.alloc("vicinity.dists", "d", capacity)
        parents = vicinity_arena.alloc("vicinity.parents", "q", capacity)
        if worker_count > 1 and n >= 4 * worker_count:
            from multiprocessing import Pool

            members_mv = memoryview(members)
            dists_mv = memoryview(dists)
            parents_mv = memoryview(parents)
            node_chunks = _chunks(list(range(n)), worker_count * 4)
            tasks = [(size, chunk) for chunk in node_chunks]
            shared = _publish_csr(topology, None)
            initializer, initargs = _pool_args(topology, None, shared)
            try:
                with Pool(
                    worker_count, initializer=initializer, initargs=initargs
                ) as pool:
                    position = 0
                    for c_off, c_mem, c_d, c_p in pool.imap(
                        _k_nearest_flat_chunk, tasks
                    ):
                        end = position + len(c_mem)
                        members_mv[position:end] = memoryview(c_mem)
                        dists_mv[position:end] = memoryview(c_d)
                        parents_mv[position:end] = memoryview(c_p)
                        offsets.extend(
                            [position + offset for offset in c_off[1:]]
                        )
                        position = end
            finally:
                if shared is not None:
                    shared.close()
            members_mv.release()
            dists_mv.release()
            parents_mv.release()
        elif batch_tier:
            # One C call for all n searches; source i provisionally owns
            # slab range i * min(size, n) -- exactly this preallocated
            # capacity -- and rows compact left after the thread join,
            # reproducing the serial append layout byte for byte.
            position = csr.k_nearest_batch_into(
                size, range(n), members, dists, parents, offsets,
                threads=threads,
            )
        else:
            position = csr.k_nearest_into(
                size, range(n), members, dists, parents, offsets
            )
        if position < capacity:
            # Disconnected components settled fewer than ``size`` nodes;
            # shrink the preallocated slabs to the actual fill.
            if isinstance(members, memoryview):
                members.release()
                dists.release()
                parents.release()
            members = vicinity_arena.trim("vicinity.members", position)
            dists = vicinity_arena.trim("vicinity.dists", position)
            parents = vicinity_arena.trim("vicinity.parents", position)
        vicinity = NodeSearchTables(n, offsets, members, dists, parents)
        elapsed = time.perf_counter() - started
        _record(stats, "vicinity_seconds", elapsed)
        _progress(
            progress,
            f"vicinities: {n} searches (k={size}) in {elapsed:.1f}s",
        )

    tables = SubstrateTables(
        n,
        landmark_ids,
        spt_dist,
        spt_parent,
        closest,
        closest_dist,
        vicinity,
        addr_offsets,
        addr_path,
        addr_labels,
        addr_bits,
    )
    if persist and (arena.mode == "dir" or vicinity_arena.mode == "dir"):
        # Complete the slab directory: the big slabs already live there as
        # final .bin files, so only the remaining slabs and the manifest are
        # written -- the directory is now mmap-attachable.  Slabs parked in
        # a *different* arena (e.g. vicinity in anonymous mmap, or a second
        # directory) are not skipped: save_slabs copies them into the
        # artifact root so the directory is self-contained.
        arena.flush()
        vicinity_arena.flush()
        root = arena.root if arena.mode == "dir" else vicinity_arena.root
        skip = arena.file_slabs if arena.mode == "dir" else set()
        if vicinity_arena is not arena and vicinity_arena.root == root:
            skip |= vicinity_arena.file_slabs
        tables.save_slabs(root, skip=skip)
    _record(stats, "slab_bytes", tables.slab_bytes())
    return tables


def apply_maintenance(
    tables: SubstrateTables, engine, *, codec: "object | None" = None
) -> "object":
    """Catch a :class:`SubstrateTables` snapshot up with a churn engine.

    Consumes the engine's accumulated dirty sets
    (:meth:`~repro.dynamics.engine.ChurnEngine.take_dirty`) and patches
    only the touched slab entries: SPT rows, closest-landmark rows,
    vicinity rows (rebuilt, untouched rows copied wholesale), and -- when a
    ``codec`` built on the *mutated* topology is given -- the address
    payload slabs.  The patched slabs are bit-identical to rebuilding the
    tables from scratch on the engine's current topology, provided that
    topology is connected (the dense slab rows cannot represent
    unreachable nodes); the churn differential tests pin exactly this.

    Returns the consumed :class:`~repro.dynamics.engine.DirtyState` so
    callers can account for the patch volume.
    """
    dirty = engine.take_dirty()
    for landmark in sorted(dirty.rows):
        nodes = dirty.rows[landmark]
        dist_row, parent_row = engine.landmark_row(landmark)
        tables.patch_spt_row(landmark, sorted(nodes), dist_row, parent_row)
    if dirty.closest:
        closest_row, closest_dist_row = engine.closest_landmark_rows
        tables.patch_closest(
            sorted(dirty.closest), closest_row, closest_dist_row
        )
    if dirty.vicinities and tables.vicinity is not None:
        vicinities = engine.vicinities
        updates = {
            node: (
                vicinities[node].distances,
                vicinities[node].predecessors,
            )
            for node in sorted(dirty.vicinities)
        }
        tables.replace_vicinity(tables.vicinity.with_rows(updates))
    if codec is not None and len(tables.addr_offsets) == tables.num_nodes + 1:
        tables.patch_addresses(sorted(dirty.addresses), codec)
    return dirty


def build_ball_tables(
    topology: Topology,
    radii: Sequence[float],
    *,
    workers: int | None = None,
    threads: int | None = None,
) -> NodeSearchTables:
    """S4 reverse clusters ("balls") as one flat :class:`NodeSearchTables`.

    ``radii[v]`` bounds node ``v``'s search (strict boundary, the S4
    cluster definition); rows are gathered flat -- no per-node dicts, and
    with ``workers > 1`` no dict pickling over the pool pipe.  Without a
    worker pool the batch goes down in one ``radius_batch`` kernel call,
    fanned over ``threads`` in-kernel threads (``0`` pins the serial
    loop).  Contents are bit-identical to
    ``NodeSearchTables.from_searches(parallel_radius(...))`` either way.
    """
    from repro.graphs.csr import parallel_radius_flat

    worker_count = max(1, workers or 1)
    if worker_count > 1:
        offsets, members, dists, parents = parallel_radius_flat(
            topology, radii, workers=worker_count
        )
    else:
        offsets, members, dists, parents = topology.csr().radius_batch_flat(
            radii, threads=threads
        )
    return NodeSearchTables(topology.num_nodes, offsets, members, dists, parents)


def cluster_sizes_from_members(members, num_nodes: int) -> array:
    """Per-node S4 cluster sizes from a flat ball-members slab.

    ``cluster_size(w)`` counts the nodes whose ball contains ``w``,
    excluding ``w``'s own ball membership of itself: every row starts with
    its owner, so the count is the member bincount minus one.
    """
    counts = array("q", bytes(8 * num_nodes))
    clib = _ckernels.load_kernels()
    total = len(members)
    if clib is not None and total:
        p_members = (ctypes.c_int64 * total).from_buffer(memoryview(members))
        p_counts = (ctypes.c_int64 * num_nodes).from_buffer(counts)
        clib.bincount_i64(p_members, total, p_counts)
    else:
        for member in members:
            counts[member] += 1
    for node in range(num_nodes):
        counts[node] -= 1
    return counts
