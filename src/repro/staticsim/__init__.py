"""The static (post-convergence) simulator.

"For topologies larger than 1024 nodes, we built a static simulator which
calculates the post-convergence state of the network" (§5.1).  In this
reproduction the converged state of every protocol is *always* computed
statically (the protocol classes themselves are converged-state models); this
package supplies the orchestration that the paper's figures need:

* build several protocols on the same topology with shared randomness (same
  landmark set for Disco / NDDisco / S4, same names everywhere), and
* run the three standard measurements (state, stretch, congestion) over the
  same sampled nodes / pairs / flows for every protocol.

The dynamic counterpart -- the discrete-event simulator used for convergence
messaging and for validating this static model -- lives in :mod:`repro.sim`.
"""

from repro.staticsim.simulation import StaticSimulation, SimulationResults

__all__ = ["SimulationResults", "StaticSimulation"]
