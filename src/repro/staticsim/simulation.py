"""Build protocols side by side and measure them uniformly.

:class:`StaticSimulation` is the workhorse behind every state / stretch /
congestion figure: given a topology and a list of protocol names it

1. builds each protocol's converged state, reusing the expensive shared
   substrate (landmark selection, landmark SPTs, vicinities, names) between
   Disco and NDDisco exactly as one deployment would,
2. samples measurement workloads (nodes, source-destination pairs, one flow
   per node) once, so every protocol is measured on identical inputs, and
3. returns per-protocol :class:`~repro.metrics.StateReport`,
   :class:`~repro.metrics.StretchReport` and
   :class:`~repro.metrics.CongestionReport` objects.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.disco import DiscoRouting
from repro.core.nddisco import NDDiscoRouting
from repro.core.shortcutting import ShortcutMode
from repro.graphs.sampling import one_destination_per_node, sample_nodes, sample_pairs
from repro.graphs.topology import Topology
from repro.metrics.congestion import CongestionReport, measure_congestion
from repro.metrics.state import StateReport, measure_state
from repro.metrics.stretch import StretchReport, measure_stretch
from repro.protocols.base import RoutingScheme
from repro.protocols.registry import build_scheme

__all__ = ["SimulationResults", "StaticSimulation"]


@dataclass
class SimulationResults:
    """Measurement reports per protocol, keyed by protocol display name."""

    topology_name: str
    state: dict[str, StateReport] = field(default_factory=dict)
    stretch: dict[str, StretchReport] = field(default_factory=dict)
    congestion: dict[str, CongestionReport] = field(default_factory=dict)

    def protocols(self) -> list[str]:
        """Protocol names with at least one report."""
        names = set(self.state) | set(self.stretch) | set(self.congestion)
        return sorted(names)


class StaticSimulation:
    """Converged-state evaluation of several protocols on one topology.

    Parameters
    ----------
    topology:
        The network to evaluate on (must be connected).
    protocols:
        Protocol names accepted by :func:`repro.protocols.build_scheme`.
    seed:
        Root seed for landmark selection, workload sampling, and every other
        random choice.
    shortcut_mode:
        Shortcutting heuristic used by Disco / NDDisco.
    num_fingers:
        Overlay fingers per node in Disco.
    scheme_options:
        Extra per-protocol constructor options, keyed by protocol name.
    share_substrate:
        When True (default), protocols built on the same landmark set also
        share the landmark shortest-path trees (NDDisco's trees are handed
        to S4), exactly as one deployment would.  Set False to rebuild every
        scheme from scratch -- the perf harness uses this to reproduce the
        seed implementation's behavior as its "before" measurement.
    substrate_storage:
        Slab placement for the substrate builds (``"mmap"`` or a directory
        path; ``None`` keeps RAM arrays) -- forwarded as ``storage`` to
        :class:`NDDiscoRouting` and, for non-shared builds, to S4.  A
        build-mechanics knob: converged state is byte-identical across
        placements, so it never enters the cache keys.
    substrate_vicinity_storage:
        Override for the vicinity slabs (e.g. keep the landmark SPT slabs
        on disk but the vicinity slabs in anonymous mmap when the two do
        not fit on the same medium; implies the slab directory is left
        unfinished -- see ``persist`` in
        :func:`~repro.core.substrate_build.build_substrate_tables`).
    """

    def __init__(
        self,
        topology: Topology,
        protocols: Sequence[str] = ("disco", "nd-disco", "s4"),
        *,
        seed: int = 0,
        shortcut_mode: ShortcutMode = ShortcutMode.NO_PATH_KNOWLEDGE,
        num_fingers: int = 1,
        scheme_options: Mapping[str, Mapping[str, object]] | None = None,
        share_substrate: bool = True,
        substrate_storage: "str | None" = None,
        substrate_vicinity_storage: "str | None" = None,
    ) -> None:
        if not protocols:
            raise ValueError("at least one protocol is required")
        self._topology = topology
        self._seed = seed
        self._shortcut_mode = shortcut_mode
        self._num_fingers = num_fingers
        self._share_substrate = share_substrate
        self._substrate_storage = substrate_storage
        self._substrate_vicinity_storage = substrate_vicinity_storage
        self._options = {
            name.lower(): dict(opts) for name, opts in (scheme_options or {}).items()
        }
        self._schemes: dict[str, RoutingScheme] = {}
        self._build(list(protocols))

    def _build(self, protocols: list[str]) -> None:
        # When the scenario engine has an artifact cache active, every
        # converged scheme is stored under a content-addressed key (topology
        # content + constructor inputs) and reused across the scenarios of a
        # run -- fig02 and fig03 measuring the same substrates from
        # different angles build them once.  Without an active cache,
        # cached_scheme is a plain call-through and behavior is unchanged.
        from repro.scenarios.cache import cached_scheme

        normalized = [name.strip().lower() for name in protocols]
        shared_nddisco: NDDiscoRouting | None = None
        nddisco_options = self._options.get("nd-disco", {})
        # Slab placement is a build-mechanics knob (byte-identical output),
        # so it rides outside nddisco_options and never shapes a cache key.
        storage_options: dict[str, object] = {}
        if self._substrate_storage is not None:
            storage_options["storage"] = self._substrate_storage
        if self._substrate_vicinity_storage is not None:
            storage_options["vicinity_storage"] = (
                self._substrate_vicinity_storage
            )
            if self._substrate_vicinity_storage != self._substrate_storage:
                # Slabs split across media: no single directory can hold a
                # complete artifact, so skip finishing one.
                storage_options["persist_storage"] = False

        def get_nddisco() -> NDDiscoRouting:
            nonlocal shared_nddisco
            if shared_nddisco is None:
                shared_nddisco = cached_scheme(
                    self._topology,
                    "nd-disco",
                    lambda: NDDiscoRouting(
                        self._topology,
                        seed=self._seed,
                        shortcut_mode=self._shortcut_mode,
                        **storage_options,
                        **nddisco_options,
                    ),
                    seed=self._seed,
                    shortcut_mode=self._shortcut_mode,
                    **nddisco_options,
                )
            return shared_nddisco

        for name in normalized:
            if name in self._schemes:
                continue
            if name in ("nd-disco", "nddisco"):
                scheme: RoutingScheme = get_nddisco()
            elif name == "disco":
                options = self._options.get("disco", {})
                scheme = cached_scheme(
                    self._topology,
                    "disco",
                    lambda: DiscoRouting(
                        self._topology,
                        seed=self._seed,
                        num_fingers=self._num_fingers,
                        nddisco=get_nddisco(),
                        **options,
                    ),
                    seed=self._seed,
                    num_fingers=self._num_fingers,
                    shortcut_mode=self._shortcut_mode,
                    # Disco embeds the NDDisco substrate built from the
                    # nd-disco options, so those options shape Disco's
                    # converged state and must be part of its key.
                    nddisco_options=tuple(sorted(nddisco_options.items())),
                    **options,
                )
            elif name == "s4":
                options = dict(self._options.get("s4", {}))
                # Use the same landmark set as Disco/NDDisco when both are
                # evaluated, mirroring the paper's like-for-like comparison.
                shares_landmarks = (
                    "disco" in normalized or "nd-disco" in normalized
                ) and "landmarks" not in options
                if shares_landmarks:
                    options["landmarks"] = get_nddisco().landmarks
                    # Identical landmark set implies identical SPTs,
                    # addresses, and closest-landmark rows; hand NDDisco's
                    # converged substrate to S4 instead of recomputing it.
                    if self._share_substrate and "substrate" not in options:
                        options["substrate"] = get_nddisco()
                # The substrate object cannot be hashed into the key, but it
                # is fully determined by the topology content, the landmark
                # set (asserted identical above), and the nd-disco options
                # it was built from (e.g. custom names), so the key carries
                # those plus a sharing flag instead of the object.
                key_options = {
                    name: value
                    for name, value in options.items()
                    if name != "substrate"
                }
                if shares_landmarks:
                    key_options["nddisco_options"] = tuple(
                        sorted(nddisco_options.items())
                    )
                if "substrate" not in options and "storage" not in options:
                    # Own-substrate build: give S4's landmark slabs the
                    # same placement (a shared substrate brings its own).
                    # A directory gets an "s4" subdirectory so two schemes
                    # never write slab files over each other.
                    storage = self._substrate_storage
                    if storage is not None:
                        if storage != "mmap":
                            storage = os.path.join(storage, "s4")
                        options["storage"] = storage
                scheme = cached_scheme(
                    self._topology,
                    "s4",
                    lambda: build_scheme(
                        "s4", self._topology, seed=self._seed, **options
                    ),
                    seed=self._seed,
                    substrate_shared="substrate" in options,
                    **key_options,
                )
            else:
                options = self._options.get(name, {})
                scheme = cached_scheme(
                    self._topology,
                    name,
                    lambda name=name, options=options: build_scheme(
                        name, self._topology, seed=self._seed, **options
                    ),
                    seed=self._seed,
                    **options,
                )
            self._schemes[name] = scheme

    # -- accessors -----------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The topology under evaluation."""
        return self._topology

    @property
    def schemes(self) -> dict[str, RoutingScheme]:
        """The built protocol instances keyed by canonical name."""
        return dict(self._schemes)

    def scheme(self, name: str) -> RoutingScheme:
        """Return the built protocol instance for ``name``."""
        return self._schemes[name.strip().lower()]

    # -- measurement ----------------------------------------------------------

    def run(
        self,
        *,
        measure_state_flag: bool = True,
        measure_stretch_flag: bool = True,
        measure_congestion_flag: bool = False,
        node_sample: int | None = None,
        pair_sample: int = 500,
        congestion_pairs: Sequence[tuple[int, int]] | None = None,
        measure_protocols: Sequence[str] | None = None,
    ) -> SimulationResults:
        """Measure the requested metrics for every protocol.

        All protocols see the same sampled nodes, pairs, and flows --
        the workloads are a function of the topology and seed alone, so
        restricting ``measure_protocols`` to a subset of the built
        protocols yields reports byte-identical to the corresponding
        slice of a full run.  The scenario engine's protocol-granularity
        shards (Figs. 4/5) rely on exactly that: each shard builds its
        protocol (plus the substrate it is coupled to) and measures only
        its own.
        """
        results = SimulationResults(topology_name=self._topology.name)
        if measure_protocols is None:
            selected = list(self._schemes.values())
        else:
            selected = [
                self._schemes[name.strip().lower()]
                for name in measure_protocols
            ]
        nodes = (
            sample_nodes(self._topology, node_sample, seed=self._seed)
            if node_sample is not None
            else list(self._topology.nodes())
        )
        pairs = sample_pairs(self._topology, pair_sample, seed=self._seed + 1)
        flows = (
            list(congestion_pairs)
            if congestion_pairs is not None
            else one_destination_per_node(self._topology, seed=self._seed + 2)
        )
        # The true shortest distances are a function of topology and pairs
        # alone, so all protocols share one table (the batched measurement
        # engine then shares per-target relay state within each scheme).
        distances = None
        if measure_stretch_flag and selected:
            from repro.graphs.shortest_paths import all_pairs_sampled_distances

            measured_pairs = [(s, t) for s, t in pairs if s != t]
            distances = all_pairs_sampled_distances(
                self._topology, measured_pairs
            )
        for scheme in selected:
            if measure_state_flag:
                results.state[scheme.name] = measure_state(scheme, nodes=nodes)
            if measure_stretch_flag:
                results.stretch[scheme.name] = measure_stretch(
                    scheme, pairs=pairs, distances=distances
                )
            if measure_congestion_flag:
                results.congestion[scheme.name] = measure_congestion(
                    scheme, pairs=flows
                )
        return results
