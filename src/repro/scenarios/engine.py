"""Execution planner and runner for declarative scenarios.

:func:`run_scenarios` is the engine behind ``repro run``: it resolves
ids/aliases against the registry, expands shardable scenarios into
independent tasks, executes the tasks serially or over a process pool, and
reassembles per-scenario results, text reports, and structured JSON
documents.

Three properties the engine guarantees:

* **Determinism** -- serial and parallel execution produce byte-identical
  reports and JSON for the same ids and scale.  Tasks are pure functions
  of ``(scenario, shard, scale)``; the pool preserves task order; shard
  merges key by shard name, never by completion order; and everything
  timing-related is quarantined in ``manifest.json``.
* **Prerequisite deduplication** -- an :class:`ArtifactCache`
  (:mod:`repro.scenarios.cache`) is active for the duration of the run, so
  the ``(family, scale, seed)`` topologies and converged
  :class:`StaticSimulation` substrates shared across the selected
  scenarios are each built once.  With a disk-backed cache the dedup
  extends across worker processes and across invocations.
* **Isolation from the legacy API** -- ``repro.experiments.runner`` keeps
  its exact historical behavior; this engine is additive.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.experiments.config import ExperimentScale, default_scale
from repro.scenarios import registry
from repro.scenarios.cache import ArtifactCache, activated
from repro.scenarios.results import dump_json, scenario_json
from repro.scenarios.spec import Scenario

__all__ = [
    "MANIFEST_SCHEMA",
    "PlanEntry",
    "ExecutionPlan",
    "ScenarioRun",
    "plan_scenarios",
    "run_scenarios",
]

MANIFEST_SCHEMA = "repro-scenario-manifest/v2"


@dataclass(frozen=True)
class PlanEntry:
    """One scenario scheduled for execution, with its shard expansion."""

    scenario: Scenario
    shard_keys: tuple[str, ...]

    @property
    def num_tasks(self) -> int:
        return max(1, len(self.shard_keys))


@dataclass(frozen=True)
class ExecutionPlan:
    """The ordered task list a run will execute."""

    entries: tuple[PlanEntry, ...]
    scale: ExperimentScale

    def tasks(self) -> list[tuple[str, str | None]]:
        """Flat ``(scenario_id, shard_key | None)`` task list, in order."""
        out: list[tuple[str, str | None]] = []
        for entry in self.entries:
            if entry.shard_keys:
                out.extend(
                    (entry.scenario.scenario_id, key)
                    for key in entry.shard_keys
                )
            else:
                out.append((entry.scenario.scenario_id, None))
        return out


@dataclass
class ScenarioRun:
    """One executed scenario: result object, report text, JSON document."""

    scenario_id: str
    result: object
    report: str
    json: dict
    seconds: float


def plan_scenarios(
    ids: Iterable[str] | None = None,
    scale: ExperimentScale | None = None,
    *,
    shard: bool = True,
) -> ExecutionPlan:
    """Resolve ids (``None`` = every registered scenario) into a plan.

    Duplicate ids collapse to their first occurrence.  Aliases resolve to
    their canonical scenario.  Unknown ids raise
    :class:`~repro.scenarios.registry.UnknownScenarioError` with near-miss
    suggestions.
    """
    scale = scale or default_scale()
    if ids is None:
        scenarios = registry.all_scenarios()
    else:
        scenarios, seen = [], set()
        for scenario_id in ids:
            scenario = registry.resolve(scenario_id)
            if scenario.scenario_id not in seen:
                seen.add(scenario.scenario_id)
                scenarios.append(scenario)
    entries = tuple(
        PlanEntry(
            scenario=scenario,
            shard_keys=scenario.shard_keys(scale) if shard else (),
        )
        for scenario in scenarios
    )
    return ExecutionPlan(entries=entries, scale=scale)


# -- worker-process state -----------------------------------------------------

_WORKER_SCALE: ExperimentScale | None = None
_WORKER_CACHE: ArtifactCache | None = None


def _worker_init(
    scale: ExperimentScale,
    cache_root: str | None,
    cache_enabled: bool,
    shared_tables: dict | None = None,
) -> None:
    global _WORKER_SCALE, _WORKER_CACHE
    registry.load_catalog()
    _WORKER_SCALE = scale
    _WORKER_CACHE = (
        ArtifactCache(cache_root, shared_tables=shared_tables)
        if cache_enabled
        else None
    )


#: Budget for parent-side shared-memory publication of cached tables: a
#: long-lived shared cache root can hold slabs for many topologies, but a
#: run only benefits from the ones its scenarios touch, so publication is
#: bounded (most-recently-hit first) instead of mirroring the whole store
#: into ``/dev/shm``.  Keys outside the budget simply read disk per
#: worker, as before.
_PUBLISH_MAX_BYTES = 256 * 1024 * 1024
_PUBLISH_MAX_SEGMENTS = 64


def _publish_cached_tables(
    cache: ArtifactCache,
) -> tuple[dict[str, object], list[object]]:
    """Publish cached ``tables`` artifacts into shared memory.

    Called by the parent before a pool run against a warm disk cache: a
    substrate's slab payload is loaded once and pushed into one
    shared-memory segment, and workers resolving that substrate attach
    the segment zero-copy instead of unpickling a private copy each
    (:attr:`ArtifactCache.shared_tables`).  Publication is
    most-recently-hit first under :data:`_PUBLISH_MAX_BYTES` /
    :data:`_PUBLISH_MAX_SEGMENTS`, and each published artifact's sidecar
    is bumped (publication is a use; LRU pruning must see it).  Returns
    the ``tables_key -> handle`` map for the worker initializer plus the
    live publications, which the caller must close after the pool is
    done.  A cold cache (or a platform without shared memory) publishes
    nothing and the workers simply read disk, as before.
    """
    from repro.core.tables import SharedTables
    from repro.scenarios.cache import load_tables_artifact
    from repro.scenarios.lifecycle import scan

    handles: dict[str, object] = {}
    published: list[object] = []
    if cache.root is None:
        return handles, published
    # Slab-directory artifacts are excluded: workers mmap-attach them
    # straight from disk, and the page cache already gives every attached
    # process one shared physical copy -- mirroring them into /dev/shm
    # would double the resident footprint for nothing.
    candidates = [
        info
        for info in scan(cache.root)
        if info.kind == "tables" and not info.path.endswith(".slabs")
    ]
    candidates.sort(key=lambda info: info.last_hit, reverse=True)
    budget = _PUBLISH_MAX_BYTES
    for info in candidates:
        if len(published) >= _PUBLISH_MAX_SEGMENTS:
            break
        # raw_bytes approximates the segment size (slabs dominate the
        # uncompressed pickle).
        if info.raw_bytes > budget:
            continue
        try:
            tables = load_tables_artifact(info.path)
            publication = SharedTables(tables)
        except Exception:
            continue  # unreadable or unpublishable: workers read disk
        published.append(publication)
        handles[info.key] = publication.handle
        budget -= info.raw_bytes
        cache._touch_meta(info.path, info.key)
    return handles, published


def _run_task(
    task: tuple[str, str | None]
) -> tuple[float, int, int, object]:
    """Execute one task in a worker; returns (seconds, hits, misses, payload).

    The hit/miss counts are the *deltas* this task contributed to the
    worker's cache, so the parent can aggregate accurate bookkeeping across
    the pool (each worker process has its own :class:`ArtifactCache`).
    """
    scenario_id, shard_key = task
    scenario = registry.resolve(scenario_id)
    cache = _WORKER_CACHE
    hits_before = cache.hits if cache else 0
    misses_before = cache.misses if cache else 0
    start = time.perf_counter()
    with activated(cache):
        if shard_key is None:
            payload = scenario.run(_WORKER_SCALE)
        else:
            payload = scenario.run_shard(_WORKER_SCALE, shard_key)
    return (
        time.perf_counter() - start,
        (cache.hits - hits_before) if cache else 0,
        (cache.misses - misses_before) if cache else 0,
        payload,
    )


def _normalize_cache(
    cache: "ArtifactCache | str | os.PathLike | None",
) -> ArtifactCache | None:
    if cache is None or isinstance(cache, ArtifactCache):
        return cache
    return ArtifactCache(cache)


def run_scenarios(
    ids: Iterable[str] | None = None,
    *,
    scale: ExperimentScale | None = None,
    workers: int = 1,
    json_dir: str | os.PathLike | None = None,
    cache: "ArtifactCache | str | os.PathLike | None" = None,
    echo: Callable[[str], None] | None = None,
) -> dict[str, ScenarioRun]:
    """Run the selected scenarios; return ``{scenario_id: ScenarioRun}``.

    Parameters
    ----------
    ids:
        Scenario ids or aliases (``None`` = all registered scenarios).
    scale:
        Experiment scale (default: :func:`default_scale`, which honours
        ``REPRO_SCALE``).
    workers:
        ``> 1`` fans scenarios *and* their shards out over a process pool
        of that size; ``<= 1`` runs everything serially in-process.
        Output is byte-identical either way.
    json_dir:
        When given, writes ``<id>.json`` per scenario (deterministic
        content, see :mod:`repro.scenarios.results`) plus a
        ``manifest.json`` with run bookkeeping (timings and per-scenario
        cache hit/miss counts; may differ between runs).
    cache:
        ``None`` disables artifact caching; a path enables the disk-backed
        cache rooted there; an :class:`ArtifactCache` is used as-is.  With
        ``workers > 1`` a *disk-backed* cache is shared between workers
        (memory-only caches dedupe within each worker).
    echo:
        Optional progress sink (the CLI passes a stderr printer).
    """
    say = echo or (lambda message: None)
    cache = _normalize_cache(cache)
    plan = plan_scenarios(ids, scale, shard=workers > 1)
    scale = plan.scale
    tasks = plan.tasks()
    say(
        f"scenario engine: {len(plan.entries)} scenario(s), "
        f"{len(tasks)} task(s), workers={max(workers, 1)}, "
        f"cache={'off' if cache is None else (cache.root or 'memory')}"
    )
    started = time.perf_counter()
    task_outputs: dict[tuple[str, str | None], tuple[float, object]] = {}
    # Per-scenario cache bookkeeping (hit/miss deltas summed over the
    # scenario's tasks), recorded in manifest.json.
    scenario_cache: dict[str, list[int]] = {}

    def book(scenario_id: str, hits: int, misses: int) -> None:
        entry = scenario_cache.setdefault(scenario_id, [0, 0])
        entry[0] += hits
        entry[1] += misses

    if workers > 1 and len(tasks) > 1:
        from multiprocessing import Pool

        # Warm disk caches get their substrate slabs published to shared
        # memory once, so the workers attach zero-copy views instead of
        # each unpickling a private copy (cold caches publish nothing).
        shared_handles: dict[str, object] = {}
        publications: list[object] = []
        if cache is not None and cache.root:
            shared_handles, publications = _publish_cached_tables(cache)
        try:
            with Pool(
                workers,
                initializer=_worker_init,
                initargs=(
                    scale,
                    cache.root if cache else None,
                    cache is not None,
                    shared_handles,
                ),
            ) as pool:
                for task, (seconds, hits, misses, payload) in zip(
                    tasks, pool.map(_run_task, tasks, chunksize=1)
                ):
                    task_outputs[task] = (seconds, payload)
                    book(task[0], hits, misses)
        finally:
            for publication in publications:
                publication.close()
    else:
        with activated(cache):
            for task in tasks:
                scenario = registry.resolve(task[0])
                hits_before = cache.hits if cache else 0
                misses_before = cache.misses if cache else 0
                task_started = time.perf_counter()
                if task[1] is None:
                    payload = scenario.run(scale)
                else:
                    payload = scenario.run_shard(scale, task[1])
                task_outputs[task] = (
                    time.perf_counter() - task_started,
                    payload,
                )
                if cache is not None:
                    book(
                        task[0],
                        cache.hits - hits_before,
                        cache.misses - misses_before,
                    )
    cache_hits = sum(entry[0] for entry in scenario_cache.values())
    cache_misses = sum(entry[1] for entry in scenario_cache.values())

    runs: dict[str, ScenarioRun] = {}
    for entry in plan.entries:
        scenario = entry.scenario
        scenario_id = scenario.scenario_id
        if entry.shard_keys:
            parts = {
                key: task_outputs[(scenario_id, key)][1]
                for key in entry.shard_keys
            }
            seconds = sum(
                task_outputs[(scenario_id, key)][0]
                for key in entry.shard_keys
            )
            result = scenario.merge_shards(scale, parts)
        else:
            seconds, result = task_outputs[(scenario_id, None)]
        report = scenario.format_report(result)
        runs[scenario_id] = ScenarioRun(
            scenario_id=scenario_id,
            result=result,
            report=report,
            json=scenario_json(scenario, scale, result, report),
            seconds=seconds,
        )
        say(f"  {scenario_id}: done ({seconds:.2f}s)")

    if json_dir is not None:
        _write_json_dir(
            json_dir, plan, runs, workers, started, cache,
            cache_hits, cache_misses, scenario_cache,
        )
    return runs


def _write_json_dir(
    json_dir: str | os.PathLike,
    plan: ExecutionPlan,
    runs: dict[str, ScenarioRun],
    workers: int,
    started: float,
    cache: ArtifactCache | None,
    cache_hits: int,
    cache_misses: int,
    scenario_cache: dict[str, list[int]],
) -> None:
    os.makedirs(json_dir, exist_ok=True)
    for scenario_id, run in runs.items():
        path = os.path.join(json_dir, f"{scenario_id}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(dump_json(run.json))
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "scale_label": plan.scale.label,
        "workers": max(workers, 1),
        "elapsed_s": round(time.perf_counter() - started, 6),
        "cache": None
        if cache is None
        else {
            "root": cache.root,
            "hits": cache_hits,
            "misses": cache_misses,
        },
        "scenarios": {
            scenario_id: {
                "seconds": round(run.seconds, 6),
                "tasks": next(
                    entry.num_tasks
                    for entry in plan.entries
                    if entry.scenario.scenario_id == scenario_id
                ),
                "cache": None
                if cache is None
                else {
                    "hits": scenario_cache.get(scenario_id, [0, 0])[0],
                    "misses": scenario_cache.get(scenario_id, [0, 0])[1],
                },
            }
            for scenario_id, run in runs.items()
        },
    }
    with open(
        os.path.join(json_dir, "manifest.json"), "w", encoding="utf-8"
    ) as handle:
        handle.write(dump_json(manifest))
