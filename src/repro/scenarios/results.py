"""Structured JSON serialization of scenario results.

Every experiment returns a frozen result dataclass built from primitives,
tuples, dicts, and the metric report dataclasses -- all of which serialize
mechanically.  :func:`to_jsonable` performs that recursive conversion, and
:func:`scenario_json` wraps one executed scenario into the stable document
``repro run --json-dir`` writes next to the text reports.

Determinism contract: the JSON for a scenario is a pure function of the
scenario and the scale -- no timestamps, host names, or worker counts --
so serial and parallel runs (and reruns) produce byte-identical files.
Run-level bookkeeping that may legitimately differ (wall-clock timings,
worker count) goes into the separate ``manifest.json``.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentScale
    from repro.scenarios.spec import Scenario

__all__ = ["RESULT_SCHEMA", "to_jsonable", "scenario_json", "dump_json"]

#: Schema id embedded in every per-scenario JSON document.
RESULT_SCHEMA = "repro-scenario-result/v1"


def to_jsonable(value: object) -> object:
    """Convert a result object into JSON-serializable primitives.

    Dataclasses become objects keyed by field name, mappings become
    objects with stringified keys (sweep results are keyed by int), sets
    are sorted for determinism, enums collapse to their name, and
    non-finite floats are stringified (JSON has no ``inf``/``nan``).
    Anything unrecognized falls back to ``repr`` rather than failing the
    run.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, enum.Enum):
        return value.name
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return [to_jsonable(item) for item in sorted(value)]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return repr(value)


def scenario_json(
    scenario: "Scenario",
    scale: "ExperimentScale",
    result: object,
    report: str,
) -> dict:
    """The stable per-scenario JSON document (see the module docstring)."""
    return {
        "schema": RESULT_SCHEMA,
        "id": scenario.scenario_id,
        "title": scenario.title,
        "family": list(scenario.family),
        "protocols": list(scenario.protocols),
        "metrics": list(scenario.metrics),
        "workload": scenario.workload,
        "aliases": list(scenario.aliases),
        "scale": to_jsonable(scale),
        "result": to_jsonable(result),
        "report": report,
    }


def dump_json(document: dict) -> str:
    """Canonical serialization: sorted keys, 2-space indent, newline EOF."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
