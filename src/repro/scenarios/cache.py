"""Content-addressed artifact store for the scenario engine (v2).

Running the full evaluation rebuilds the same expensive prerequisites over
and over: the ``(family, n, seed)`` topologies, and -- far more costly --
the converged routing substrates (:class:`NDDiscoRouting` and friends) that
several figures measure from different angles.  This module deduplicates
both, and -- new in the v2 store -- persists the shared landmark substrate
**once** instead of embedding a private copy in every scheme that uses it.

Four artifact kinds:

* **Topologies** are keyed by their *construction inputs* (generator
  family, node count, seed, structural parameters, plus a schema-version
  salt), so any two scenarios that ask for "the comparison G(n,m) graph"
  get one build.
* **Substrates** -- the converged ND-Disco landmark substrate (landmark
  SPT rows, closest-landmark rows, addresses, names, codec) that Disco
  embeds and S4 borrows -- are keyed by the topology's *content*
  (:meth:`Topology.content_key`) plus every constructor input that shapes
  the converged state.  A substrate is pickled once, with its topology
  externalized to the topology artifact when one exists.
* **Schemes** (Disco, S4, VRR, ...) are stored as **lightweight shells**:
  their pickles cut the object graph at every registered substrate
  component (the substrate object itself, its SPT rows, closest-landmark
  rows, per-node addresses, names, codec, topology) and record a
  ``(kind, key, path)`` persistent reference instead.  On unpickle the
  reference is resolved through the cache, so every warm-loaded scheme
  reattaches to the *same* substrate object graph -- a fully warm run
  holds exactly one substrate in memory, just like a cold run whose
  schemes shared it at build time.
* **Tables** -- the substrate's flat slab payload
  (:class:`~repro.core.tables.SubstrateTables`) -- are externalized from
  the substrate pickle into their own artifact (key derived from the
  substrate key), serialized as raw typed buffers.  Because the slabs are
  plain bytes, the scenario engine can also *publish* them to shared
  memory before a parallel run: workers then resolve the tables reference
  by attaching a zero-copy view instead of unpickling a private copy
  (see :attr:`ArtifactCache.shared_tables`).

On-disk payloads are zlib-compressed behind a magic prefix
(:data:`COMPRESS_MAGIC`); artifacts written by older versions without the
prefix still load, and each sidecar records both the stored and the raw
byte count so ``repro cache stats`` can report the compression ratio.

A mutated topology can never hit a stale artifact: scheme and substrate
keys change with ``content_key()``, and persistent references carry a
content-key guard checked at pickling time (a mutated component is
embedded inline rather than mis-referenced).

Both layers live in memory for the current process and -- when a cache
directory is configured -- as pickles on disk (plus a ``<key>.meta.json``
sidecar per artifact recording byte counts and last-hit timestamps; see
:mod:`repro.scenarios.lifecycle` for the ops layer built on them), so
repeated ``repro run`` invocations and the worker processes of a parallel
run share one build.  Artifacts are deterministic functions of their key,
which is what makes cache hits invisible in the output: serial, parallel,
cold- and warm-cache runs all print byte-identical reports.

The active cache is process-global (set by the engine around a run);
:func:`active_cache` returns ``None`` outside one, and every cache-aware
call site falls back to building directly.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import tempfile
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, TypeVar

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "COMPRESS_MAGIC",
    "SLAB_ARTIFACT_THRESHOLD",
    "SUBSTRATE_SCHEMES",
    "Uncacheable",
    "active_cache",
    "activated",
    "cache_key",
    "cached_scheme",
    "canonical_value",
    "load_tables_artifact",
    "scheme_key",
    "tables_key",
]

#: Version salt baked into every key: the artifact-layout revision (bump on
#: layout changes) plus the package version, so version bumps retire stale
#: artifacts wholesale.  Keys cover *inputs*, not code -- after changing an
#: algorithm without bumping either, run ``repro cache clear`` to force
#: cold builds.  v3: array-backed substrate tables externalized into their
#: own artifact kind.  v4: large tables artifacts stored as raw slab
#: directories (``<key>.slabs/``, :data:`repro.core.tables.SLAB_SCHEMA`)
#: that loads attach with ``mmap`` instead of unpickling.
ARTIFACT_SCHEMA = "repro-artifacts/v4"

#: Tables artifacts at or above this many slab bytes are stored as a raw
#: slab directory instead of a compressed pickle.  A slab directory loads
#: by ``mmap`` attach: no unpickle copy, lazy paging, and every process
#: that attaches shares the same page-cache pages -- which is what makes
#: larger-than-RAM substrates usable from a warm cache.  Below the
#: threshold the zlib pickle wins (compression, single file).
SLAB_ARTIFACT_THRESHOLD = 64 * 1024 * 1024

#: Framing prefix of zlib-compressed artifact payloads.  Chosen to be
#: impossible as the start of a raw pickle stream (pickles begin with the
#: PROTO opcode ``\x80``), so legacy uncompressed artifacts are
#: recognized and still load.
COMPRESS_MAGIC = b"RPZC"

#: Scheme names whose converged object *is* the shared landmark substrate.
#: These are stored under the ``substrate`` kind and their components are
#: registered for shell externalization.
SUBSTRATE_SCHEMES = frozenset({"nd-disco", "nddisco"})


def _schema_salt() -> str:
    try:
        from repro import __version__
    except Exception:  # pragma: no cover - partial-install fallback
        __version__ = "unknown"
    # The scheme-state backend shapes what an artifact *contains* (slab
    # tables vs per-node object graphs), so it salts every key: a dict
    # oracle run can never be served array-built artifacts or vice versa.
    from repro.core.tables import get_backend

    return f"{ARTIFACT_SCHEMA}|repro-{__version__}|tables-{get_backend()}"

T = TypeVar("T")


def cache_key(kind: str, *parts: object) -> str:
    """SHA-256 hex key over ``kind`` and the canonical repr of ``parts``.

    Parts must have deterministic ``repr`` (ints, floats, strings, bools,
    ``None``, and nested tuples/lists thereof) -- the standard inputs a
    generator or scheme constructor takes.
    """
    digest = hashlib.sha256()
    digest.update(_schema_salt().encode())
    digest.update(b"|")
    digest.update(kind.encode())
    for part in parts:
        digest.update(b"|")
        digest.update(repr(part).encode())
    return digest.hexdigest()


class _ArtifactMissing(Exception):
    """A persistent reference points at an artifact that is not available.

    Raised inside ``persistent_load`` while unpickling a scheme shell whose
    substrate (or topology) artifact was evicted; the surrounding load
    treats it as a cache miss and rebuilds.
    """


@dataclass(frozen=True)
class _SharedRef:
    """One registered shared object: where its canonical copy lives.

    ``topology``/``content_key`` pin the topology content the registration
    was made under; a reference is only emitted while the topology still
    hashes to the same content (mutation embeds inline instead).
    """

    kind: str
    key: str
    path: tuple
    topology: object
    content_key: str

    def is_valid(self) -> bool:
        try:
            return self.topology.content_key() == self.content_key
        except Exception:
            return False


def _substrate_components(substrate) -> Iterator[tuple[tuple, object]]:
    """Yield ``(path, object)`` for every shareable substrate component.

    The paths mirror :func:`_resolve_substrate_path`.  Components are the
    objects sibling schemes reference directly (S4 copies list/dict
    *entries*, not the substrate itself): landmark SPT rows, the
    closest-landmark rows, every per-node :class:`Address`, the names, the
    label codec, the vicinities, and the topology.
    """
    yield (), substrate
    yield ("topology",), substrate.topology
    for landmark, rows in substrate.landmark_spts.items():
        yield ("spt", landmark, 0), rows[0]
        yield ("spt", landmark, 1), rows[1]
    closest, closest_distance = substrate.closest_landmark_rows
    yield ("closest", 0), closest
    yield ("closest", 1), closest_distance
    addresses = substrate.addresses
    yield ("addresses",), addresses
    for node, address in enumerate(addresses):
        yield ("address", node), address
    names = substrate.names
    yield ("names",), names
    for node, name in enumerate(names):
        yield ("name", node), name
    yield ("codec",), substrate.codec
    yield ("vicinities",), substrate.vicinities


def _resolve_substrate_path(substrate, path: tuple):
    """Navigate a :func:`_substrate_components` path on a loaded substrate."""
    if not path:
        return substrate
    head = path[0]
    if head == "topology":
        return substrate.topology
    if head == "spt":
        return substrate.landmark_spts[path[1]][path[2]]
    if head == "closest":
        return substrate.closest_landmark_rows[path[1]]
    if head == "addresses":
        return substrate.addresses
    if head == "address":
        return substrate.addresses[path[1]]
    if head == "names":
        return substrate.names
    if head == "name":
        return substrate.names[path[1]]
    if head == "codec":
        return substrate.codec
    if head == "vicinities":
        return substrate.vicinities
    raise _ArtifactMissing(f"unknown substrate path {path!r}")


class _ShellPickler(pickle.Pickler):
    """Pickler that externalizes registered shared objects.

    Any object present in the cache's shared-object registry (and whose
    topology content guard still holds) is replaced by a persistent
    ``(kind, key, path)`` reference.  ``skip`` suppresses references into
    the artifact currently being stored, so a substrate's own pickle never
    references itself (its *tables* reference, stored under a different
    kind/key, survives).
    """

    def __init__(self, buffer, shared, *, skip: tuple[str, str] | None = None):
        super().__init__(buffer, protocol=4)
        self._shared = shared
        self._skip = skip

    def persistent_id(self, obj):
        ref = self._shared.get(id(obj))
        if ref is None or (ref.kind, ref.key) == self._skip:
            return None
        if not ref.is_valid():
            return None
        return (ref.kind, ref.key, ref.path)


class _ShellUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent references through an ArtifactCache."""

    def __init__(self, buffer, cache: "ArtifactCache"):
        super().__init__(buffer)
        self._cache = cache

    def persistent_load(self, pid):
        kind, key, path = pid
        root = self._cache._load_artifact(kind, key)
        if kind == "substrate":
            return _resolve_substrate_path(root, path)
        if kind == "tables" and path:
            if path == ("vicinity",):
                return root.vicinity
            raise _ArtifactMissing(f"unknown tables path {path!r}")
        if path:
            raise _ArtifactMissing(f"unexpected path {path!r} for {kind}")
        return root


class ArtifactCache:
    """Four-kind (topology / substrate / tables / scheme) artifact store.

    Parameters
    ----------
    root:
        Directory for the on-disk layer (created on demand); ``None``
        keeps the cache memory-only.  Disk writes are atomic
        (temp file + ``os.replace``), so concurrent workers sharing one
        root can only ever observe complete artifacts.
    shared_tables:
        Optional ``tables_key -> SharedTablesHandle`` map of substrate
        tables a parent process published to shared memory.  When a
        substrate load resolves its tables reference, a published key is
        attached zero-copy instead of read from disk -- this is how pool
        workers avoid unpickling a private slab copy each.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        *,
        shared_tables: "Mapping[str, object] | None" = None,
    ) -> None:
        self.root = os.fspath(root) if root is not None else None
        self.shared_tables = dict(shared_tables or {})
        self._memory: dict[str, object] = {}
        #: id(object) -> _SharedRef for every registered shared component.
        #: Roots are pinned by ``_memory``, so registered ids stay live.
        self._shared: dict[int, _SharedRef] = {}
        #: Keys whose sidecar last-hit stamp was already bumped this process.
        self._touched: set[str] = set()
        self.hits = 0
        self.misses = 0

    # -- generic keyed artifacts -----------------------------------------

    def get(self, kind: str, key: str, build: Callable[[], T]) -> T:
        """Return the artifact for ``key``, building and storing on miss."""
        cached = self._memory.get(key)
        if cached is not None:
            self.hits += 1
            return cached  # type: ignore[return-value]
        artifact = self._load_disk(kind, key)
        if artifact is None:
            self.misses += 1
            artifact = build()
            self._register(kind, key, artifact)
            if kind == "substrate":
                # Externalize the substrate's slab payload into its own
                # artifact *before* the substrate pickle is written, so
                # the shell pickler replaces the tables object with a
                # reference and the slabs persist exactly once.
                self._store_tables(key, artifact)
            if kind == "topology" and self._store_topology_slabs(
                key, artifact
            ):
                pass  # the slab directory is the single on-disk copy
            else:
                self._store_disk(kind, key, artifact)
        else:
            self.hits += 1
            self._register(kind, key, artifact)
        self._memory[key] = artifact
        return artifact  # type: ignore[return-value]

    def _store_tables(self, substrate_key: str, substrate: object) -> None:
        """Persist a substrate's :class:`SubstrateTables` as raw buffers.

        Small payloads go through the compressed-pickle path; payloads at
        or above :data:`SLAB_ARTIFACT_THRESHOLD` are written as a raw slab
        directory (``<key>.slabs/``) so later loads mmap-attach instead of
        materializing an unpickle copy.
        """
        tables = getattr(substrate, "tables", None)
        if tables is None or id(tables) not in self._shared:
            return
        derived = tables_key(substrate_key)
        self._memory[derived] = tables
        try:
            big = tables.slab_bytes() >= SLAB_ARTIFACT_THRESHOLD
        except Exception:
            big = False
        if big:
            self._store_slab_dir(derived, tables)
        else:
            self._store_disk("tables", derived, tables)

    def _store_topology_slabs(self, key: str, topology: object) -> bool:
        """Persist a big slab-backed topology as a raw slab directory.

        Ingested :class:`~repro.graphs.topology.CSRTopology` artifacts at
        or above :data:`SLAB_ARTIFACT_THRESHOLD` skip the pickle layer
        entirely: the slab directory is the single on-disk copy and later
        loads mmap-attach it.  Returns True when the slab directory is
        (or already was) in place; False sends the artifact down the
        ordinary pickle path.
        """
        save = getattr(topology, "save_slabs", None)
        if save is None or self.root is None:
            return False
        try:
            big = topology.slab_bytes() >= SLAB_ARTIFACT_THRESHOLD
        except Exception:
            return False
        if not big:
            return False
        self._store_slab_dir(key, topology, kind="topology")
        target = self._slab_dir_path(key, "topology")
        return target is not None and os.path.isdir(target)

    def _slab_dir_path(self, key: str, kind: str = "tables") -> str | None:
        if self.root is None:
            return None
        return os.path.join(self.root, kind, f"{key}.slabs")

    def _store_slab_dir(
        self, key: str, artifact: object, *, kind: str = "tables"
    ) -> None:
        """Write one slab-backed artifact as an atomic raw slab directory."""
        target = self._slab_dir_path(key, kind)
        if target is None or os.path.isdir(target):
            return
        directory = os.path.dirname(target)
        os.makedirs(directory, exist_ok=True)
        scratch = tempfile.mkdtemp(dir=directory, suffix=".tmp")
        try:
            artifact.save_slabs(scratch)
            # Directory rename is atomic; a concurrent writer that won the
            # race leaves the target in place and we discard our copy.
            os.replace(scratch, target)
        except Exception:
            import shutil

            shutil.rmtree(scratch, ignore_errors=True)
            if not os.path.isdir(target):
                return
        size = artifact.slab_bytes()
        now = round(time.time(), 3)
        self._write_meta(
            target,
            {
                "schema": ARTIFACT_SCHEMA,
                "format": "slabs",
                "kind": kind,
                "key": key,
                "bytes": size,
                "raw_bytes": size,
                "created": now,
                "last_hit": now,
            },
        )
        self._touched.add(key)

    def topology(self, parts: tuple, build: Callable[[], T]) -> T:
        """Topology keyed by construction inputs (family, n, seed, ...)."""
        return self.get("topology", cache_key("topology", *parts), build)

    def substrate(self, key: str, build: Callable[[], T]) -> T:
        """Converged landmark substrate keyed by topology content + options."""
        return self.get("substrate", key, build)

    def scheme(self, key: str, build: Callable[[], T]) -> T:
        """Converged routing scheme keyed by topology content + options."""
        return self.get("scheme", key, build)

    # -- shared-object registry ------------------------------------------

    def _register(self, kind: str, key: str, artifact: object) -> None:
        """Register the shareable object graph of a topology/substrate.

        Scheme shells pickled later cut their object graph at these ids.
        Registration snapshots the owning topology's ``content_key()`` as
        a guard: once the topology mutates, the refs go stale and
        pickling embeds the (new) objects inline instead.
        """
        try:
            if kind == "topology":
                content = artifact.content_key()
                self._shared[id(artifact)] = _SharedRef(
                    "topology", key, (), artifact, content
                )
            elif kind == "substrate":
                topology = artifact.topology
                content = topology.content_key()
                for path, obj in _substrate_components(artifact):
                    self._shared.setdefault(
                        id(obj),
                        _SharedRef("substrate", key, path, topology, content),
                    )
                tables = getattr(artifact, "tables", None)
                if tables is not None:
                    # The slab payload lives under its own kind/key so the
                    # substrate's pickle externalizes it (and parallel runs
                    # can swap in a shared-memory attachment).  The nested
                    # vicinity table is registered as well: the per-node
                    # views reference it directly.
                    derived = tables_key(key)
                    self._shared.setdefault(
                        id(tables),
                        _SharedRef("tables", derived, (), topology, content),
                    )
                    if tables.vicinity is not None:
                        self._shared.setdefault(
                            id(tables.vicinity),
                            _SharedRef(
                                "tables",
                                derived,
                                ("vicinity",),
                                topology,
                                content,
                            ),
                        )
            # kind == "tables" registers nothing by itself: the owning
            # substrate's registration (above) carries the topology guard.
        except Exception:
            # A partially built or exotic artifact simply is not shared.
            return

    def _load_artifact(self, kind: str, key: str):
        """Memory-then-disk load for persistent-reference resolution.

        Unlike :meth:`get` there is no builder: a missing artifact raises
        :class:`_ArtifactMissing`, which the enclosing shell load treats
        as a cache miss.  ``tables`` artifacts published to shared memory
        by a parent process are attached zero-copy instead of being read
        from disk.
        """
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        artifact = None
        if kind == "tables" and key in self.shared_tables:
            try:
                from repro.core.tables import SubstrateTables

                artifact = SubstrateTables.from_shared(
                    self.shared_tables[key]
                )
            except Exception:
                artifact = None  # vanished segment: fall back to disk
            else:
                # A shared-memory hit is still a use of the on-disk
                # artifact: bump its sidecar so LRU pruning never ranks
                # the store's hottest tables as its coldest.
                path = self._path(kind, key)
                if path is not None:
                    self._touch_meta(path, key)
        if artifact is None:
            artifact = self._load_disk(kind, key)
        if artifact is None:
            raise _ArtifactMissing(f"{kind} artifact {key} unavailable")
        self._register(kind, key, artifact)
        self._memory[key] = artifact
        return artifact

    # -- disk layer -------------------------------------------------------

    def _path(self, kind: str, key: str) -> str | None:
        if self.root is None:
            return None
        return os.path.join(self.root, kind, f"{key}.pkl")

    def _load_disk(self, kind: str, key: str) -> object | None:
        if kind in ("tables", "topology"):
            slab_dir = self._slab_dir_path(key, kind)
            if slab_dir is not None and os.path.isdir(slab_dir):
                try:
                    if kind == "tables":
                        from repro.core.tables import SubstrateTables

                        artifact: object = SubstrateTables.from_mmap(
                            slab_dir
                        )
                    else:
                        from repro.graphs.topology import CSRTopology

                        artifact = CSRTopology.from_slab_dir(slab_dir)
                except Exception:
                    pass  # incomplete/corrupt directory: try the pickle
                else:
                    self._touch_meta(slab_dir, key)
                    return artifact
        path = self._path(kind, key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                data = handle.read()
            if data.startswith(COMPRESS_MAGIC):
                data = zlib.decompress(data[len(COMPRESS_MAGIC) :])
            artifact = _ShellUnpickler(io.BytesIO(data), self).load()
        except Exception:
            # A truncated, version-skewed, or dangling-reference artifact
            # (e.g. its substrate was evicted) is treated as a miss; the
            # rebuild overwrites it atomically.
            return None
        self._touch_meta(path, key)
        return artifact

    def _store_disk(self, kind: str, key: str, artifact: object) -> None:
        path = self._path(kind, key)
        if path is None:
            return
        try:
            buffer = io.BytesIO()
            _ShellPickler(
                buffer,
                self._shared,
                # A substrate may reference the topology and tables
                # artifacts but never itself; plain artifacts (topologies)
                # have nothing registered pointing at other artifacts
                # anyway.
                skip=(kind, key),
            ).dump(artifact)
            raw = buffer.getvalue()
        except Exception:
            return  # unpicklable artifacts stay memory-only
        payload = COMPRESS_MAGIC + zlib.compress(raw, 6)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        if not self._atomic_write(path, payload, directory):
            return
        now = round(time.time(), 3)
        self._write_meta(
            path,
            {
                "schema": ARTIFACT_SCHEMA,
                "kind": kind,
                "key": key,
                "bytes": len(payload),
                "raw_bytes": len(raw),
                "created": now,
                "last_hit": now,
            },
        )
        self._touched.add(key)

    @staticmethod
    def _atomic_write(path: str, payload: bytes, directory: str) -> bool:
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_path, path)
            return True
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            return False

    # -- sidecar metadata (consumed by repro.scenarios.lifecycle) ---------

    @staticmethod
    def meta_path(path: str) -> str:
        """The sidecar metadata path for an artifact pickle path."""
        return path[: -len(".pkl")] + ".meta.json" if path.endswith(".pkl") else path + ".meta.json"

    def _write_meta(self, path: str, meta: dict) -> None:
        payload = (json.dumps(meta, sort_keys=True) + "\n").encode()
        directory = os.path.dirname(path)
        self._atomic_write(self.meta_path(path), payload, directory)

    def _touch_meta(self, path: str, key: str) -> None:
        """Bump the last-hit stamp, at most once per key per process.

        Best-effort and atomic (rewrite + replace): eviction ordering
        degrades gracefully if a stamp is lost, it never corrupts.
        """
        if key in self._touched:
            return
        self._touched.add(key)
        meta_path = self.meta_path(path)
        try:
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return
        meta["last_hit"] = round(time.time(), 3)
        self._write_meta(path, meta)


def tables_key(substrate_key: str) -> str:
    """The derived artifact key of a substrate's externalized tables.

    Deterministic per substrate key, and distinct from it, so the two
    artifacts can never collide in the memory layer or on disk.
    """
    return cache_key("tables", substrate_key)


def load_tables_artifact(path: str):
    """Load one on-disk ``tables`` artifact.

    A ``<key>.slabs`` directory attaches by mmap
    (:meth:`~repro.core.tables.SubstrateTables.from_mmap`); a ``.pkl``
    payload is plain-unpickled (unframed).  Used by the scenario engine's
    parent process to publish already-cached substrate tables into shared
    memory before a parallel run.  Raises on unreadable/corrupt payloads;
    callers treat that as "skip this one".
    """
    if os.path.isdir(path):
        from repro.core.tables import SubstrateTables

        return SubstrateTables.from_mmap(path)
    with open(path, "rb") as handle:
        data = handle.read()
    if data.startswith(COMPRESS_MAGIC):
        data = zlib.decompress(data[len(COMPRESS_MAGIC) :])
    return pickle.loads(data)


class Uncacheable(Exception):
    """A constructor argument has no canonical form; skip caching."""


def canonical_value(value: object) -> object:
    """Canonicalize a constructor argument for key hashing.

    Primitives pass through, enums collapse to their name, sequences
    recurse, and sets sort (landmark sets are unordered).  Anything else
    -- an arbitrary object whose identity may matter -- raises
    :class:`Uncacheable`, and the caller builds without caching rather
    than risking a wrong hit.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    import enum

    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (list, tuple)):
        return tuple(canonical_value(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(canonical_value(item) for item in value))
    raise Uncacheable(repr(type(value)))


def scheme_key(topology, scheme_name: str, **params: object) -> str | None:
    """Content-addressed key for a converged routing scheme, or ``None``.

    The key covers the topology *content* (``Topology.content_key()``,
    which is invalidated on mutation) plus every canonicalizable
    constructor parameter.  Build-mechanics parameters are excluded:
    ``workers`` parallelizes the build and the ``storage`` family places
    the slabs in RAM / mmap / a directory, but neither changes the
    converged state (the slab-direct build is byte-identical across all
    of them).  Returns ``None`` when any parameter is uncacheable.
    Substrate-carrying schemes (:data:`SUBSTRATE_SCHEMES`) key under the
    ``substrate`` kind so the two artifact namespaces can never collide.
    """
    excluded = ("workers", "storage", "vicinity_storage", "persist_storage")
    try:
        canonical = tuple(
            (name, canonical_value(value))
            for name, value in sorted(params.items())
            if name not in excluded
        )
    except Uncacheable:
        return None
    kind = "substrate" if scheme_name in SUBSTRATE_SCHEMES else "scheme"
    return cache_key(kind, topology.content_key(), scheme_name, canonical)


def cached_scheme(
    topology,
    scheme_name: str,
    build: Callable[[], T],
    **params: object,
) -> T:
    """Build (or fetch) a converged scheme through the active cache.

    ``params`` must be the full set of constructor inputs that shape the
    converged state (seed, shortcut mode, landmark set, ...).  With no
    active cache, or with an uncacheable parameter, this is ``build()``.
    Substrate-carrying schemes (ND-Disco) are stored as ``substrate``
    artifacts and their components registered for shell externalization;
    everything else is stored as a lightweight scheme shell.  Cached
    objects are shared -- callers must treat them as immutable.
    """
    cache = active_cache()
    if cache is None:
        return build()
    key = scheme_key(topology, scheme_name, **params)
    if key is None:
        return build()
    if scheme_name in SUBSTRATE_SCHEMES:
        return cache.substrate(key, build)
    return cache.scheme(key, build)


_ACTIVE: ArtifactCache | None = None


def active_cache() -> ArtifactCache | None:
    """The cache the current scenario run installed, or ``None``."""
    return _ACTIVE


@contextmanager
def activated(cache: ArtifactCache | None) -> Iterator[ArtifactCache | None]:
    """Install ``cache`` as the process-global active cache for a block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous
