"""Content-addressed artifact cache for the scenario engine.

Running the full evaluation rebuilds the same expensive prerequisites over
and over: the ``(family, n, seed)`` topologies, and -- far more costly --
the converged routing substrates (:class:`NDDiscoRouting` and friends) that
several figures measure from different angles.  This module deduplicates
both:

* **Topologies** are keyed by their *construction inputs* (generator
  family, node count, seed, structural parameters, plus a schema-version
  salt), so any two scenarios that ask for "the comparison G(n,m) graph"
  get one build.
* **Converged schemes** are keyed by the topology's *content*
  (:meth:`Topology.content_key`, the SHA-256 of the weighted edge set)
  plus every constructor input that shapes the converged state.  A mutated
  topology therefore can never hit a stale substrate: its content key
  changes with it.

Both layers live in memory for the current process and -- when a cache
directory is configured -- as pickles on disk, so repeated ``repro run``
invocations and the worker processes of a parallel run share one build.
Artifacts are deterministic functions of their key, which is what makes
cache hits invisible in the output: serial, parallel, cold- and warm-cache
runs all print byte-identical reports.

The active cache is process-global (set by the engine around a run);
:func:`active_cache` returns ``None`` outside one, and every cache-aware
call site falls back to building directly.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "Uncacheable",
    "active_cache",
    "activated",
    "cache_key",
    "cached_scheme",
    "canonical_value",
    "scheme_key",
]

#: Version salt baked into every key: the artifact-layout revision (bump on
#: layout changes) plus the package version, so version bumps retire stale
#: artifacts wholesale.  Keys cover *inputs*, not code -- after changing an
#: algorithm without bumping either, delete the cache directory to force
#: cold builds.
ARTIFACT_SCHEMA = "repro-artifacts/v1"


def _schema_salt() -> str:
    try:
        from repro import __version__
    except Exception:  # pragma: no cover - partial-install fallback
        __version__ = "unknown"
    return f"{ARTIFACT_SCHEMA}|repro-{__version__}"

T = TypeVar("T")


def cache_key(kind: str, *parts: object) -> str:
    """SHA-256 hex key over ``kind`` and the canonical repr of ``parts``.

    Parts must have deterministic ``repr`` (ints, floats, strings, bools,
    ``None``, and nested tuples/lists thereof) -- the standard inputs a
    generator or scheme constructor takes.
    """
    digest = hashlib.sha256()
    digest.update(_schema_salt().encode())
    digest.update(b"|")
    digest.update(kind.encode())
    for part in parts:
        digest.update(b"|")
        digest.update(repr(part).encode())
    return digest.hexdigest()


class ArtifactCache:
    """Two-level (memory + optional disk) store for build artifacts.

    Parameters
    ----------
    root:
        Directory for the on-disk layer (created on demand); ``None``
        keeps the cache memory-only.  Disk writes are atomic
        (temp file + ``os.replace``), so concurrent workers sharing one
        root can only ever observe complete artifacts.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = os.fspath(root) if root is not None else None
        self._memory: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    # -- generic keyed artifacts -----------------------------------------

    def get(self, kind: str, key: str, build: Callable[[], T]) -> T:
        """Return the artifact for ``key``, building and storing on miss."""
        cached = self._memory.get(key)
        if cached is not None:
            self.hits += 1
            return cached  # type: ignore[return-value]
        artifact = self._load_disk(kind, key)
        if artifact is None:
            self.misses += 1
            artifact = build()
            self._store_disk(kind, key, artifact)
        else:
            self.hits += 1
        self._memory[key] = artifact
        return artifact  # type: ignore[return-value]

    def topology(self, parts: tuple, build: Callable[[], T]) -> T:
        """Topology keyed by construction inputs (family, n, seed, ...)."""
        return self.get("topology", cache_key("topology", *parts), build)

    def scheme(self, key: str, build: Callable[[], T]) -> T:
        """Converged routing scheme keyed by topology content + options."""
        return self.get("scheme", key, build)

    # -- disk layer -------------------------------------------------------

    def _path(self, kind: str, key: str) -> str | None:
        if self.root is None:
            return None
        return os.path.join(self.root, kind, f"{key}.pkl")

    def _load_disk(self, kind: str, key: str) -> object | None:
        path = self._path(kind, key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            # A truncated or version-skewed artifact is treated as a miss;
            # the rebuild overwrites it atomically.
            return None

    def _store_disk(self, kind: str, key: str, artifact: object) -> None:
        path = self._path(kind, key)
        if path is None:
            return
        try:
            payload = pickle.dumps(artifact, protocol=4)
        except Exception:
            return  # unpicklable artifacts stay memory-only
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_path, path)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass


class Uncacheable(Exception):
    """A constructor argument has no canonical form; skip caching."""


def canonical_value(value: object) -> object:
    """Canonicalize a constructor argument for key hashing.

    Primitives pass through, enums collapse to their name, sequences
    recurse, and sets sort (landmark sets are unordered).  Anything else
    -- an arbitrary object whose identity may matter -- raises
    :class:`Uncacheable`, and the caller builds without caching rather
    than risking a wrong hit.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    import enum

    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (list, tuple)):
        return tuple(canonical_value(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(canonical_value(item) for item in value))
    raise Uncacheable(repr(type(value)))


def scheme_key(topology, scheme_name: str, **params: object) -> str | None:
    """Content-addressed key for a converged routing scheme, or ``None``.

    The key covers the topology *content* (``Topology.content_key()``,
    which is invalidated on mutation) plus every canonicalizable
    constructor parameter.  ``workers`` is excluded -- it parallelizes the
    build without changing the converged state.  Returns ``None`` when any
    parameter is uncacheable.
    """
    try:
        canonical = tuple(
            (name, canonical_value(value))
            for name, value in sorted(params.items())
            if name != "workers"
        )
    except Uncacheable:
        return None
    return cache_key("scheme", topology.content_key(), scheme_name, canonical)


def cached_scheme(
    topology,
    scheme_name: str,
    build: Callable[[], T],
    **params: object,
) -> T:
    """Build (or fetch) a converged scheme through the active cache.

    ``params`` must be the full set of constructor inputs that shape the
    converged state (seed, shortcut mode, landmark set, ...).  With no
    active cache, or with an uncacheable parameter, this is ``build()``.
    Cached objects are shared -- callers must treat them as immutable.
    """
    cache = active_cache()
    if cache is None:
        return build()
    key = scheme_key(topology, scheme_name, **params)
    if key is None:
        return build()
    return cache.scheme(key, build)


_ACTIVE: ArtifactCache | None = None


def active_cache() -> ArtifactCache | None:
    """The cache the current scenario run installed, or ``None``."""
    return _ACTIVE


@contextmanager
def activated(cache: ArtifactCache | None) -> Iterator[ArtifactCache | None]:
    """Install ``cache`` as the process-global active cache for a block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous
