"""Declarative scenario engine for the experiment suite.

The pieces, bottom up:

* :mod:`repro.scenarios.spec` -- the :class:`Scenario` dataclass and the
  ``@scenario`` decorator the experiment modules register through.
* :mod:`repro.scenarios.registry` -- id/alias lookup with near-miss
  suggestions; :func:`load_catalog` imports the experiment package to
  populate it.
* :mod:`repro.scenarios.cache` -- the content-addressed artifact store
  deduplicating topologies, shared converged substrates, and scheme
  shells (in memory and, optionally, on disk).
* :mod:`repro.scenarios.lifecycle` -- cache manifest, stats, and the
  size/age eviction policy behind ``repro cache {stats,ls,clear,prune}``.
* :mod:`repro.scenarios.results` -- deterministic JSON serialization of
  scenario results.
* :mod:`repro.scenarios.engine` -- the planner and the serial / process-
  pool executor behind ``repro run --workers N --json-dir DIR``.

Only the spec/registry/cache layers are imported here; the engine pulls in
the experiment catalog and is imported on first use (``from
repro.scenarios.engine import run_scenarios``).
"""

from repro.scenarios.cache import ArtifactCache, active_cache, cache_key
from repro.scenarios.registry import (
    UnknownScenarioError,
    all_scenarios,
    load_catalog,
    resolve,
    scenario_ids,
    suggest,
)
from repro.scenarios.spec import Scenario, scenario

__all__ = [
    "ArtifactCache",
    "Scenario",
    "UnknownScenarioError",
    "active_cache",
    "all_scenarios",
    "cache_key",
    "load_catalog",
    "resolve",
    "scenario",
    "scenario_ids",
    "suggest",
]
