"""Cache lifecycle operations: manifest, stats, clear, and pruning.

The artifact store (:mod:`repro.scenarios.cache`) writes one
``<key>.meta.json`` sidecar next to every ``<key>.pkl`` it stores,
recording the artifact kind, payload byte count, creation time, and
last-hit time.  The sidecars *are* the cache manifest: they are written
and bumped atomically per artifact, so concurrent workers never contend
on one shared file.  This module aggregates them into the operator-facing
views behind ``repro cache {stats,ls,clear,prune}``:

* :func:`scan` lists every artifact with its metadata (synthesizing
  metadata from ``os.stat`` for a pickle whose sidecar is missing, e.g.
  after a crashed writer);
* :func:`cache_stats` aggregates totals per kind;
* :func:`write_manifest` materializes the aggregate view as
  ``<root>/manifest.json`` (a generated summary -- the sidecars stay
  authoritative);
* :func:`clear` removes every artifact;
* :func:`prune` applies the eviction policy.

Eviction policy
---------------
``prune(root, max_bytes=..., max_age_s=...)`` first drops artifacts whose
last hit is older than ``max_age_s``, then -- while the summed pickle
payload still exceeds ``max_bytes`` -- evicts in least-recently-hit order
(ties broken by creation time, then key, so the order is deterministic).
Eviction is exact with respect to the budget: it removes the minimal
prefix of that order whose removal brings the total to ``max_bytes`` or
below, and artifacts that fit stay untouched.  Budgets count pickle
payload bytes (sidecars are excluded; they are a few hundred bytes each).

Concurrency: eviction only ever unlinks complete artifacts (``*.tmp``
spool files of in-flight writers are ignored), deletes the pickle before
its sidecar (a reader observing the gap treats the artifact as a miss and
rebuilds), and tolerates files disappearing underneath it -- so it is
safe to run against a root that live workers are reading and writing.
Note that scheme shells reference their substrate artifact by key:
evicting a substrate silently demotes the shells that point at it to
misses (they rebuild on next use), which is correct, just slower.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from repro.scenarios.cache import ARTIFACT_SCHEMA, ArtifactCache

__all__ = [
    "ArtifactInfo",
    "PruneReport",
    "cache_stats",
    "clear",
    "prune",
    "scan",
    "write_manifest",
]

#: Artifact kind subdirectories, in display order.
KINDS = ("topology", "substrate", "tables", "scheme")


@dataclass(frozen=True)
class ArtifactInfo:
    """One on-disk artifact and its manifest metadata.

    ``bytes`` is the stored (compressed) payload size -- what eviction
    budgets count; ``raw_bytes`` is the uncompressed pickle size (equal to
    ``bytes`` for artifacts written before compression framing).
    """

    kind: str
    key: str
    path: str
    bytes: int
    created: float
    last_hit: float
    raw_bytes: int = 0

    @property
    def age_s(self) -> float:
        """Seconds since the last hit (or creation, if never hit)."""
        return max(0.0, time.time() - self.last_hit)


@dataclass(frozen=True)
class PruneReport:
    """What one :func:`prune` call removed and what remains."""

    removed: tuple[ArtifactInfo, ...]
    kept: tuple[ArtifactInfo, ...]

    @property
    def removed_bytes(self) -> int:
        return sum(info.bytes for info in self.removed)

    @property
    def kept_bytes(self) -> int:
        return sum(info.bytes for info in self.kept)


def _dir_bytes(path: str) -> int:
    """Summed file sizes of a slab directory (best-effort)."""
    total = 0
    try:
        with os.scandir(path) as entries:
            for entry in entries:
                try:
                    if entry.is_file(follow_symlinks=False):
                        total += entry.stat(follow_symlinks=False).st_size
                except OSError:
                    continue
    except OSError:
        return 0
    return total


def _read_meta(meta_path: str) -> dict | None:
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, ValueError):
        return None
    return meta if isinstance(meta, dict) else None


def scan(root: str | os.PathLike) -> list[ArtifactInfo]:
    """Every complete artifact under ``root``, sidecar metadata attached.

    Pickles without a readable sidecar fall back to ``os.stat`` (size;
    mtime for both timestamps).  ``*.tmp`` spool files and unknown
    filenames are ignored.  Artifacts vanishing mid-scan are skipped.
    """
    root = os.fspath(root)
    found: list[ArtifactInfo] = []
    for kind in KINDS:
        directory = os.path.join(root, kind)
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            continue
        for name in names:
            path = os.path.join(directory, name)
            if name.endswith(".pkl"):
                key = name[: -len(".pkl")]
            elif name.endswith(".slabs") and os.path.isdir(path):
                # Raw slab directory (large tables artifacts, mmap-attached
                # on load); its payload size is the sum of the slab files.
                key = name[: -len(".slabs")]
            else:
                continue
            meta = _read_meta(ArtifactCache.meta_path(path))
            try:
                stat = os.stat(path)
            except OSError:
                continue  # vanished mid-scan (concurrent prune/clear)
            default_bytes = (
                _dir_bytes(path) if name.endswith(".slabs") else stat.st_size
            )
            if meta is None:
                meta = {
                    "bytes": default_bytes,
                    "created": stat.st_mtime,
                    "last_hit": stat.st_mtime,
                }
            stored = int(meta.get("bytes", default_bytes))
            found.append(
                ArtifactInfo(
                    kind=kind,
                    key=key,
                    path=path,
                    bytes=stored,
                    created=float(meta.get("created", stat.st_mtime)),
                    last_hit=float(meta.get("last_hit", stat.st_mtime)),
                    raw_bytes=int(meta.get("raw_bytes", stored)),
                )
            )
    return found


def cache_stats(root: str | os.PathLike) -> dict:
    """Aggregate totals for ``root``: per-kind and overall counts/bytes."""
    return _aggregate(root, scan(root))


def _aggregate(root: str | os.PathLike, artifacts: list[ArtifactInfo]) -> dict:
    kinds = {}
    for kind in KINDS:
        of_kind = [info for info in artifacts if info.kind == kind]
        kinds[kind] = {
            "count": len(of_kind),
            "bytes": sum(info.bytes for info in of_kind),
            "raw_bytes": sum(info.raw_bytes for info in of_kind),
        }
    total_bytes = sum(info.bytes for info in artifacts)
    total_raw = sum(info.raw_bytes for info in artifacts)
    return {
        "schema": ARTIFACT_SCHEMA,
        "root": os.fspath(root),
        "count": len(artifacts),
        "bytes": total_bytes,
        "raw_bytes": total_raw,
        # Stored / raw: < 1.0 once compressed artifacts dominate.
        "compression_ratio": (
            round(total_bytes / total_raw, 4) if total_raw else None
        ),
        "kinds": kinds,
        "oldest_hit": min(
            (info.last_hit for info in artifacts), default=None
        ),
        "newest_hit": max(
            (info.last_hit for info in artifacts), default=None
        ),
    }


def write_manifest(root: str | os.PathLike) -> str:
    """Materialize the aggregate manifest as ``<root>/manifest.json``.

    A generated summary view (stats plus the per-artifact table); the
    per-artifact sidecars remain the source of truth.  Written atomically;
    returns the manifest path.
    """
    root = os.fspath(root)
    artifacts = scan(root)
    stats = _aggregate(root, artifacts)
    stats["artifacts"] = [
        {
            "kind": info.kind,
            "key": info.key,
            "bytes": info.bytes,
            "created": info.created,
            "last_hit": info.last_hit,
        }
        for info in artifacts
    ]
    path = os.path.join(root, "manifest.json")
    os.makedirs(root, exist_ok=True)
    payload = (json.dumps(stats, indent=2, sort_keys=True) + "\n").encode()
    ArtifactCache._atomic_write(path, payload, root)
    return path


def _remove(info: ArtifactInfo) -> bool:
    """Remove one artifact (payload first, then sidecar); False if gone.

    The payload is either a pickle file or a ``.slabs`` directory.
    """
    removed = False
    for path in (info.path, ArtifactCache.meta_path(info.path)):
        try:
            if os.path.isdir(path):
                import shutil

                shutil.rmtree(path)
            else:
                os.unlink(path)
            removed = True
        except FileNotFoundError:
            continue
        except OSError:
            continue
    return removed


def _sweep_orphan_sidecars(root: str | os.PathLike) -> None:
    """Unlink ``*.meta.json`` sidecars whose pickle is gone.

    Orphans appear when a writer crashes between the two unlinks of
    :func:`_remove`, or when a concurrent reader's last-hit bump
    re-creates a sidecar just evicted.  They carry no payload; sweeping
    them keeps ``clear``/``prune`` able to return a root to empty.
    """
    root = os.fspath(root)
    for kind in KINDS:
        directory = os.path.join(root, kind)
        try:
            names = os.listdir(directory)
        except OSError:
            continue
        for name in names:
            if not name.endswith(".meta.json"):
                continue
            stem = name[: -len(".meta.json")]
            if stem.endswith(".slabs"):
                # Sidecar of a slab directory: orphaned only when the
                # directory itself is gone.
                payload_path = os.path.join(directory, stem)
            else:
                payload_path = os.path.join(directory, stem + ".pkl")
            if os.path.exists(payload_path):
                continue
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                continue


def clear(root: str | os.PathLike) -> PruneReport:
    """Remove every artifact under ``root``; returns what was removed."""
    removed = tuple(info for info in scan(root) if _remove(info))
    _sweep_orphan_sidecars(root)
    return PruneReport(removed=removed, kept=())


def prune(
    root: str | os.PathLike,
    *,
    max_bytes: int | None = None,
    max_age_s: float | None = None,
    now: float | None = None,
    dry_run: bool = False,
) -> PruneReport:
    """Apply the eviction policy (see the module docstring) to ``root``.

    At least one of ``max_bytes`` / ``max_age_s`` should be given; with
    neither, this is a no-op scan.  ``now`` overrides the clock (tests).
    With ``dry_run`` nothing is unlinked: the report lists what *would*
    be evicted, and the store is untouched.
    """
    now = time.time() if now is None else now
    artifacts = scan(root)
    removed: list[ArtifactInfo] = []
    kept: list[ArtifactInfo] = []

    if max_age_s is not None:
        for info in artifacts:
            if now - info.last_hit > max_age_s:
                removed.append(info)
            else:
                kept.append(info)
    else:
        kept = list(artifacts)

    if max_bytes is not None:
        total = sum(info.bytes for info in kept)
        # Least-recently-hit first; deterministic tie-break.
        kept.sort(key=lambda info: (info.last_hit, info.created, info.key))
        survivors: list[ArtifactInfo] = []
        for index, info in enumerate(kept):
            if total > max_bytes:
                removed.append(info)
                total -= info.bytes
            else:
                survivors.extend(kept[index:])
                break
        kept = survivors

    if dry_run:
        return PruneReport(removed=tuple(removed), kept=tuple(kept))
    removed = [info for info in removed if _remove(info)]
    if removed:
        _sweep_orphan_sidecars(root)
    return PruneReport(removed=tuple(removed), kept=tuple(kept))
