"""Scenario registry: lookup, aliases, and near-miss suggestions.

Scenarios self-register at import time via the ``@scenario`` decorator
(:mod:`repro.scenarios.spec`).  :func:`load_catalog` imports the experiment
package, which pulls in every experiment module and therefore populates the
registry; callers that enumerate or resolve scenarios should call it first
(the engine and the CLI do).
"""

from __future__ import annotations

import difflib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.spec import Scenario

__all__ = [
    "UnknownScenarioError",
    "register",
    "load_catalog",
    "all_scenarios",
    "scenario_ids",
    "resolve",
    "suggest",
]

_REGISTRY: "dict[str, Scenario]" = {}
_ALIASES: dict[str, str] = {}


class UnknownScenarioError(KeyError):
    """Raised for an unknown scenario id; carries near-miss suggestions."""

    def __init__(self, scenario_id: str, suggestions: tuple[str, ...]) -> None:
        self.scenario_id = scenario_id
        self.suggestions = suggestions
        message = f"unknown experiment {scenario_id!r}"
        if suggestions:
            message += f"; did you mean: {', '.join(suggestions)}?"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ repr()s its argument
        return self.args[0]


def register(scenario: "Scenario") -> None:
    """Register ``scenario``; its id and aliases must be unclaimed."""
    existing = _REGISTRY.get(scenario.scenario_id)
    if existing is not None and existing.module != scenario.module:
        raise ValueError(
            f"scenario id {scenario.scenario_id!r} already registered "
            f"by {existing.module}"
        )
    _REGISTRY[scenario.scenario_id] = scenario
    for alias in scenario.aliases:
        claimed = _ALIASES.get(alias)
        if claimed is not None and claimed != scenario.scenario_id:
            raise ValueError(
                f"alias {alias!r} already points to {claimed!r}"
            )
        if alias in _REGISTRY:
            raise ValueError(f"alias {alias!r} shadows a scenario id")
        _ALIASES[alias] = scenario.scenario_id


def load_catalog() -> None:
    """Import every experiment module so all scenarios are registered."""
    import repro.experiments.runner  # noqa: F401  (import side effect)


def all_scenarios() -> "list[Scenario]":
    """Every registered scenario, in registration order."""
    load_catalog()
    return list(_REGISTRY.values())


def scenario_ids() -> list[str]:
    """Canonical scenario ids, in registration order."""
    load_catalog()
    return list(_REGISTRY)


def resolve(scenario_id: str) -> "Scenario":
    """Resolve an id or alias to its :class:`Scenario`.

    Raises
    ------
    UnknownScenarioError
        When neither an id nor an alias matches; the exception carries
        close-match suggestions for CLI error messages.
    """
    load_catalog()
    scenario = _REGISTRY.get(scenario_id)
    if scenario is not None:
        return scenario
    canonical = _ALIASES.get(scenario_id)
    if canonical is not None:
        return _REGISTRY[canonical]
    raise UnknownScenarioError(scenario_id, suggest(scenario_id))


def suggest(scenario_id: str, *, limit: int = 3) -> tuple[str, ...]:
    """Near-miss suggestions (ids and aliases) for a mistyped id."""
    load_catalog()
    candidates = list(_REGISTRY) + list(_ALIASES)
    matches = difflib.get_close_matches(
        scenario_id, candidates, n=limit, cutoff=0.4
    )
    if not matches:
        # Fall back to prefix/substring matches ("fig0" -> the figure ids).
        lowered = scenario_id.lower()
        matches = [c for c in candidates if lowered in c.lower()][:limit]
    return tuple(matches)
