"""Declarative scenario specs and the ``@scenario`` decorator.

A :class:`Scenario` describes one experiment of the paper's evaluation as
*data*: which topology family (or families) it exercises, which routing
schemes it builds, which metrics it measures, what the workload is, and how
it can be sharded for parallel execution.  The experiment modules under
:mod:`repro.experiments` register themselves by decorating their ``run``
function::

    @scenario(
        "fig04-gnm-comparison",
        title="Fig. 4: state/stretch/congestion on G(n,m)",
        family="gnm",
        protocols=("disco", "nd-disco", "s4", "vrr", "path-vector"),
        metrics=("state", "stretch", "congestion"),
        workload="converged-state comparison",
        aliases=("fig04",),
    )
    def run(scale=None): ...

Multi-panel and sweep experiments additionally declare **shards** --
independent units of work (one topology panel, one sweep size) the
execution engine can fan out over a process pool -- together with a
``shard_runner(scale, key)`` and a ``shard_merge(scale, parts)`` that
reassembles the exact result object ``run`` would have produced serially.
Serial and sharded execution are byte-identical by construction because
``run`` itself is written as ``shard_merge(scale, {k: shard_runner(scale,
k) for k in keys})``.

The spec layer has no dependency on the engine or the experiment modules;
see :mod:`repro.scenarios.registry` for lookup/aliases and
:mod:`repro.scenarios.engine` for execution.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import ExperimentScale

__all__ = ["Scenario", "scenario"]


@dataclass(frozen=True)
class Scenario:
    """One declaratively specified experiment.

    Attributes
    ----------
    scenario_id:
        Canonical id (also the legacy ``repro run`` experiment id).
    title:
        One-line human-readable description (shown by ``repro scenarios
        list`` and embedded in the JSON results).
    family:
        Topology families the scenario builds (``("gnm",)``,
        ``("geometric", "as-level", "router-level")``, ...).
    protocols:
        Routing schemes evaluated (registry names; empty for pure
        addressing/naming studies).
    metrics:
        What is measured (``"state"``, ``"stretch"``, ``"congestion"``,
        ``"messages"``, ...).
    workload:
        Short description of the measurement workload.
    aliases:
        Alternative ids accepted by the registry and the CLI.
    tags:
        Free-form labels; ``"quick"`` marks scenarios cheap enough for
        smoke runs and the determinism differential test.
    shards / shard_runner / shard_merge:
        Optional parallel decomposition (see the module docstring).
    """

    scenario_id: str
    title: str
    family: tuple[str, ...]
    protocols: tuple[str, ...]
    metrics: tuple[str, ...]
    workload: str
    module: str
    run: Callable[..., object]
    aliases: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()
    shards: object = None
    shard_runner: Callable[..., object] | None = None
    shard_merge: Callable[..., object] | None = None

    def format_report(self, result: object) -> str:
        """Render ``result`` with the owning module's ``format_report``."""
        return getattr(sys.modules[self.module], "format_report")(result)

    def shard_keys(self, scale: "ExperimentScale") -> tuple[str, ...]:
        """Shard keys for ``scale`` (empty tuple = not shardable)."""
        if self.shards is None:
            return ()
        if callable(self.shards):
            return tuple(self.shards(scale))
        return tuple(self.shards)

    def run_shard(self, scale: "ExperimentScale", key: str) -> object:
        """Run one shard; only valid when the scenario declares shards."""
        if self.shard_runner is None:
            raise ValueError(f"scenario {self.scenario_id!r} has no shards")
        return self.shard_runner(scale, key)

    def merge_shards(
        self, scale: "ExperimentScale", parts: Mapping[str, object]
    ) -> object:
        """Reassemble shard results into the scenario's result object."""
        if self.shard_merge is None:
            raise ValueError(f"scenario {self.scenario_id!r} has no shards")
        return self.shard_merge(scale, dict(parts))


def _as_tuple(value) -> tuple:
    if value is None:
        return ()
    if isinstance(value, str):
        return (value,)
    return tuple(value)


def scenario(
    scenario_id: str,
    *,
    title: str,
    family: str | Sequence[str] = (),
    protocols: Sequence[str] = (),
    metrics: Sequence[str] = (),
    workload: str = "",
    aliases: Sequence[str] = (),
    tags: Sequence[str] = (),
    shards: object = None,
    shard_runner: Callable[..., object] | None = None,
    shard_merge: Callable[..., object] | None = None,
) -> Callable[[Callable], Callable]:
    """Register the decorated ``run`` function as a :class:`Scenario`.

    The decorated function is returned unchanged, so the experiment
    modules' public ``run`` API is untouched.  ``format_report`` is
    resolved lazily from the decorated function's module, which lets the
    decorator sit above ``run`` even though ``format_report`` is defined
    further down the file.
    """
    if shards is not None and (shard_runner is None or shard_merge is None):
        raise ValueError(
            f"scenario {scenario_id!r} declares shards but no "
            "shard_runner/shard_merge"
        )

    def decorate(run_fn: Callable) -> Callable:
        from repro.scenarios.registry import register

        register(
            Scenario(
                scenario_id=scenario_id,
                title=title,
                family=_as_tuple(family),
                protocols=_as_tuple(protocols),
                metrics=_as_tuple(metrics),
                workload=workload,
                module=run_fn.__module__,
                run=run_fn,
                aliases=_as_tuple(aliases),
                tags=_as_tuple(tags),
                shards=shards,
                shard_runner=shard_runner,
                shard_merge=shard_merge,
            )
        )
        return run_fn

    return decorate
