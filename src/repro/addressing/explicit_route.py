"""Explicit routes: the forwarding half of an NDDisco address.

An explicit route is the sequence of per-hop forwarding labels that steers a
packet from a landmark ℓv down the landmark's shortest-path tree to the node
v (§4.2).  The route also remembers the node path it encodes, because several
parts of the system need it:

* the Up-Down-Stream / Path-Knowledge shortcutting heuristics inspect "the
  global identifiers of every node along the path" carried on the first
  packet (§4.2),
* the state accounting needs the bit size of the label encoding,
* the simulators replay the hops to charge congestion to edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.addressing.labels import LabelCodec

__all__ = ["ExplicitRoute"]


@dataclass(frozen=True)
class ExplicitRoute:
    """A label-encoded source route from ``path[0]`` to ``path[-1]``.

    Attributes
    ----------
    path:
        The node path, including both endpoints.
    labels:
        The per-hop local link indices (``len(path) - 1`` of them).
    bits:
        Size of the label encoding in bits.
    """

    path: tuple[int, ...]
    labels: tuple[int, ...]
    bits: int
    _reversed: "ExplicitRoute | None" = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.path) == 0:
            raise ValueError("explicit route must contain at least one node")
        if len(self.labels) != len(self.path) - 1:
            raise ValueError(
                f"label count {len(self.labels)} does not match path of "
                f"{len(self.path)} nodes"
            )
        if self.bits < 0:
            raise ValueError("bits must be >= 0")

    @classmethod
    def from_path(cls, codec: LabelCodec, path: Sequence[int]) -> "ExplicitRoute":
        """Build an explicit route for ``path`` using ``codec``'s link numbering."""
        labels = codec.encode_path(path)
        bits = codec.path_bits(path)
        return cls(path=tuple(path), labels=tuple(labels), bits=bits)

    @property
    def source(self) -> int:
        """First node of the route (the landmark, for an address route)."""
        return self.path[0]

    @property
    def destination(self) -> int:
        """Last node of the route (the addressed node)."""
        return self.path[-1]

    @property
    def hop_count(self) -> int:
        """Number of hops (edges) in the route."""
        return len(self.path) - 1

    @property
    def size_bytes(self) -> float:
        """Size of the label encoding in fractional bytes (bits / 8)."""
        return self.bits / 8.0

    @property
    def wire_bytes(self) -> int:
        """Size on the wire: whole bytes (bits rounded up)."""
        return math.ceil(self.bits / 8.0)

    def reversed_route(self, codec: LabelCodec) -> "ExplicitRoute":
        """Return the reverse route (destination back to source).

        Disco assumes "the route v ; ℓv can also be used in the reverse
        direction" (§6); packets travel landmark→node using the address route
        and node→landmark using its reverse.
        """
        return ExplicitRoute.from_path(codec, list(reversed(self.path)))

    def __len__(self) -> int:
        return len(self.path)
