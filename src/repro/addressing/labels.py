"""Per-hop forwarding labels encoded in O(log d) bits.

"Each hop at a node of degree d is encoded in O(log d) bits following the
format of [19]" (§4.2).  Concretely, a node with degree ``d`` numbers its
incident links ``0 .. d-1``; a forwarding label is that local link index, and
it takes ``ceil(log2(d))`` bits (minimum 1).  A whole explicit route is the
concatenation of the labels along the path, and its byte size is the total
bit count rounded up -- except when *averaging* over many routes, where the
paper keeps fractional bytes (hence "10.625 bytes").

:class:`LabelCodec` performs the mapping between neighbor node ids and local
link indices for every node of a topology, plus bit-level encode/decode of a
path into a label sequence.  The decode direction is what a packet's
forwarding plane would execute: at each hop, read ``ceil(log2(d))`` bits,
follow that local link.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.graphs.topology import Topology

__all__ = ["hop_label_bits", "route_label_bits", "LabelCodec"]


def hop_label_bits(degree: int) -> int:
    """Bits needed for one forwarding label at a node of the given degree.

    A degree-0 or degree-1 node still consumes one bit (there must be a label
    per hop so the route has positive length on the wire).
    """
    if degree < 0:
        raise ValueError(f"degree must be >= 0, got {degree}")
    if degree <= 1:
        return 1
    return max(1, math.ceil(math.log2(degree)))


def route_label_bits(topology: Topology, path: Sequence[int]) -> int:
    """Total label bits to encode ``path`` as an explicit route.

    The label consumed at hop ``i`` is read by node ``path[i]`` to pick the
    link toward ``path[i+1]``, so its width is determined by the degree of
    ``path[i]``.  A single-node path costs 0 bits.
    """
    total = 0
    for node in path[:-1]:
        total += hop_label_bits(topology.degree(node))
    return total


class LabelCodec:
    """Encode and decode explicit routes as per-hop local link indices.

    Parameters
    ----------
    topology:
        The topology whose link numbering defines the labels.  Each node's
        incident links are numbered by ascending neighbor id, which every
        node can compute locally and deterministically.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._link_index: list[dict[int, int]] = []
        self._link_order: list[list[int]] = []
        for node in topology.nodes():
            neighbors = sorted(topology.neighbors(node))
            self._link_order.append(neighbors)
            self._link_index.append(
                {neighbor: index for index, neighbor in enumerate(neighbors)}
            )

    @property
    def topology(self) -> Topology:
        """The topology this codec was built for."""
        return self._topology

    def label_for(self, node: int, neighbor: int) -> int:
        """Return the local link index at ``node`` for the link to ``neighbor``.

        Raises
        ------
        KeyError
            If ``neighbor`` is not adjacent to ``node``.
        """
        return self._link_index[node][neighbor]

    def neighbor_for(self, node: int, label: int) -> int:
        """Return the neighbor reached from ``node`` via local link ``label``.

        Raises
        ------
        IndexError
            If the label is out of range for the node's degree.
        """
        return self._link_order[node][label]

    def encode_path(self, path: Sequence[int]) -> list[int]:
        """Encode a node path as the list of per-hop labels.

        ``path`` must be a valid walk (consecutive nodes adjacent); the
        result has ``len(path) - 1`` labels.
        """
        labels = []
        for node, nxt in zip(path, path[1:]):
            try:
                labels.append(self._link_index[node][nxt])
            except KeyError as exc:
                raise ValueError(
                    f"path step ({node}, {nxt}) is not an edge of the topology"
                ) from exc
        return labels

    def decode_path(self, source: int, labels: Sequence[int]) -> list[int]:
        """Decode a label sequence starting at ``source`` back into a node path."""
        path = [source]
        node = source
        for label in labels:
            if not 0 <= label < len(self._link_order[node]):
                raise ValueError(
                    f"label {label} out of range at node {node} "
                    f"(degree {len(self._link_order[node])})"
                )
            node = self._link_order[node][label]
            path.append(node)
        return path

    def path_bits(self, path: Sequence[int]) -> int:
        """Total bits needed to encode ``path`` (same as :func:`route_label_bits`)."""
        return route_label_bits(self._topology, path)

    def path_bytes(self, path: Sequence[int]) -> float:
        """Size of the encoded ``path`` in (possibly fractional) bytes.

        Fractional bytes are kept so that *mean* address sizes can be
        reported the way the paper does (e.g. a mean of 2.93 bytes); callers
        that need an on-the-wire size should ``math.ceil`` the result.
        """
        return self.path_bits(path) / 8.0
