"""The fixed-size address alternative of §4.2 (hierarchical block assignment).

The paper's default address embeds an explicit route, which is variable
length (worst case Õ(√n) bits on a ring).  §4.2 sketches the alternative:

    "The explicit route could be eliminated.  Briefly, an address would be
    fixed at O(log n) bits; each landmark ℓ would dynamically partition this
    block of addresses among its neighbors in proportion to their number of
    descendants, and this would continue recursively down the shortest-path
    tree rooted at ℓ, analogous to a hierarchical assignment of IP
    addresses."

The paper chose the explicit-route design because it is simpler and because
the block scheme "actually increase[s] the mean address size in practice".
This module implements the block scheme so that claim can be measured (see
the address-design ablation experiment): each landmark owns a 2^B-value
block, recursively split among subtree children proportionally to their
descendant counts (every subtree gets at least one value), and a node's
address is (landmark id, block offset).  Forwarding works by each node
remembering, per child, the sub-range delegated to it -- state that is
already covered by the label-mapping accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.graphs.topology import Topology
from repro.utils.validation import require_positive

__all__ = ["BlockAddress", "BlockAddressAllocator"]


@dataclass(frozen=True)
class BlockAddress:
    """A fixed-size address: (landmark, offset within the landmark's block).

    Attributes
    ----------
    node:
        The addressed node.
    landmark:
        The landmark whose shortest-path tree the node hangs off.
    offset:
        The node's position within the landmark's address block.
    bits:
        The (fixed) number of bits of the offset field.
    """

    node: int
    landmark: int
    offset: int
    bits: int

    @property
    def size_bytes(self) -> float:
        """Address size in fractional bytes: landmark id (4 B) + offset bits."""
        return 4.0 + self.bits / 8.0


class BlockAddressAllocator:
    """Assigns fixed-size block addresses down a landmark's shortest-path tree.

    Parameters
    ----------
    topology:
        The network.
    tree_parents:
        For one landmark's shortest-path tree: mapping node -> parent (the
        landmark itself is absent or maps to a negative value).
    landmark:
        The tree's root.
    block_bits:
        Number of offset bits.  Defaults to ``ceil(log2(n)) + 2`` -- O(log n)
        with the small constant slack the recursive proportional split needs
        to guarantee every subtree at least one value.
    """

    def __init__(
        self,
        topology: Topology,
        landmark: int,
        tree_parents: Mapping[int, int],
        *,
        block_bits: int | None = None,
    ) -> None:
        self._topology = topology
        self._landmark = landmark
        self._parents = {
            node: parent for node, parent in tree_parents.items() if parent >= 0
        }
        n = topology.num_nodes
        require_positive("num_nodes", n)
        if block_bits is None:
            block_bits = max(1, math.ceil(math.log2(max(n, 2)))) + 2
        require_positive("block_bits", block_bits)
        self._block_bits = block_bits

        self._children: dict[int, list[int]] = {}
        for node, parent in self._parents.items():
            self._children.setdefault(parent, []).append(node)
        for children in self._children.values():
            children.sort()

        self._subtree_sizes: dict[int, int] = {}
        self._compute_subtree_size(landmark)
        self._offsets: dict[int, int] = {}
        self._ranges: dict[int, tuple[int, int]] = {}
        self._assign(landmark, 0, 1 << block_bits)

    # -- construction helpers -------------------------------------------------

    def _compute_subtree_size(self, root: int) -> int:
        # Iterative post-order to avoid recursion limits on deep trees (rings).
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                self._subtree_sizes[node] = 1 + sum(
                    self._subtree_sizes[child]
                    for child in self._children.get(node, ())
                )
                continue
            stack.append((node, True))
            for child in self._children.get(node, ()):
                stack.append((child, False))
        return self._subtree_sizes[root]

    def _assign(self, root: int, start: int, size: int) -> None:
        """Recursively split [start, start+size) among ``root`` and its subtrees."""
        stack = [(root, start, size)]
        while stack:
            node, node_start, node_size = stack.pop()
            if node_size < 1:
                raise ValueError(
                    f"address block exhausted at node {node}; "
                    f"increase block_bits (currently {self._block_bits})"
                )
            self._ranges[node] = (node_start, node_size)
            self._offsets[node] = node_start
            children = self._children.get(node, ())
            if not children:
                continue
            # One value for the node itself, the rest split proportionally to
            # descendant counts.  Every child is guaranteed at least as many
            # values as it has subtree nodes, so the recursion never runs out
            # as long as the root block holds >= n values (the default block
            # size holds ~4n).
            remaining = node_size - 1
            total_descendants = sum(self._subtree_sizes[c] for c in children)
            if remaining < total_descendants:
                raise ValueError(
                    f"address block too small at node {node}: {remaining} values "
                    f"for {total_descendants} descendants; increase block_bits"
                )
            block_end = node_start + node_size
            cursor = node_start + 1
            descendants_after = total_descendants
            for index, child in enumerate(children):
                child_nodes = self._subtree_sizes[child]
                descendants_after -= child_nodes
                if index == len(children) - 1:
                    share = block_end - cursor
                else:
                    proportional = int(
                        round(remaining * child_nodes / total_descendants)
                    )
                    share = max(child_nodes, proportional)
                    # Leave enough room for every remaining child's subtree.
                    share = min(share, block_end - cursor - descendants_after)
                stack.append((child, cursor, share))
                cursor += share

    # -- queries -----------------------------------------------------------------

    @property
    def block_bits(self) -> int:
        """Number of offset bits in every address."""
        return self._block_bits

    @property
    def landmark(self) -> int:
        """The tree root."""
        return self._landmark

    def covered_nodes(self) -> set[int]:
        """Nodes of the landmark's tree that received an address."""
        return set(self._offsets)

    def address_of(self, node: int) -> BlockAddress:
        """Return the fixed-size address of ``node``.

        Raises
        ------
        KeyError
            If the node is not part of this landmark's tree.
        """
        return BlockAddress(
            node=node,
            landmark=self._landmark,
            offset=self._offsets[node],
            bits=self._block_bits,
        )

    def range_of(self, node: int) -> tuple[int, int]:
        """Return the (start, size) sub-block delegated to ``node``'s subtree."""
        return self._ranges[node]

    def forward(self, current: int, offset: int) -> int | None:
        """One forwarding decision: which child owns ``offset`` at ``current``.

        Returns the next hop (a child of ``current`` in the tree) or None if
        the offset addresses ``current`` itself.

        Raises
        ------
        ValueError
            If ``offset`` is outside the sub-block delegated to ``current``.
        """
        start, size = self._ranges[current]
        if not start <= offset < start + size:
            raise ValueError(
                f"offset {offset} is outside node {current}'s block "
                f"[{start}, {start + size})"
            )
        if offset == self._offsets[current]:
            return None
        for child in self._children.get(current, ()):
            child_start, child_size = self._ranges[child]
            if child_start <= offset < child_start + child_size:
                return child
        raise ValueError(
            f"offset {offset} is in node {current}'s block but delegated to no child"
        )

    def route(self, offset: int) -> list[int]:
        """Follow forwarding decisions from the landmark to the offset's owner."""
        path = [self._landmark]
        current = self._landmark
        while True:
            next_hop = self.forward(current, offset)
            if next_hop is None:
                return path
            path.append(next_hop)
            current = next_hop
