"""NDDisco / Disco node addresses.

"The address of node v is the identifier of its closest landmark ℓv, paired
with the necessary information to forward along ℓv ; v" (§4.2), where that
information is an :class:`~repro.addressing.ExplicitRoute`.  Addresses are
location-dependent but used only internally by the protocol, and they are
what the name-resolution database and the sloppy-group dissemination protocol
carry around.

Byte accounting
---------------
Fig. 7 of the paper reports per-node state both in entries and in bytes, for
two name sizes: IPv4-sized (4-byte) and IPv6-sized (16-byte) node names.  An
address's byte size is::

    name_bytes(landmark identifier) + explicit-route label bytes

and a (name, address) mapping entry additionally pays ``name_bytes`` for the
destination's own name.  Those constants and helpers live here so every state
metric uses identical arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.addressing.explicit_route import ExplicitRoute

__all__ = ["Address", "NAME_BYTES_IPV4", "NAME_BYTES_IPV6"]

NAME_BYTES_IPV4 = 4
"""Size of a node name/identifier when names are IPv4-sized (Fig. 7)."""

NAME_BYTES_IPV6 = 16
"""Size of a node name/identifier when names are IPv6-sized (Fig. 7)."""


@dataclass(frozen=True)
class Address:
    """The routable address of a node.

    Attributes
    ----------
    node:
        The node this address belongs to (its graph id; the *name* is a
        separate :class:`~repro.naming.FlatName`).
    landmark:
        The node's closest landmark ℓv.
    route:
        Explicit route from ``landmark`` to ``node``.  For a node that is its
        own landmark the route is the single-node path ``(node,)``.
    """

    node: int
    landmark: int
    route: ExplicitRoute

    def __post_init__(self) -> None:
        if self.route.source != self.landmark:
            raise ValueError(
                f"address route must start at the landmark {self.landmark}, "
                f"starts at {self.route.source}"
            )
        if self.route.destination != self.node:
            raise ValueError(
                f"address route must end at the node {self.node}, "
                f"ends at {self.route.destination}"
            )

    @property
    def is_landmark_self(self) -> bool:
        """True if the node is itself a landmark (empty forwarding route)."""
        return self.node == self.landmark

    def size_bytes(self, name_bytes: int = NAME_BYTES_IPV4) -> float:
        """Size of the address: landmark identifier plus the route labels.

        Fractional bytes are preserved (see
        :attr:`repro.addressing.ExplicitRoute.size_bytes`).
        """
        if name_bytes <= 0:
            raise ValueError(f"name_bytes must be > 0, got {name_bytes}")
        return float(name_bytes) + self.route.size_bytes

    def mapping_entry_bytes(self, name_bytes: int = NAME_BYTES_IPV4) -> float:
        """Size of a (destination name -> address) mapping entry.

        Used for name-resolution entries at landmarks and sloppy-group
        address entries at every group member.
        """
        return float(name_bytes) + self.size_bytes(name_bytes)

    def __repr__(self) -> str:
        return (
            f"Address(node={self.node}, landmark={self.landmark}, "
            f"hops={self.route.hop_count}, bits={self.route.bits})"
        )
