"""Compact addresses: per-hop labels, explicit routes, and node addresses.

NDDisco's address for node ``v`` is "the identifier of its closest landmark
ℓv, paired with the necessary information to forward along ℓv ; v" -- an
explicit route of per-hop forwarding labels, each encoded in O(log d) bits at
a node of degree d (§4.2, following the Pathlet-routing label format).  This
package implements that encoding, the explicit-route container, the address
object, and the byte accounting the paper uses when it reports that addresses
on the router-level Internet map average 2.93 bytes.
"""

from repro.addressing.labels import (
    LabelCodec,
    hop_label_bits,
    route_label_bits,
)
from repro.addressing.explicit_route import ExplicitRoute
from repro.addressing.address import Address, NAME_BYTES_IPV4, NAME_BYTES_IPV6

__all__ = [
    "Address",
    "ExplicitRoute",
    "LabelCodec",
    "NAME_BYTES_IPV4",
    "NAME_BYTES_IPV6",
    "hop_label_bits",
    "route_label_bits",
]
