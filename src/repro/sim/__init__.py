"""Discrete-event simulation of the protocols' control planes.

The static models in :mod:`repro.core` and :mod:`repro.protocols` capture the
*converged* state; this package simulates how that state is built: path-vector
route exchange (full, or filtered to landmarks + vicinities as NDDisco does,
or filtered to clusters as S4 does), the landmark registration step, and the
overlay dissemination of addresses.  It produces the control-messaging
numbers behind Fig. 8 and the static-vs-dynamic accuracy comparison of §5.2.

Layout
------
* :mod:`repro.sim.events` / :mod:`repro.sim.simulator` -- the event queue and
  virtual clock.
* :mod:`repro.sim.messages` / :mod:`repro.sim.network` -- message objects and
  the network fabric that delivers them with per-link latency and counts
  per-node traffic.
* :mod:`repro.sim.agents` -- per-node protocol agents (path vector with
  pluggable route-acceptance policies).
* :mod:`repro.sim.convergence` -- high-level runners returning
  :class:`~repro.sim.convergence.ConvergenceReport` objects.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.simulator import Simulator
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.convergence import (
    ConvergenceReport,
    simulate_disco_convergence,
    simulate_nddisco_convergence,
    simulate_path_vector_convergence,
    simulate_s4_convergence,
)

__all__ = [
    "ConvergenceReport",
    "Event",
    "EventQueue",
    "Message",
    "Network",
    "Simulator",
    "simulate_disco_convergence",
    "simulate_nddisco_convergence",
    "simulate_path_vector_convergence",
    "simulate_s4_convergence",
]
