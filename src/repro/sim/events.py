"""The event queue of the discrete-event simulator.

Events are ordered by (time, sequence number) so simultaneous events fire in
scheduling order, which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Virtual time at which the event fires.
    sequence:
        Monotonic tie-breaker assigned by the queue.
    action:
        Zero-argument callable executed when the event fires.
    cancelled:
        Events can be cancelled in place; the queue skips them.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def push(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at ``time``; returns the event handle."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time}")
        event = Event(time=time, sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (no-op if already fired)."""
        self._cancelled.add(event.sequence)

    def pop(self) -> Event | None:
        """Pop and return the next live event, or None if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.sequence in self._cancelled:
                self._cancelled.discard(event.sequence)
                continue
            return event
        return None

    def peek_time(self) -> float | None:
        """Return the time of the next live event without removing it."""
        while self._heap and self._heap[0].sequence in self._cancelled:
            event = heapq.heappop(self._heap)
            self._cancelled.discard(event.sequence)
        return self._heap[0].time if self._heap else None
