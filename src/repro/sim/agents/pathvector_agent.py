"""Path-vector agents with pluggable route-acceptance policies.

NDDisco learns its landmark and vicinity routes "via a single, standard path
vector routing protocol.  When learning paths, a route announcement is
accepted into v's routing table if and only if the route's destination is a
landmark or one of the Θ(√(n log n)) closest nodes currently advertised to
v.  The entire routing table is then exported to v's neighbors" (§4.2).

The same agent therefore models three protocols, differing only in their
acceptance policy:

* :class:`AcceptAllPolicy` -- plain path vector (the Fig. 8 baseline);
* :class:`LandmarkVicinityPolicy` -- NDDisco/Disco route learning (landmarks
  plus a capacity-bounded vicinity);
* :class:`ClusterPolicy` -- S4 route learning (landmarks plus the
  Thorup-Zwick cluster condition "closer to me than to your own landmark").

Messaging model: route changes are batched; when a node's table changes it
schedules one flush, and the flush sends one message per neighbor carrying
all changed routes.  The per-destination advertisements inside a flush are
counted as ``entries`` (this is the unit Fig. 8 is reproduced in, since a
classic path-vector UPDATE carries one destination).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.sim.agents.base import Agent
from repro.sim.messages import Message, RouteAdvertisement
from repro.sim.network import Network

__all__ = [
    "RouteEntry",
    "RoutePolicy",
    "AcceptAllPolicy",
    "LandmarkVicinityPolicy",
    "ClusterPolicy",
    "PathVectorAgent",
]

_COST_EPSILON = 1e-9


@dataclass
class RouteEntry:
    """One installed route: destination, full path from this node, and cost."""

    destination: int
    path: tuple[int, ...]
    cost: float
    origin_landmark_distance: float | None = None


class RoutePolicy(abc.ABC):
    """Decides which advertised routes a node installs."""

    @abc.abstractmethod
    def is_always_kept(self, agent: "PathVectorAgent", destination: int) -> bool:
        """Destinations that are never subject to capacity eviction."""

    @abc.abstractmethod
    def accepts(
        self,
        agent: "PathVectorAgent",
        advertisement: RouteAdvertisement,
        cost: float,
    ) -> bool:
        """Whether a *new* destination's route should be installed."""

    def evictions(self, agent: "PathVectorAgent") -> list[int]:
        """Destinations to drop after an installation (capacity control)."""
        return []

    def still_acceptable(
        self, agent: "PathVectorAgent", entry: RouteEntry
    ) -> bool:
        """Whether an installed entry remains valid under updated metadata."""
        return True


class AcceptAllPolicy(RoutePolicy):
    """Plain path vector: keep the best route to every destination."""

    def is_always_kept(self, agent: "PathVectorAgent", destination: int) -> bool:
        return True

    def accepts(
        self,
        agent: "PathVectorAgent",
        advertisement: RouteAdvertisement,
        cost: float,
    ) -> bool:
        return True


class LandmarkVicinityPolicy(RoutePolicy):
    """NDDisco route learning: landmarks plus a bounded vicinity.

    Parameters
    ----------
    landmarks:
        The globally known landmark set.
    vicinity_capacity:
        Maximum number of non-landmark destinations kept (the Θ(√(n log n))
        vicinity size).
    """

    def __init__(self, landmarks: set[int], vicinity_capacity: int) -> None:
        if vicinity_capacity < 1:
            raise ValueError("vicinity_capacity must be >= 1")
        self.landmarks = set(landmarks)
        self.vicinity_capacity = vicinity_capacity

    def is_always_kept(self, agent: "PathVectorAgent", destination: int) -> bool:
        return destination in self.landmarks

    def _vicinity_entries(self, agent: "PathVectorAgent") -> list[RouteEntry]:
        return [
            entry
            for destination, entry in agent.table.items()
            if destination != agent.node and destination not in self.landmarks
        ]

    def accepts(
        self,
        agent: "PathVectorAgent",
        advertisement: RouteAdvertisement,
        cost: float,
    ) -> bool:
        if advertisement.destination in self.landmarks:
            return True
        vicinity = self._vicinity_entries(agent)
        if len(vicinity) < self.vicinity_capacity:
            return True
        worst = max(entry.cost for entry in vicinity)
        return cost < worst - _COST_EPSILON

    def evictions(self, agent: "PathVectorAgent") -> list[int]:
        vicinity = self._vicinity_entries(agent)
        excess = len(vicinity) - self.vicinity_capacity
        if excess <= 0:
            return []
        vicinity.sort(key=lambda entry: (entry.cost, entry.destination))
        return [entry.destination for entry in vicinity[self.vicinity_capacity :]]


class ClusterPolicy(RoutePolicy):
    """S4 route learning: landmarks plus the Thorup-Zwick cluster condition.

    A route to destination w is kept iff ``cost < d(w, ℓw)``, where the
    destination's distance to its own closest landmark travels inside the
    advertisement and tightens as the landmark routes converge.
    """

    def __init__(self, landmarks: set[int]) -> None:
        self.landmarks = set(landmarks)

    def is_always_kept(self, agent: "PathVectorAgent", destination: int) -> bool:
        return destination in self.landmarks

    def accepts(
        self,
        agent: "PathVectorAgent",
        advertisement: RouteAdvertisement,
        cost: float,
    ) -> bool:
        if advertisement.destination in self.landmarks:
            return True
        origin_distance = advertisement.origin_landmark_distance
        if origin_distance is None:
            return False
        return cost < origin_distance - _COST_EPSILON

    def still_acceptable(
        self, agent: "PathVectorAgent", entry: RouteEntry
    ) -> bool:
        if entry.destination in self.landmarks or entry.destination == agent.node:
            return True
        if entry.origin_landmark_distance is None:
            return False
        return entry.cost < entry.origin_landmark_distance - _COST_EPSILON


class PathVectorAgent(Agent):
    """A node running (possibly filtered) path-vector route exchange.

    Parameters
    ----------
    node, network:
        The node id and the network fabric.
    policy:
        The route-acceptance policy.
    landmarks:
        The landmark set (used to track the node's own closest-landmark
        distance, which is advertised for S4-style cluster acceptance).
    advertise_delay:
        Batching delay between a table change and the resulting flush.
    """

    def __init__(
        self,
        node: int,
        network: Network,
        policy: RoutePolicy,
        *,
        landmarks: set[int] | None = None,
        advertise_delay: float = 0.05,
    ) -> None:
        super().__init__(node, network)
        self._policy = policy
        self._landmarks = set(landmarks) if landmarks else set()
        self._advertise_delay = advertise_delay
        self.table: dict[int, RouteEntry] = {}
        self._pending: set[int] = set()
        self._flush_scheduled = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Install the self route and announce it."""
        self.table[self.node] = RouteEntry(
            destination=self.node,
            path=(self.node,),
            cost=0.0,
            origin_landmark_distance=self._own_landmark_distance(),
        )
        self._mark_pending(self.node)

    # -- helpers ---------------------------------------------------------------

    def _own_landmark_distance(self) -> float | None:
        if self.node in self._landmarks:
            return 0.0
        best: float | None = None
        for landmark in self._landmarks:
            entry = self.table.get(landmark)
            if entry is not None and (best is None or entry.cost < best):
                best = entry.cost
        return best

    def _mark_pending(self, destination: int) -> None:
        self._pending.add(destination)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.schedule(self._advertise_delay, self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._pending:
            return
        pending = sorted(self._pending)
        self._pending.clear()
        advertisements = []
        for destination in pending:
            entry = self.table.get(destination)
            if entry is None:
                continue
            advertisements.append(
                RouteAdvertisement(
                    destination=destination,
                    path=entry.path,
                    cost=entry.cost,
                    origin_landmark_distance=entry.origin_landmark_distance,
                )
            )
        if not advertisements:
            return
        payload = tuple(advertisements)
        for neighbor in sorted(self.neighbors()):
            self.send(
                neighbor,
                "route-update",
                payload,
                size_entries=len(advertisements),
            )

    # -- message handling ---------------------------------------------------------

    def on_message(self, message: Message) -> None:
        """Process a batch of route advertisements from a neighbor."""
        if message.kind != "route-update":
            return
        sender = message.sender
        link_cost = self.network.topology.edge_weight(self.node, sender)
        landmark_distance_before = self._own_landmark_distance()
        for advertisement in message.payload:
            self._process_advertisement(sender, link_cost, advertisement)
        # If the node's own closest-landmark distance improved, its self
        # advertisement (which carries that distance for cluster acceptance)
        # must be refreshed, and cluster entries re-validated downstream.
        landmark_distance_after = self._own_landmark_distance()
        if landmark_distance_after != landmark_distance_before:
            self_entry = self.table.get(self.node)
            if self_entry is not None:
                self.table[self.node] = RouteEntry(
                    destination=self.node,
                    path=(self.node,),
                    cost=0.0,
                    origin_landmark_distance=landmark_distance_after,
                )
                self._mark_pending(self.node)

    def _process_advertisement(
        self, sender: int, link_cost: float, advertisement: RouteAdvertisement
    ) -> None:
        destination = advertisement.destination
        if destination == self.node:
            return
        if self.node in advertisement.path:
            return  # loop suppression
        cost = link_cost + advertisement.cost
        candidate_path = (self.node,) + advertisement.path
        current = self.table.get(destination)

        if current is not None:
            improved = cost < current.cost - _COST_EPSILON
            metadata_changed = (
                advertisement.origin_landmark_distance
                != current.origin_landmark_distance
                and current.path[1:2] == (sender,)
            )
            if not improved and not metadata_changed:
                return
            new_entry = RouteEntry(
                destination=destination,
                path=candidate_path if improved else current.path,
                cost=cost if improved else current.cost,
                origin_landmark_distance=advertisement.origin_landmark_distance,
            )
            if not self._policy.still_acceptable(self, new_entry):
                del self.table[destination]
                return
            self.table[destination] = new_entry
            if improved:
                self._mark_pending(destination)
            return

        if not self._policy.accepts(self, advertisement, cost):
            return
        self.table[destination] = RouteEntry(
            destination=destination,
            path=candidate_path,
            cost=cost,
            origin_landmark_distance=advertisement.origin_landmark_distance,
        )
        self._mark_pending(destination)
        for evicted in self._policy.evictions(self):
            if evicted in self.table:
                del self.table[evicted]

    # -- inspection -----------------------------------------------------------------

    def routes(self) -> dict[int, RouteEntry]:
        """A copy of the node's current routing table."""
        return dict(self.table)

    def known_destinations(self) -> set[int]:
        """Destinations (other than the node itself) with installed routes."""
        return {dest for dest in self.table if dest != self.node}
