"""Base class for protocol agents running on simulated nodes."""

from __future__ import annotations

import abc

from repro.sim.messages import Message
from repro.sim.network import Network

__all__ = ["Agent"]


class Agent(abc.ABC):
    """A protocol instance running on one node of the simulated network.

    Subclasses implement :meth:`start` (invoked once at time zero) and
    :meth:`on_message`.  Sending is done through :meth:`send`, which routes
    through the network fabric so that latency and traffic accounting are
    applied uniformly.
    """

    def __init__(self, node: int, network: Network) -> None:
        self._node = node
        self._network = network
        network.attach(self)

    @property
    def node(self) -> int:
        """The node id this agent runs on."""
        return self._node

    @property
    def network(self) -> Network:
        """The network fabric."""
        return self._network

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._network.simulator.now

    def neighbors(self) -> list[int]:
        """Physical neighbors of this node."""
        return self._network.topology.neighbors(self._node)

    def send(self, receiver: int, kind: str, payload=None, *, size_entries: int = 1) -> None:
        """Send a message to a physical neighbor."""
        self._network.send(
            Message(
                sender=self._node,
                receiver=receiver,
                kind=kind,
                payload=payload,
                size_entries=size_entries,
            )
        )

    def schedule(self, delay: float, action) -> None:
        """Schedule a callback on the shared simulator."""
        self._network.simulator.schedule_in(delay, action)

    @abc.abstractmethod
    def start(self) -> None:
        """Called once when the simulation starts."""

    @abc.abstractmethod
    def on_message(self, message: Message) -> None:
        """Called when a message addressed to this node is delivered."""
