"""Per-node protocol agents for the discrete-event simulator."""

from repro.sim.agents.base import Agent
from repro.sim.agents.pathvector_agent import (
    AcceptAllPolicy,
    ClusterPolicy,
    LandmarkVicinityPolicy,
    PathVectorAgent,
    RouteEntry,
    RoutePolicy,
)

__all__ = [
    "AcceptAllPolicy",
    "Agent",
    "ClusterPolicy",
    "LandmarkVicinityPolicy",
    "PathVectorAgent",
    "RouteEntry",
    "RoutePolicy",
]
