"""Control-plane message objects exchanged by protocol agents."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "RouteAdvertisement"]


@dataclass(frozen=True)
class RouteAdvertisement:
    """One path-vector route advertisement.

    Attributes
    ----------
    destination:
        The destination node the route leads to.
    path:
        The node path from the advertising neighbor to the destination (the
        advertising neighbor first).  Loop suppression checks membership.
    cost:
        Total weighted cost of the path.
    origin_landmark_distance:
        The destination's own distance to its closest landmark, carried so
        that S4-style cluster acceptance can be evaluated by receivers.
        ``None`` when unknown/not applicable.
    withdrawn:
        True if this advertisement withdraws the route instead of announcing.
    """

    destination: int
    path: tuple[int, ...]
    cost: float
    origin_landmark_distance: float | None = None
    withdrawn: bool = False


@dataclass(frozen=True)
class Message:
    """A control message sent from one node to a physical neighbor.

    Attributes
    ----------
    sender, receiver:
        Physical endpoints (must be adjacent in the topology).
    kind:
        Message type label (e.g. ``"route-update"``, ``"overlay-announce"``).
    payload:
        Message body; for route updates this is a tuple of
        :class:`RouteAdvertisement`.
    size_entries:
        How many logical routing entries the message carries -- the unit Fig. 8
        counts (one path-vector UPDATE per destination).
    """

    sender: int
    receiver: int
    kind: str
    payload: Any = None
    size_entries: int = 1

    def __post_init__(self) -> None:
        if self.size_entries < 0:
            raise ValueError("size_entries must be >= 0")
