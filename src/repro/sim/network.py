"""The network fabric: delivers control messages and counts traffic.

The fabric connects per-node protocol agents over a
:class:`~repro.graphs.Topology`.  Sending a message to a physical neighbor
schedules its delivery after the link's latency (the edge weight) plus a
small per-hop processing delay; per-node counters track messages and logical
routing entries sent, which is what the convergence experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.graphs.topology import Topology
from repro.sim.messages import Message
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.agents.base import Agent

__all__ = ["Network", "TrafficCounters"]


@dataclass
class TrafficCounters:
    """Per-node control-traffic counters."""

    messages_sent: int = 0
    entries_sent: int = 0
    messages_received: int = 0
    entries_received: int = 0


class Network:
    """Connects agents over a topology and delivers their messages.

    Parameters
    ----------
    topology:
        The physical network.
    simulator:
        The event scheduler messages are delivered through.
    processing_delay:
        Fixed per-message processing delay added to the link latency, which
        breaks ties and models non-zero forwarding cost.
    """

    def __init__(
        self,
        topology: Topology,
        simulator: Simulator,
        *,
        processing_delay: float = 0.01,
    ) -> None:
        if processing_delay < 0:
            raise ValueError("processing_delay must be >= 0")
        self._topology = topology
        self._simulator = simulator
        self._processing_delay = processing_delay
        self._agents: dict[int, "Agent"] = {}
        self._counters = [TrafficCounters() for _ in range(topology.num_nodes)]

    # -- wiring ------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The physical topology."""
        return self._topology

    @property
    def simulator(self) -> Simulator:
        """The event scheduler."""
        return self._simulator

    def attach(self, agent: "Agent") -> None:
        """Register ``agent`` as the protocol instance running on its node."""
        if agent.node in self._agents:
            raise ValueError(f"node {agent.node} already has an agent attached")
        self._agents[agent.node] = agent

    def agent(self, node: int) -> "Agent":
        """Return the agent running on ``node``."""
        return self._agents[node]

    def start(self) -> None:
        """Invoke every agent's ``start`` hook at time zero."""
        for node in sorted(self._agents):
            agent = self._agents[node]
            self._simulator.schedule_in(0.0, agent.start)

    # -- message delivery ----------------------------------------------------

    def send(self, message: Message) -> None:
        """Send ``message`` from its sender to an adjacent receiver."""
        sender, receiver = message.sender, message.receiver
        if not self._topology.has_edge(sender, receiver):
            raise ValueError(
                f"cannot send between non-adjacent nodes {sender} and {receiver}"
            )
        latency = self._topology.edge_weight(sender, receiver)
        counters = self._counters[sender]
        counters.messages_sent += 1
        counters.entries_sent += message.size_entries

        def deliver() -> None:
            receiving = self._counters[receiver]
            receiving.messages_received += 1
            receiving.entries_received += message.size_entries
            self._agents[receiver].on_message(message)

        self._simulator.schedule_in(latency + self._processing_delay, deliver)

    # -- accounting -----------------------------------------------------------

    def counters(self, node: int) -> TrafficCounters:
        """Traffic counters for ``node``."""
        return self._counters[node]

    def total_messages(self) -> int:
        """Total control messages sent network-wide."""
        return sum(c.messages_sent for c in self._counters)

    def total_entries(self) -> int:
        """Total logical routing entries sent network-wide."""
        return sum(c.entries_sent for c in self._counters)

    def messages_per_node(self) -> float:
        """Mean control messages sent per node."""
        if not self._counters:
            return 0.0
        return self.total_messages() / len(self._counters)

    def entries_per_node(self) -> float:
        """Mean logical routing entries sent per node."""
        if not self._counters:
            return 0.0
        return self.total_entries() / len(self._counters)
