"""High-level convergence runs for every protocol (Fig. 8).

Each ``simulate_*_convergence`` function wires up one agent per node, runs the
event loop until the control plane quiesces, and returns a
:class:`ConvergenceReport` with per-node message and entry counts plus (when
useful) the converged routing tables -- the latter feed the §5.2
static-vs-dynamic accuracy experiment.

Disco's report adds the pieces beyond route learning that the paper's Fig. 8
accounts for: the landmark-registration messages (each node inserting its
address into the resolution database), the overlay finger lookups, and the
address announcements disseminated over the overlay (1 or 3 fingers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dissemination import AddressDissemination
from repro.core.landmarks import select_landmarks
from repro.core.overlay import DisseminationOverlay
from repro.core.sloppy_groups import SloppyGrouping
from repro.core.vicinity import vicinity_size
from repro.graphs.topology import Topology
from repro.naming.consistent_hash import ConsistentHashRing
from repro.naming.names import name_for_node
from repro.sim.agents.pathvector_agent import (
    AcceptAllPolicy,
    ClusterPolicy,
    LandmarkVicinityPolicy,
    PathVectorAgent,
)
from repro.sim.network import Network
from repro.sim.simulator import Simulator

__all__ = [
    "ConvergenceReport",
    "simulate_path_vector_convergence",
    "simulate_nddisco_convergence",
    "simulate_s4_convergence",
    "simulate_disco_convergence",
]

_MAX_EVENTS_PER_NODE = 200_000


@dataclass
class ConvergenceReport:
    """Outcome of one convergence simulation.

    Attributes
    ----------
    protocol:
        Display name of the simulated protocol.
    num_nodes:
        Network size.
    messages_per_node, entries_per_node:
        Mean control messages / route entries sent per node until
        convergence.  Entries are the Fig. 8 unit (one per advertised
        destination).
    total_messages, total_entries:
        Network-wide totals.
    converged_time:
        Virtual time at which the event queue drained.
    events_processed:
        Number of simulator events executed.
    tables:
        Optional converged routing tables: per node, a mapping destination ->
        (cost, path) for the routes the node installed.
    extra:
        Protocol-specific additions (e.g. Disco's overlay dissemination
        statistics).
    """

    protocol: str
    num_nodes: int
    messages_per_node: float
    entries_per_node: float
    total_messages: int
    total_entries: int
    converged_time: float
    events_processed: int
    tables: dict[int, dict[int, tuple[float, tuple[int, ...]]]] | None = None
    extra: dict[str, float] = field(default_factory=dict)


def _run_path_vector_family(
    topology: Topology,
    protocol_name: str,
    policy_factory,
    landmarks: set[int],
    *,
    keep_tables: bool,
) -> ConvergenceReport:
    """Common driver: one PathVectorAgent per node with the given policy."""
    simulator = Simulator()
    network = Network(topology, simulator)
    agents: list[PathVectorAgent] = []
    for node in topology.nodes():
        agent = PathVectorAgent(
            node,
            network,
            policy_factory(),
            landmarks=landmarks,
        )
        agents.append(agent)
    network.start()
    max_events = _MAX_EVENTS_PER_NODE * max(1, topology.num_nodes)
    converged_time = simulator.run(max_events=max_events)
    if simulator.pending_events:
        raise RuntimeError(
            f"{protocol_name} convergence did not complete within "
            f"{max_events} events; the protocol appears to be oscillating"
        )
    tables = None
    if keep_tables:
        tables = {
            agent.node: {
                entry.destination: (entry.cost, entry.path)
                for entry in agent.routes().values()
            }
            for agent in agents
        }
    return ConvergenceReport(
        protocol=protocol_name,
        num_nodes=topology.num_nodes,
        messages_per_node=network.messages_per_node(),
        entries_per_node=network.entries_per_node(),
        total_messages=network.total_messages(),
        total_entries=network.total_entries(),
        converged_time=converged_time,
        events_processed=simulator.events_processed,
        tables=tables,
    )


def simulate_path_vector_convergence(
    topology: Topology, *, keep_tables: bool = False
) -> ConvergenceReport:
    """Plain path vector: every node learns a route to every destination."""
    return _run_path_vector_family(
        topology,
        "Path-Vector",
        AcceptAllPolicy,
        landmarks=set(),
        keep_tables=keep_tables,
    )


def simulate_nddisco_convergence(
    topology: Topology,
    *,
    seed: int = 0,
    vicinity_scale: float = 1.0,
    landmarks: set[int] | None = None,
    keep_tables: bool = False,
) -> ConvergenceReport:
    """NDDisco route learning: landmarks plus capacity-bounded vicinities."""
    n = topology.num_nodes
    landmark_set = (
        set(landmarks) if landmarks is not None else select_landmarks(n, seed=seed)
    )
    capacity = vicinity_size(n, scale=vicinity_scale)
    report = _run_path_vector_family(
        topology,
        "ND-Disco",
        lambda: LandmarkVicinityPolicy(landmark_set, capacity),
        landmarks=landmark_set,
        keep_tables=keep_tables,
    )
    report.extra["num_landmarks"] = float(len(landmark_set))
    report.extra["vicinity_capacity"] = float(capacity)
    return report


def simulate_s4_convergence(
    topology: Topology,
    *,
    seed: int = 0,
    landmarks: set[int] | None = None,
    keep_tables: bool = False,
) -> ConvergenceReport:
    """S4 route learning: landmarks plus Thorup-Zwick cluster acceptance."""
    n = topology.num_nodes
    landmark_set = (
        set(landmarks) if landmarks is not None else select_landmarks(n, seed=seed)
    )
    report = _run_path_vector_family(
        topology,
        "S4",
        lambda: ClusterPolicy(landmark_set),
        landmarks=landmark_set,
        keep_tables=keep_tables,
    )
    report.extra["num_landmarks"] = float(len(landmark_set))
    return report


def simulate_disco_convergence(
    topology: Topology,
    *,
    seed: int = 0,
    vicinity_scale: float = 1.0,
    num_fingers: int = 1,
    landmarks: set[int] | None = None,
    keep_tables: bool = False,
) -> ConvergenceReport:
    """Disco: NDDisco route learning plus name-database construction.

    On top of NDDisco's messaging this accounts for:

    * one registration message per node toward the resolution database's home
      landmark (charged as the physical hop count of that path, since each
      hop is a forwarded packet);
    * ``num_fingers`` lookup request/response pairs per node, charged
      similarly via the home landmark of the drawn hash value;
    * the address announcements disseminated over the overlay (each overlay
      message is charged as one message/entry, mirroring the paper's
      treatment of overlay connections as single logical links).
    """
    n = topology.num_nodes
    landmark_set = (
        set(landmarks) if landmarks is not None else select_landmarks(n, seed=seed)
    )
    report = simulate_nddisco_convergence(
        topology,
        seed=seed,
        vicinity_scale=vicinity_scale,
        landmarks=landmark_set,
        keep_tables=keep_tables,
    )
    report.protocol = f"Disco-{num_fingers}-Finger"

    names = [name_for_node(v) for v in range(n)]
    grouping = SloppyGrouping(names)
    overlay = DisseminationOverlay(grouping, num_fingers=num_fingers, seed=seed)
    dissemination = AddressDissemination(overlay)
    overlay_report = dissemination.run()

    # Registration + finger lookups toward landmarks, charged in physical hops
    # along shortest paths (computed from the converged landmark routes when
    # available, otherwise hop-count estimates from the topology).
    ring = ConsistentHashRing(sorted(landmark_set))
    registration_messages = 0
    lookup_messages = 0
    from repro.graphs.shortest_paths import dijkstra

    landmark_hops: dict[int, dict[int, float]] = {}
    for landmark in sorted(landmark_set):
        distances, _ = dijkstra(topology, landmark)
        landmark_hops[landmark] = distances
    for node in range(n):
        home = ring.owner(names[node].hash_value)
        registration_messages += max(1, int(round(landmark_hops[home].get(node, 1.0))))
        for finger_index in range(num_fingers):
            # A lookup is a request to the landmark owning the drawn value and
            # a response back: two traversals of the node-to-landmark path.
            lookup_messages += 2 * max(
                1, int(round(landmark_hops[home].get(node, 1.0)))
            )
            del finger_index

    overlay_messages = overlay_report.total_messages
    added_messages = registration_messages + lookup_messages + overlay_messages
    report.total_messages += added_messages
    report.total_entries += added_messages
    report.messages_per_node = report.total_messages / n
    report.entries_per_node = report.total_entries / n
    report.extra.update(
        {
            "overlay_messages": float(overlay_messages),
            "overlay_mean_hops": overlay_report.mean_hop_distance,
            "overlay_max_hops": float(overlay_report.max_hop_distance),
            "overlay_coverage": overlay_report.coverage,
            "registration_messages": float(registration_messages),
            "finger_lookup_messages": float(lookup_messages),
            "num_fingers": float(num_fingers),
        }
    )
    return report
