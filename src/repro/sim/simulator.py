"""The virtual clock and run loop of the discrete-event simulator."""

from __future__ import annotations

from typing import Callable

from repro.sim.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """A simple discrete-event simulator.

    Events are callables scheduled at absolute or relative virtual times; the
    run loop pops them in time order and executes them.  The simulator is
    deliberately minimal -- protocol behaviour lives in the agents, and the
    network fabric (:class:`repro.sim.network.Network`) is what schedules
    message deliveries.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past (now={self._now}, requested={time})"
            )
        return self._queue.push(time, action)

    def schedule_in(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` after ``delay`` time units."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self._now + delay, action)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self._queue.cancel(event)

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the virtual time at which the run stopped.
        """
        while True:
            if max_events is not None and self._events_processed >= max_events:
                break
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            event = self._queue.pop()
            if event is None:
                break
            self._now = event.time
            event.action()
            self._events_processed += 1
        return self._now
