"""Fig. 7 (table) -- per-node state in entries and kilobytes.

"In Table 7, we present numbers for state in terms of kilobytes of memory.
The size of source routes is determined using the scheme described in §4.2.
As the table shows, the conclusions are similar when measuring bytes instead
of entries." (§5.2)

The paper's table reports, for S4, ND-Disco, and Disco on the router-level
Internet topology: mean/max entries, mean/max bytes with IPv4-sized (4-byte)
names, and mean/max bytes with IPv6-sized (16-byte) names.  The headline
shape: S4 has the lowest *mean* but by far the highest *max* (it "severely
breaks worst-case bounds"), Disco pays a constant-factor premium over
ND-Disco for name-independence, and both Disco variants have max ≈ mean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import router_level_topology
from repro.metrics.state import StateReport
from repro.scenarios.spec import scenario
from repro.staticsim.simulation import StaticSimulation
from repro.utils.formatting import format_table

__all__ = ["StateBytesResult", "run", "format_report"]

_PROTOCOLS = ("s4", "nd-disco", "disco")


@dataclass(frozen=True)
class StateBytesResult:
    """Per-protocol state reports on the router-level-like topology."""

    reports: dict[str, StateReport]
    topology_label: str
    scale_label: str

    def rows(self) -> list[list[object]]:
        """The Fig. 7 table rows (entries and kilobytes, mean and max)."""
        ordered = ["S4", "ND-Disco", "Disco"]
        rows: list[list[object]] = []
        for name in ordered:
            report = self.reports[name]
            entries = report.entry_summary
            ipv4 = report.bytes_ipv4_summary
            ipv6 = report.bytes_ipv6_summary
            rows.append(
                [
                    name,
                    entries.mean,
                    entries.maximum,
                    ipv4.mean / 1024.0,
                    ipv4.maximum / 1024.0,
                    ipv6.mean / 1024.0,
                    ipv6.maximum / 1024.0,
                ]
            )
        return rows


@scenario(
    "fig07-state-bytes",
    title="Fig. 7: per-node state in entries and kilobytes (router-level)",
    family="router-level",
    protocols=_PROTOCOLS,
    metrics=("state",),
    workload="converged-state byte accounting",
    aliases=("fig07",),
    tags=("figure", "quick"),
)
def run(scale: ExperimentScale | None = None) -> StateBytesResult:
    """Measure state entries and bytes for S4, ND-Disco, Disco."""
    scale = scale or default_scale()
    topology = router_level_topology(scale)
    simulation = StaticSimulation(topology, _PROTOCOLS, seed=scale.seed)
    results = simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=False,
        node_sample=scale.node_sample,
    )
    return StateBytesResult(
        reports=results.state,
        topology_label=topology.name,
        scale_label=scale.label,
    )


def format_report(result: StateBytesResult) -> str:
    """Render the Fig. 7 table."""
    table = format_table(
        [
            "protocol",
            "entries mean",
            "entries max",
            "KB (IPv4) mean",
            "KB (IPv4) max",
            "KB (IPv6) mean",
            "KB (IPv6) max",
        ],
        result.rows(),
        float_format="{:.2f}",
    )
    return "\n".join(
        [
            header(
                f"Fig. 7: state at a node on {result.topology_label}",
                f"scale={result.scale_label}",
            ),
            table,
        ]
    )
