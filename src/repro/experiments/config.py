"""Experiment sizing.

Every experiment derives its topology sizes, sample counts, and sweep ranges
from an :class:`ExperimentScale`.  The default is sized to finish in seconds
to a few minutes per experiment in pure Python; ``REPRO_SCALE`` (a float
multiplier) or an explicit :class:`ExperimentScale` instance scales the node
counts toward the paper's original dimensions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["ExperimentScale", "default_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Dimensions shared across the experiment suite.

    Attributes
    ----------
    comparison_nodes:
        Size of the 1,024-node comparison topologies (Figs. 4 and 5).
    large_nodes:
        Size of the "large" topologies that stand in for the paper's
        16,384-node graphs (Figs. 2, 3, 6).
    as_level_nodes, router_level_nodes:
        Sizes of the synthetic Internet-like topologies standing in for the
        30,610-node AS-level and 192,244-node router-level CAIDA maps.
    pair_sample:
        Source-destination pairs sampled for stretch measurements.
    node_sample:
        Nodes sampled for state measurements on large topologies (None means
        every node).
    messaging_sweep:
        Node counts for the Fig. 8 convergence-messaging sweep.
    scaling_sweep:
        Node counts for the Fig. 9 scaling sweep.
    seed:
        Root seed shared by all experiments.
    topology_file, topology_format:
        Optional real-topology dataset: a path ingested through
        :mod:`repro.graphs.ingest` with the named registered format.
        When set, the figure scenarios that accept it grow a "real
        topology" panel/column next to their synthetic ones (and the
        ``repro run --topology-file`` CLI populates it).
    """

    comparison_nodes: int = 1024
    large_nodes: int = 1024
    as_level_nodes: int = 1024
    router_level_nodes: int = 1536
    pair_sample: int = 400
    node_sample: int | None = None
    messaging_sweep: tuple[int, ...] = (64, 128, 192, 256)
    scaling_sweep: tuple[int, ...] = (256, 512, 768, 1024)
    seed: int = 2010
    label: str = field(default="default")
    topology_file: str | None = None
    topology_format: str = "edge-list"

    def scaled(self, factor: float) -> "ExperimentScale":
        """Return a copy with all node counts multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be > 0, got {factor}")

        def scale_int(value: int) -> int:
            return max(16, int(round(value * factor)))

        return ExperimentScale(
            comparison_nodes=scale_int(self.comparison_nodes),
            large_nodes=scale_int(self.large_nodes),
            as_level_nodes=scale_int(self.as_level_nodes),
            router_level_nodes=scale_int(self.router_level_nodes),
            pair_sample=max(50, int(round(self.pair_sample * min(factor, 4.0)))),
            node_sample=self.node_sample,
            messaging_sweep=tuple(scale_int(v) for v in self.messaging_sweep),
            scaling_sweep=tuple(scale_int(v) for v in self.scaling_sweep),
            seed=self.seed,
            label=f"{self.label}×{factor:g}",
            topology_file=self.topology_file,
            topology_format=self.topology_format,
        )


def default_scale() -> ExperimentScale:
    """Return the default scale, honouring the ``REPRO_SCALE`` env variable."""
    base = ExperimentScale()
    raw = os.environ.get("REPRO_SCALE", "").strip()
    if not raw:
        return base
    try:
        factor = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_SCALE must be a number, got {raw!r}"
        ) from exc
    return base.scaled(factor)
