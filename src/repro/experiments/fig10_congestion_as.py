"""Fig. 10 -- congestion tail on the AS-level topology.

"On the AS-level Internet topology, a small fraction (0.05%) of edges face
significantly more congestion than shortest-path routing." (§5.2, Fig. 10)

The workload is the standard one-flow-per-node congestion workload; the
comparison is Disco vs S4 vs shortest-path (path vector) routing, and the
quantity of interest is the extreme tail of the paths-per-edge distribution:
Disco concentrates somewhat more load on a very small fraction of edges
(those adjacent to landmarks) than shortest-path routing does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header, render_congestion_reports
from repro.experiments.workloads import as_level_topology, real_topology
from repro.metrics.congestion import CongestionReport
from repro.scenarios.spec import scenario
from repro.staticsim.simulation import StaticSimulation

__all__ = ["CongestionTailResult", "run", "format_report"]

_PROTOCOLS = ("disco", "s4", "path-vector")


@dataclass(frozen=True)
class CongestionTailResult:
    """Per-protocol congestion reports on the AS-level-like topology."""

    reports: dict[str, CongestionReport]
    topology_label: str
    scale_label: str
    #: Present only when the run ingested a real dataset
    #: (``--topology-file``); None keeps older result pickles loadable.
    real_reports: dict[str, CongestionReport] | None = None
    real_topology_label: str | None = None

    def columns(self) -> dict[str, dict[str, CongestionReport]]:
        """The congestion columns keyed by topology label."""
        columns = {self.topology_label: self.reports}
        if self.real_reports is not None:
            columns[self.real_topology_label or "real"] = self.real_reports
        return columns

    def tail_excess_fraction(self, protocol: str, baseline: str = "Path-Vector") -> float:
        """Fraction of edges where ``protocol`` exceeds the baseline's maximum."""
        base_max = self.reports[baseline].max_usage()
        report = self.reports[protocol]
        values = report.usage_values
        if not values:
            return 0.0
        return sum(1 for v in values if v > base_max) / len(values)


@scenario(
    "fig10-congestion-as",
    title="Fig. 10: congestion tail on the AS-level topology",
    family="as-level",
    protocols=_PROTOCOLS,
    metrics=("congestion",),
    workload="one flow per node",
    aliases=("fig10",),
    tags=("figure", "quick"),
)
def run(scale: ExperimentScale | None = None) -> CongestionTailResult:
    """Measure congestion for Disco, S4, and path vector on the AS-level graph."""
    scale = scale or default_scale()
    topology = as_level_topology(scale)
    simulation = StaticSimulation(topology, _PROTOCOLS, seed=scale.seed)
    results = simulation.run(
        measure_state_flag=False,
        measure_stretch_flag=False,
        measure_congestion_flag=True,
    )
    real_reports = None
    real_label = None
    if scale.topology_file is not None:
        real = real_topology(scale)
        real_results = StaticSimulation(real, _PROTOCOLS, seed=scale.seed).run(
            measure_state_flag=False,
            measure_stretch_flag=False,
            measure_congestion_flag=True,
        )
        real_reports = real_results.congestion
        real_label = real.name
    return CongestionTailResult(
        reports=results.congestion,
        topology_label=topology.name,
        scale_label=scale.label,
        real_reports=real_reports,
        real_topology_label=real_label,
    )


def format_report(result: CongestionTailResult) -> str:
    """Render the Fig. 10 congestion comparison with the tail-excess numbers."""
    parts = [
        header(
            f"Fig. 10: congestion tail on {result.topology_label}",
            f"scale={result.scale_label}",
        ),
        render_congestion_reports(result.reports),
    ]
    for protocol in result.reports:
        if protocol == "Path-Vector":
            continue
        fraction = result.tail_excess_fraction(protocol)
        parts.append(
            f"{protocol}: {fraction * 100.0:.3f}% of edges exceed the "
            "shortest-path maximum load"
        )
    if result.real_reports is not None:
        parts.append(
            f"\n--- real topology ({result.real_topology_label}) ---"
        )
        parts.append(render_congestion_reports(result.real_reports))
    return "\n".join(parts)
