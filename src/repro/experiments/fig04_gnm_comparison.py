"""Fig. 4 -- state, stretch, and congestion on a G(n,m) random graph.

"Fig. 4 ... State (left), stretch (middle) and congestion (right) comparisons
between Disco, VRR and S4 over a 1,024-node G(n,m) random graph."  (§5.2)

This is the full five-protocol comparison (Disco, NDDisco, S4, VRR, path
vector) on the unit-weight random graph.  The shapes to verify:

* VRR's state distribution has a much heavier tail than Disco/NDDisco/S4 (and
  can exceed even path vector for a few nodes);
* VRR's stretch is well above the compact-routing protocols';
* congestion of the compact schemes is close to shortest-path routing, with
  VRR noticeably worse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import (
    header,
    render_congestion_reports,
    render_state_reports,
    render_stretch_reports,
)
from repro.experiments.workloads import comparison_gnm
from repro.scenarios.spec import scenario
from repro.staticsim.simulation import SimulationResults, StaticSimulation

__all__ = ["ComparisonResult", "run", "format_report"]

_PROTOCOLS = ("disco", "nd-disco", "s4", "vrr", "path-vector")


@dataclass(frozen=True)
class ComparisonResult:
    """The three-panel comparison on one topology."""

    results: SimulationResults
    topology_label: str
    scale_label: str


@scenario(
    "fig04-gnm-comparison",
    title="Fig. 4: state/stretch/congestion, five protocols on G(n,m)",
    family="gnm",
    protocols=_PROTOCOLS,
    metrics=("state", "stretch", "congestion"),
    workload="converged-state comparison, shared sampled workloads",
    aliases=("fig04",),
    tags=("figure",),
)
def run(scale: ExperimentScale | None = None) -> ComparisonResult:
    """Run the five-protocol comparison on the G(n,m) topology."""
    scale = scale or default_scale()
    topology = comparison_gnm(scale)
    simulation = StaticSimulation(topology, _PROTOCOLS, seed=scale.seed)
    results = simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=True,
        measure_congestion_flag=True,
        pair_sample=scale.pair_sample,
    )
    return ComparisonResult(
        results=results, topology_label=topology.name, scale_label=scale.label
    )


def format_report(result: ComparisonResult) -> str:
    """Render the three panels of Fig. 4."""
    parts = [
        header(
            "Fig. 4: Disco vs ND-Disco vs S4 vs VRR vs path vector "
            f"on {result.topology_label}",
            f"scale={result.scale_label}",
        ),
        "\n[state]",
        render_state_reports(result.results.state),
        "\n[stretch]",
        render_stretch_reports(result.results.stretch),
        "\n[congestion]",
        render_congestion_reports(result.results.congestion),
    ]
    return "\n".join(parts)
