"""Fig. 4 -- state, stretch, and congestion on a G(n,m) random graph.

"Fig. 4 ... State (left), stretch (middle) and congestion (right) comparisons
between Disco, VRR and S4 over a 1,024-node G(n,m) random graph."  (§5.2)

This is the full five-protocol comparison (Disco, NDDisco, S4, VRR, path
vector) on the unit-weight random graph.  The shapes to verify:

* VRR's state distribution has a much heavier tail than Disco/NDDisco/S4 (and
  can exceed even path vector for a few nodes);
* VRR's stretch is well above the compact-routing protocols';
* congestion of the compact schemes is close to shortest-path routing, with
  VRR noticeably worse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import (
    header,
    render_congestion_reports,
    render_state_reports,
    render_stretch_reports,
)
from repro.experiments.workloads import comparison_gnm
from repro.scenarios.spec import scenario
from repro.staticsim.simulation import SimulationResults, StaticSimulation

__all__ = [
    "ComparisonResult",
    "run",
    "format_report",
    "run_protocol_shard",
    "merge_protocol_shards",
]

_PROTOCOLS = ("disco", "nd-disco", "s4", "vrr", "path-vector")

#: What each protocol shard must *build* so its converged state is
#: identical to the serial five-protocol simulation.  Disco pulls its
#: ND-Disco substrate in internally; S4 shares the landmark set (and the
#: converged substrate) with ND-Disco only when both appear in the
#: protocol list, so its shard carries ND-Disco along -- with the artifact
#: cache active the substrate is still built once across shards.
_SHARD_BUILD = {
    "disco": ("disco",),
    "nd-disco": ("nd-disco",),
    "s4": ("nd-disco", "s4"),
    "vrr": ("vrr",),
    "path-vector": ("path-vector",),
}


@dataclass(frozen=True)
class ComparisonResult:
    """The three-panel comparison on one topology."""

    results: SimulationResults
    topology_label: str
    scale_label: str


def run_protocol_shard(
    scale: ExperimentScale,
    protocol: str,
    topology_builder=None,
) -> SimulationResults:
    """One protocol-granularity shard of a five-protocol comparison.

    Builds ``protocol`` (plus whatever substrate coupling the serial run
    gives it, see ``_SHARD_BUILD``) on the comparison topology and
    measures only that protocol over the shared sampled workloads; the
    reports are byte-identical to the matching slice of :func:`run`.
    Shared by Fig. 4 (G(n,m), the default builder) and Fig. 5
    (geometric).
    """
    scale = scale or default_scale()
    topology = (topology_builder or comparison_gnm)(scale)
    simulation = StaticSimulation(
        topology, _SHARD_BUILD[protocol], seed=scale.seed
    )
    return simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=True,
        measure_congestion_flag=True,
        pair_sample=scale.pair_sample,
        measure_protocols=(protocol,),
    )


def merge_protocol_shards(
    scale: ExperimentScale, parts: dict[str, SimulationResults]
) -> ComparisonResult:
    """Reassemble per-protocol shard results in canonical protocol order."""
    merged = SimulationResults(
        topology_name=parts[_PROTOCOLS[0]].topology_name
    )
    for protocol in _PROTOCOLS:
        part = parts[protocol]
        merged.state.update(part.state)
        merged.stretch.update(part.stretch)
        merged.congestion.update(part.congestion)
    return ComparisonResult(
        results=merged,
        topology_label=merged.topology_name,
        scale_label=scale.label,
    )


@scenario(
    "fig04-gnm-comparison",
    title="Fig. 4: state/stretch/congestion, five protocols on G(n,m)",
    family="gnm",
    protocols=_PROTOCOLS,
    metrics=("state", "stretch", "congestion"),
    workload="converged-state comparison, shared sampled workloads",
    aliases=("fig04",),
    tags=("figure",),
    shards=_PROTOCOLS,
    shard_runner=run_protocol_shard,
    shard_merge=merge_protocol_shards,
)
def run(scale: ExperimentScale | None = None) -> ComparisonResult:
    """Run the five-protocol comparison on the G(n,m) topology.

    Serially this builds one :class:`StaticSimulation` with every
    protocol (sharing the converged substrate in memory); the sharded
    path (`--workers`) runs one protocol per task and merges, which is
    byte-identical because every measurement is a pure function of the
    (identically built) scheme and the shared sampled workloads --
    pinned by ``tests/test_scenarios_parallel.py``.
    """
    scale = scale or default_scale()
    topology = comparison_gnm(scale)
    simulation = StaticSimulation(topology, _PROTOCOLS, seed=scale.seed)
    results = simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=True,
        measure_congestion_flag=True,
        pair_sample=scale.pair_sample,
    )
    return ComparisonResult(
        results=results, topology_label=topology.name, scale_label=scale.label
    )


def format_report(result: ComparisonResult) -> str:
    """Render the three panels of Fig. 4."""
    parts = [
        header(
            "Fig. 4: Disco vs ND-Disco vs S4 vs VRR vs path vector "
            f"on {result.topology_label}",
            f"scale={result.scale_label}",
        ),
        "\n[state]",
        render_state_reports(result.results.state),
        "\n[stretch]",
        render_stretch_reports(result.results.stretch),
        "\n[congestion]",
        render_congestion_reports(result.results.congestion),
    ]
    return "\n".join(parts)
