"""Standard topologies used across the experiment suite.

The paper's four topology families (§5.1), produced at the sizes dictated by
an :class:`~repro.experiments.config.ExperimentScale`.  Each function is a
thin, named wrapper so every experiment that says "the AS-level topology"
builds exactly the same graph for the same scale and seed.

Every builder routes through :func:`cached_topology`: when the scenario
engine has an :class:`~repro.scenarios.cache.ArtifactCache` active, the
``(family, n, seed, parameters)`` construction inputs become a
content-addressed key and the build is deduplicated across all scenarios of
the run (and, with a disk-backed cache, across runs and worker processes).
Without an active cache the builders construct directly, exactly as before.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.config import ExperimentScale
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_as_level,
    internet_router_level,
)
from repro.graphs.topology import Topology
from repro.scenarios.cache import active_cache

__all__ = [
    "cached_topology",
    "comparison_gnm",
    "comparison_geometric",
    "large_geometric",
    "as_level_topology",
    "router_level_topology",
    "real_topology",
    "sweep_gnm",
    "sweep_geometric",
]


def cached_topology(
    parts: tuple, build: Callable[[], Topology]
) -> Topology:
    """Build (or fetch) a topology keyed by its construction inputs.

    ``parts`` must uniquely describe the build -- generator family, node
    count, seed, and structural parameters -- because it becomes the cache
    key.  With no active cache this is just ``build()``.
    """
    cache = active_cache()
    if cache is None:
        return build()
    return cache.topology(parts, build)


def comparison_gnm(scale: ExperimentScale) -> Topology:
    """The G(n,m) comparison topology of Fig. 4 (1,024 nodes in the paper)."""
    return sweep_gnm(scale.comparison_nodes, scale.seed)


def comparison_geometric(scale: ExperimentScale) -> Topology:
    """The geometric comparison topology of Fig. 5 (1,024 nodes, latencies)."""
    return sweep_geometric(scale.comparison_nodes, scale.seed)


def large_geometric(scale: ExperimentScale) -> Topology:
    """The large geometric topology of Figs. 2/3 (16,384 nodes in the paper)."""
    return sweep_geometric(scale.large_nodes, scale.seed + 1)


def as_level_topology(scale: ExperimentScale) -> Topology:
    """Synthetic AS-level Internet-like topology (stands in for the CAIDA map)."""
    n, seed = scale.as_level_nodes, scale.seed + 2
    return cached_topology(
        ("as-level", n, seed),
        lambda: internet_as_level(n, seed=seed),
    )


def router_level_topology(scale: ExperimentScale) -> Topology:
    """Synthetic router-level Internet-like topology (stands in for CAIDA)."""
    n, seed = scale.router_level_nodes, scale.seed + 3
    return cached_topology(
        ("router-level", n, seed),
        lambda: internet_router_level(n, seed=seed),
    )


def real_topology(scale: ExperimentScale) -> Topology:
    """The ingested real-world dataset named by ``scale.topology_file``.

    Streams the dataset through :func:`repro.graphs.ingest.ingest_topology`
    (array-backed ``CSRTopology``, content-addressed by file digest +
    format, largest connected component kept -- real maps are routinely
    disconnected).  Raises ``ValueError`` when the scale names no file.
    """
    if scale.topology_file is None:
        raise ValueError(
            "scale.topology_file is not set; pass --topology-file (CLI) "
            "or ExperimentScale(topology_file=...)"
        )
    from repro.graphs.ingest import ingest_topology

    return ingest_topology(
        scale.topology_file,
        fmt=scale.topology_format,
        largest_component=True,
    )


def sweep_gnm(n: int, seed: int, average_degree: float = 8.0) -> Topology:
    """A G(n,m) graph at an explicit size/seed (Fig. 8 sweep, churn study)."""
    return cached_topology(
        ("gnm", n, seed, average_degree),
        lambda: gnm_random_graph(n, seed=seed, average_degree=average_degree),
    )


def sweep_geometric(
    n: int, seed: int, average_degree: float = 8.0
) -> Topology:
    """A geometric graph at an explicit size/seed (Fig. 9 sweep)."""
    return cached_topology(
        ("geometric", n, seed, average_degree),
        lambda: geometric_random_graph(
            n, seed=seed, average_degree=average_degree
        ),
    )
