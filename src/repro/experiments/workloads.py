"""Standard topologies used across the experiment suite.

The paper's four topology families (§5.1), produced at the sizes dictated by
an :class:`~repro.experiments.config.ExperimentScale`.  Each function is a
thin, named wrapper so every experiment that says "the AS-level topology"
builds exactly the same graph for the same scale and seed.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_as_level,
    internet_router_level,
)
from repro.graphs.topology import Topology

__all__ = [
    "comparison_gnm",
    "comparison_geometric",
    "large_geometric",
    "as_level_topology",
    "router_level_topology",
]


def comparison_gnm(scale: ExperimentScale) -> Topology:
    """The G(n,m) comparison topology of Fig. 4 (1,024 nodes in the paper)."""
    return gnm_random_graph(scale.comparison_nodes, seed=scale.seed, average_degree=8.0)


def comparison_geometric(scale: ExperimentScale) -> Topology:
    """The geometric comparison topology of Fig. 5 (1,024 nodes, latencies)."""
    return geometric_random_graph(
        scale.comparison_nodes, seed=scale.seed, average_degree=8.0
    )


def large_geometric(scale: ExperimentScale) -> Topology:
    """The large geometric topology of Figs. 2/3 (16,384 nodes in the paper)."""
    return geometric_random_graph(
        scale.large_nodes, seed=scale.seed + 1, average_degree=8.0
    )


def as_level_topology(scale: ExperimentScale) -> Topology:
    """Synthetic AS-level Internet-like topology (stands in for the CAIDA map)."""
    return internet_as_level(scale.as_level_nodes, seed=scale.seed + 2)


def router_level_topology(scale: ExperimentScale) -> Topology:
    """Synthetic router-level Internet-like topology (stands in for CAIDA)."""
    return internet_router_level(scale.router_level_nodes, seed=scale.seed + 3)
