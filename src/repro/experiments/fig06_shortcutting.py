"""Fig. 6 (table) -- effect of shortcutting heuristics on mean stretch.

"Fig. 6: Effect of shortcutting strategies: Mean stretch for different
shortcutting heuristics."  The paper reports mean first-packet stretch for
NDDisco/Disco under six heuristics on four topologies (AS-level,
router-level, geometric-16384, GNM-16384).  The expected ordering (which this
reproduction verifies): No Shortcutting is worst; To-Destination and the
forward/reverse selection each help; No Path Knowledge (their combination)
does better still; and the Path-Knowledge variants bring mean stretch very
close to 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.disco import DiscoRouting
from repro.core.nddisco import NDDiscoRouting
from repro.core.shortcutting import ShortcutMode
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import (
    as_level_topology,
    comparison_gnm,
    large_geometric,
    router_level_topology,
)
from repro.graphs.sampling import sample_pairs
from repro.metrics.stretch import measure_stretch
from repro.scenarios.spec import scenario
from repro.utils.formatting import format_table

__all__ = ["ShortcuttingResult", "run", "format_report", "MODE_ORDER"]

MODE_ORDER: tuple[ShortcutMode, ...] = (
    ShortcutMode.NONE,
    ShortcutMode.TO_DESTINATION,
    ShortcutMode.SHORTER_REVERSE_FORWARD,
    ShortcutMode.NO_PATH_KNOWLEDGE,
    ShortcutMode.UP_DOWN_STREAM,
    ShortcutMode.PATH_KNOWLEDGE,
)

_MODE_LABELS = {
    ShortcutMode.NONE: "No Shortcutting",
    ShortcutMode.TO_DESTINATION: "To-Destination Shortcuts",
    ShortcutMode.SHORTER_REVERSE_FORWARD: "Shorter{ReversePath, ForwardPath}",
    ShortcutMode.NO_PATH_KNOWLEDGE: "No Path Knowledge",
    ShortcutMode.UP_DOWN_STREAM: "Up-Down Stream",
    ShortcutMode.PATH_KNOWLEDGE: "Using Path Knowledge",
}


@dataclass(frozen=True)
class ShortcuttingResult:
    """Mean first-packet stretch per (heuristic, topology)."""

    mean_stretch: dict[str, dict[str, float]]
    topology_order: tuple[str, ...]
    scale_label: str

    def column(self, topology: str) -> dict[str, float]:
        """The per-heuristic column for one topology."""
        return {mode: values[topology] for mode, values in self.mean_stretch.items()}


_TOPOLOGIES = {
    "AS-Level": as_level_topology,
    "Router-level": router_level_topology,
    "Geometric": large_geometric,
    "GNM": comparison_gnm,
}


def _run_column(scale: ExperimentScale, topology_label: str) -> dict[str, float]:
    """One topology's column of the table -- the engine's shard unit.

    The Disco instance is mutated per heuristic row (the shortcut mode is
    applied at routing time), so this build is deliberately *not* routed
    through the substrate cache: cached schemes are shared and must stay
    immutable.
    """
    topology = _TOPOLOGIES[topology_label](scale)
    pairs = sample_pairs(topology, scale.pair_sample, seed=scale.seed + 7)
    # Build the shared substrate once per topology; only the shortcut mode
    # differs across rows, and it is applied at routing time.
    nddisco = NDDiscoRouting(
        topology, seed=scale.seed, shortcut_mode=ShortcutMode.NONE
    )
    disco = DiscoRouting(topology, seed=scale.seed, nddisco=nddisco)
    column: dict[str, float] = {}
    for mode in MODE_ORDER:
        disco.shortcut_mode = mode
        report = measure_stretch(disco, pairs=pairs)
        column[_MODE_LABELS[mode]] = report.first_summary.mean
    return column


def _merge_columns(
    scale: ExperimentScale, columns: dict[str, dict[str, float]]
) -> ShortcuttingResult:
    mean_stretch: dict[str, dict[str, float]] = {
        _MODE_LABELS[mode]: {} for mode in MODE_ORDER
    }
    for topology_label in _TOPOLOGIES:
        for mode in MODE_ORDER:
            mean_stretch[_MODE_LABELS[mode]][topology_label] = columns[
                topology_label
            ][_MODE_LABELS[mode]]
    return ShortcuttingResult(
        mean_stretch=mean_stretch,
        topology_order=tuple(_TOPOLOGIES),
        scale_label=scale.label,
    )


@scenario(
    "fig06-shortcutting",
    title="Fig. 6: shortcutting heuristics vs mean first-packet stretch",
    family=("as-level", "router-level", "geometric", "gnm"),
    protocols=("disco", "nd-disco"),
    metrics=("stretch",),
    workload="six heuristics x four topologies",
    aliases=("fig06", "shortcutting"),
    tags=("figure",),
    shards=tuple(_TOPOLOGIES),
    shard_runner=_run_column,
    shard_merge=_merge_columns,
)
def run(scale: ExperimentScale | None = None) -> ShortcuttingResult:
    """Measure mean Disco first-packet stretch under every heuristic."""
    scale = scale or default_scale()
    return _merge_columns(
        scale, {label: _run_column(scale, label) for label in _TOPOLOGIES}
    )


def format_report(result: ShortcuttingResult) -> str:
    """Render the Fig. 6 table (heuristics x topologies)."""
    rows = []
    for mode in MODE_ORDER:
        label = _MODE_LABELS[mode]
        rows.append(
            [label] + [result.mean_stretch[label][t] for t in result.topology_order]
        )
    table = format_table(
        ["shortcutting heuristic"] + list(result.topology_order),
        rows,
    )
    return "\n".join(
        [
            header(
                "Fig. 6: mean first-packet stretch per shortcutting heuristic",
                f"scale={result.scale_label}",
            ),
            table,
        ]
    )
