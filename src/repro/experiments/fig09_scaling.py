"""Fig. 9 -- mean stretch and mean state vs network size.

"Fig. 9 shows how Disco, NDDisco and S4 scale with increasing number of
nodes n in geometric random graphs, showing mean stretch and mean state.
S4's first-packet stretch remains high, but for the rest of the curves, the
stretch is similarly low and close to 1.  Routing state grows as Õ(√n)."
(§5.2)

The sweep builds geometric random graphs of increasing size and records, for
Disco, NDDisco and S4: mean first-packet stretch, mean later-packet stretch,
and mean per-node state.  The shapes to verify: S4-First stays well above the
other stretch curves; all later-packet curves hug 1; state grows sublinearly
(the report includes the fitted growth exponent, which should be near 0.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import sweep_geometric
from repro.scenarios.spec import scenario
from repro.staticsim.simulation import SimulationResults, StaticSimulation
from repro.utils.formatting import format_table

__all__ = ["ScalingResult", "run", "format_report"]

_PROTOCOLS = ("disco", "nd-disco", "s4")


@dataclass(frozen=True)
class ScalingResult:
    """Per-size mean stretch and mean state for each protocol."""

    sweep: tuple[int, ...]
    mean_first_stretch: dict[str, dict[int, float]]
    mean_later_stretch: dict[str, dict[int, float]]
    mean_state: dict[str, dict[int, float]]
    scale_label: str

    def state_growth_exponent(self, protocol: str) -> float:
        """Least-squares slope of log(state) vs log(n) (≈ 0.5 for Õ(√n))."""
        points = sorted(self.mean_state[protocol].items())
        if len(points) < 2:
            raise ValueError("need at least two sweep sizes to fit an exponent")
        xs = [math.log(n) for n, _ in points]
        ys = [math.log(max(state, 1e-9)) for _, state in points]
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        denominator = sum((x - mean_x) ** 2 for x in xs)
        return numerator / denominator


def _run_size(scale: ExperimentScale, key: str) -> SimulationResults:
    """Build and measure one swept size -- the engine's shard unit."""
    n = int(key)
    topology = sweep_geometric(n, scale.seed + n)
    simulation = StaticSimulation(topology, _PROTOCOLS, seed=scale.seed)
    return simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=True,
        pair_sample=min(scale.pair_sample, 4 * n),
    )


def _merge_sizes(
    scale: ExperimentScale, parts: dict[str, SimulationResults]
) -> ScalingResult:
    sweep = scale.scaling_sweep
    first: dict[str, dict[int, float]] = {}
    later: dict[str, dict[int, float]] = {}
    state: dict[str, dict[int, float]] = {}
    for n in sweep:
        results = parts[str(n)]
        for name, report in results.stretch.items():
            first.setdefault(name, {})[n] = report.first_summary.mean
            later.setdefault(name, {})[n] = report.later_summary.mean
        for name, report in results.state.items():
            state.setdefault(name, {})[n] = report.entry_summary.mean
    return ScalingResult(
        sweep=sweep,
        mean_first_stretch=first,
        mean_later_stretch=later,
        mean_state=state,
        scale_label=scale.label,
    )


@scenario(
    "fig09-scaling",
    title="Fig. 9: mean stretch and state vs network size (geometric sweep)",
    family="geometric",
    protocols=_PROTOCOLS,
    metrics=("stretch", "state"),
    workload="converged-state measurement per swept size",
    aliases=("fig09", "scaling"),
    tags=("figure", "quick"),
    shards=lambda scale: tuple(str(n) for n in scale.scaling_sweep),
    shard_runner=_run_size,
    shard_merge=_merge_sizes,
)
def run(scale: ExperimentScale | None = None) -> ScalingResult:
    """Run the scaling sweep over geometric random graphs."""
    scale = scale or default_scale()
    return _merge_sizes(
        scale,
        {str(n): _run_size(scale, str(n)) for n in scale.scaling_sweep},
    )


def format_report(result: ScalingResult) -> str:
    """Render the two panels of Fig. 9 (stretch and state vs n)."""
    stretch_rows = []
    for name in result.mean_first_stretch:
        stretch_rows.append(
            [f"{name} First"]
            + [result.mean_first_stretch[name][n] for n in result.sweep]
        )
        stretch_rows.append(
            [f"{name} Later"]
            + [result.mean_later_stretch[name][n] for n in result.sweep]
        )
    state_rows = []
    for name in result.mean_state:
        state_rows.append(
            [name]
            + [result.mean_state[name][n] for n in result.sweep]
            + [result.state_growth_exponent(name)]
        )
    parts = [
        header(
            "Fig. 9: scaling of mean stretch and mean state "
            "(geometric random graphs)",
            f"scale={result.scale_label}",
        ),
        "\n[mean stretch vs n]",
        format_table(
            ["curve \\ n"] + [str(n) for n in result.sweep],
            stretch_rows,
        ),
        "\n[mean state vs n]  (growth exponent ~0.5 means Õ(√n))",
        format_table(
            ["protocol \\ n"] + [str(n) for n in result.sweep] + ["exponent"],
            state_rows,
            float_format="{:.2f}",
        ),
    ]
    return "\n".join(parts)
