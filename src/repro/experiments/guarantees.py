"""Theorems 1 and 2 -- empirical verification of the stretch and state bounds.

Theorem 1: after converging, Disco routes the first packet of each flow with
stretch ≤ 7 and subsequent packets with stretch ≤ 3 (w.h.p.).

Theorem 2: each Disco node maintains O(√(n log n)) routing-table entries
(data plane) with high probability.

This experiment sweeps several topology families (G(n,m), geometric,
Internet-like, and the pathological ring / two-level-tree graphs), measures
worst-case first/later stretch over sampled pairs and worst-case per-node
state, and compares them against the bounds.  The state bound is checked
against ``c · √(n log n)`` with the constant ``c`` reported, so that the
sublinearity (rather than an arbitrary constant) is what is being verified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.disco import DiscoRouting
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_as_level,
    ring_graph,
    two_level_tree,
)
from repro.graphs.topology import Topology
from repro.scenarios.spec import scenario
from repro.metrics.state import measure_state
from repro.metrics.stretch import measure_stretch
from repro.utils.formatting import format_table

__all__ = ["GuaranteeRow", "GuaranteeResult", "run", "format_report"]

FIRST_PACKET_BOUND = 7.0
LATER_PACKET_BOUND = 3.0


@dataclass(frozen=True)
class GuaranteeRow:
    """Observed extremes for one topology."""

    topology: str
    num_nodes: int
    max_first_stretch: float
    max_later_stretch: float
    max_state: int
    state_bound_constant: float

    @property
    def first_within_bound(self) -> bool:
        """Whether the observed first-packet stretch respects Theorem 1."""
        return self.max_first_stretch <= FIRST_PACKET_BOUND + 1e-9

    @property
    def later_within_bound(self) -> bool:
        """Whether the observed later-packet stretch respects Theorem 1."""
        return self.max_later_stretch <= LATER_PACKET_BOUND + 1e-9


@dataclass(frozen=True)
class GuaranteeResult:
    """All topology rows."""

    rows: tuple[GuaranteeRow, ...]
    scale_label: str


def _topologies(scale: ExperimentScale) -> list[Topology]:
    n = scale.comparison_nodes
    return [
        gnm_random_graph(n, seed=scale.seed, average_degree=8.0),
        geometric_random_graph(n, seed=scale.seed, average_degree=8.0),
        internet_as_level(n, seed=scale.seed),
        ring_graph(max(64, n // 4)),
        two_level_tree(max(8, int(math.isqrt(n)))),
    ]


@scenario(
    "guarantees",
    title="Theorems 1 & 2: empirical stretch and state bounds for Disco",
    family=("gnm", "geometric", "as-level", "ring", "tree"),
    protocols=("disco",),
    metrics=("stretch", "state"),
    workload="worst-case probes across topology families",
    aliases=("theorems",),
    tags=("study", "quick"),
)
def run(scale: ExperimentScale | None = None) -> GuaranteeResult:
    """Measure worst-case stretch and state for Disco across topology families."""
    scale = scale or default_scale()
    rows = []
    for topology in _topologies(scale):
        disco = DiscoRouting(topology, seed=scale.seed)
        stretch = measure_stretch(
            disco, pair_sample=scale.pair_sample, seed=scale.seed + 13
        )
        state = measure_state(disco)
        n = topology.num_nodes
        bound_unit = math.sqrt(n * math.log(max(n, 2)))
        rows.append(
            GuaranteeRow(
                topology=topology.name,
                num_nodes=n,
                max_first_stretch=stretch.first_summary.maximum,
                max_later_stretch=stretch.later_summary.maximum,
                max_state=int(state.entry_summary.maximum),
                state_bound_constant=state.entry_summary.maximum / bound_unit,
            )
        )
    return GuaranteeResult(rows=tuple(rows), scale_label=scale.label)


def format_report(result: GuaranteeResult) -> str:
    """Render the Theorem 1/2 verification table."""
    table = format_table(
        [
            "topology",
            "n",
            "max first stretch (≤7)",
            "max later stretch (≤3)",
            "max state",
            "state / sqrt(n ln n)",
        ],
        [
            [
                row.topology,
                row.num_nodes,
                row.max_first_stretch,
                row.max_later_stretch,
                row.max_state,
                row.state_bound_constant,
            ]
            for row in result.rows
        ],
        float_format="{:.2f}",
    )
    return "\n".join(
        [
            header(
                "Theorems 1 & 2: empirical stretch and state bounds for Disco",
                f"scale={result.scale_label}",
            ),
            table,
        ]
    )
