"""Extension experiments: serving behaviour of the name-resolution service.

The paper sizes the §4.3 consistent-hashing database and proves its
placement properties, but never measures it as a *service*: how far a
lookup travels, how stale a served record can get under shard churn, and
how evenly virtual nodes spread Zipf-skewed load across the landmark
shards.  These three scenarios run the sharded service of
:mod:`repro.resolution` over a converged ``nd-disco`` substrate and
measure exactly that:

* ``resolution-latency`` -- Zipf lookups with diurnal and flash-crowd
  phases, group contacts enabled, billed through the scheme-lifetime
  router cache; emits lookup-latency and hop-count CDFs.
* ``resolution-staleness`` -- the same engine under unannounced shard
  crashes and rejoins, swept over the replication factor r; emits
  served-staleness CDFs and miss (availability) rates.
* ``resolution-balance`` -- storage and served-load histograms across the
  shards, swept over the virtual-node count.

Sharding: ``resolution-latency`` shards by *tick segment* (the traffic
engine replays service evolution from tick 0 and bills only its own
ticks, so concatenating segments in order is the serial bill); the two
sweeps shard by sweep point.  Every ``run`` is written as the merge of
its shards, so ``repro run --workers N`` is byte-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nddisco import NDDiscoRouting
from repro.core.shortcutting import ShortcutMode
from repro.core.sloppy_groups import SloppyGrouping
from repro.dynamics.stream import DynEvent
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import sweep_gnm
from repro.resolution.service import GroupContactIndex, ShardedResolutionService
from repro.resolution.traffic import (
    LookupWorkload,
    TrafficReport,
    generate_lookup_workload,
    run_traffic,
)
from repro.scenarios.cache import cached_scheme
from repro.scenarios.spec import scenario
from repro.utils.distributions import Summary, cdf_points, summarize
from repro.utils.formatting import format_table

__all__ = [
    "ResolutionBalanceResult",
    "ResolutionLatencyResult",
    "ResolutionStalenessResult",
    "format_report",
    "run_balance",
    "run_latency",
    "run_staleness",
]

#: Tick segments the latency scenario shards over.
LATENCY_SEGMENTS = 3
#: Replication factors the staleness scenario sweeps.
STALENESS_REPLICAS = (1, 2, 3)
#: Virtual-node counts the balance scenario sweeps.
BALANCE_VIRTUAL_NODES = (1, 4, 16)

_DURATION_TICKS = 64
_REFRESH_INTERVAL = 16
_CACHE_BUDGET = 1 << 16
#: The latency scenario provisions its sloppy groups for the paper's
#: million-node deployment regime rather than the testbed size: at n=256
#: the honest estimate yields 1-bit groups that swallow every lookup,
#: and the scenario exists to measure *both* serving paths.
_TARGET_DEPLOYMENT = float(1 << 20)


def _scenario_nodes(scale: ExperimentScale) -> int:
    # The traffic engine replays the full timeline per segment, so the
    # scenarios run on a moderate topology regardless of global scale.
    return min(scale.comparison_nodes, 256)


def _lookup_budget(scale: ExperimentScale) -> int:
    # ~24 lookups/node at the default scale; grows with the topology.
    return 24 * _scenario_nodes(scale)


def _substrate(scale: ExperimentScale) -> NDDiscoRouting:
    topology = sweep_gnm(_scenario_nodes(scale), scale.seed)
    # Same key shape as StaticSimulation's nd-disco substrate, so shard
    # processes (and co-resident scenarios) share one converged scheme.
    return cached_scheme(
        topology,
        "nd-disco",
        lambda: NDDiscoRouting(topology, seed=scale.seed),
        seed=scale.seed,
        shortcut_mode=ShortcutMode.NO_PATH_KNOWLEDGE,
    )


def _latency_workload(scale: ExperimentScale) -> LookupWorkload:
    flash_start = _DURATION_TICKS * 3 // 8
    return generate_lookup_workload(
        _scenario_nodes(scale),
        num_lookups=_lookup_budget(scale),
        duration_ticks=_DURATION_TICKS,
        seed=scale.seed,
        zipf_exponent=0.9,
        diurnal_amplitude=0.5,
        flash=(flash_start, flash_start + _DURATION_TICKS // 8, 4.0),
    )


def _segment_bounds(duration: int, segment: int, segments: int) -> tuple[int, int]:
    """Tick range [lo, hi) of one segment (near-even contiguous split)."""
    base = duration // segments
    extra = duration % segments
    lo = segment * base + min(segment, extra)
    hi = lo + base + (1 if segment < extra else 0)
    return lo, hi


def _churn_events(routing: NDDiscoRouting, duration: int) -> list[DynEvent]:
    """Deterministic crash/rejoin schedule over the first three shards.

    Each crashed shard loses its copies (sole copies stay lost until the
    owners' next refresh) and rejoins half a refresh interval later.
    """
    landmarks = sorted(routing.landmarks)
    events: list[DynEvent] = []
    period = duration // 4
    for index, shard in enumerate(landmarks[: min(3, len(landmarks) - 1)]):
        down = period * (index + 1) - period // 2
        up = down + _REFRESH_INTERVAL // 2
        events.append(DynEvent(down, "node-leave", shard))
        if up < duration:
            events.append(DynEvent(up, "node-join", shard))
    return events


# ---------------------------------------------------------------------------
# resolution-latency
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResolutionLatencyResult:
    """Lookup-latency/hop distributions of the flash-crowd workload."""

    num_nodes: int
    num_shards: int
    lookups: int
    group_hits: int
    ring_hits: int
    misses: int
    latency: Summary
    latency_cdf: tuple[tuple[float, float], ...]
    hop_cdf: tuple[tuple[float, float], ...]
    cache_stats: dict[str, int]
    scale_label: str


def _latency_shard_keys(scale: ExperimentScale) -> tuple[str, ...]:
    return tuple(f"seg{segment}" for segment in range(LATENCY_SEGMENTS))


def _latency_run_shard(scale: ExperimentScale, key: str) -> TrafficReport:
    routing = _substrate(scale)
    grouping = SloppyGrouping(routing.names, _TARGET_DEPLOYMENT)
    segment = int(key[3:])
    return run_traffic(
        routing,
        _latency_workload(scale),
        replicas=2,
        virtual_nodes=8,
        refresh_interval=_REFRESH_INTERVAL,
        contacts=GroupContactIndex(grouping),
        cache_budget=_CACHE_BUDGET,
        bill_ticks=_segment_bounds(_DURATION_TICKS, segment, LATENCY_SEGMENTS),
    )


def _latency_merge(
    scale: ExperimentScale, parts: dict
) -> ResolutionLatencyResult:
    report = TrafficReport.merge(
        [parts[key] for key in _latency_shard_keys(scale)]
    )
    routing = _substrate(scale)
    return ResolutionLatencyResult(
        num_nodes=_scenario_nodes(scale),
        num_shards=len(routing.landmarks),
        lookups=report.lookups,
        group_hits=report.group_hits,
        ring_hits=report.ring_hits,
        misses=report.misses,
        latency=summarize(report.latencies),
        latency_cdf=tuple(cdf_points(report.latencies)),
        hop_cdf=tuple(cdf_points(float(h) for h in report.hops)),
        cache_stats=report.cache_stats,
        scale_label=scale.label,
    )


@scenario(
    "resolution-latency",
    title="Extension: lookup latency of the sharded resolution service",
    family="gnm",
    protocols=("nd-disco",),
    metrics=("latency", "hops"),
    workload="Zipf lookups with diurnal + flash-crowd phases, group contacts on",
    aliases=("res-latency",),
    tags=("study", "quick"),
    shards=_latency_shard_keys,
    shard_runner=_latency_run_shard,
    shard_merge=_latency_merge,
)
def run_latency(scale: ExperimentScale | None = None) -> ResolutionLatencyResult:
    """Serve the flash-crowd workload and digest latency/hop CDFs."""
    scale = scale or default_scale()
    # The serial run IS the shard merge, so `--workers N` is byte-identical.
    return _latency_merge(
        scale,
        {key: _latency_run_shard(scale, key) for key in _latency_shard_keys(scale)},
    )


# ---------------------------------------------------------------------------
# resolution-staleness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StalenessRow:
    """One replication factor's staleness/availability digest."""

    replicas: int
    ring_hits: int
    misses: int
    miss_rate: float
    max_staleness: float
    staleness_cdf: tuple[tuple[float, float], ...]
    expired_records: int
    lost_records: int
    moved_copies: int


@dataclass(frozen=True)
class ResolutionStalenessResult:
    """Served staleness and availability under shard crashes, by r."""

    num_nodes: int
    num_shards: int
    timeout: float
    rows: tuple[StalenessRow, ...]
    scale_label: str


def _staleness_shard_keys(scale: ExperimentScale) -> tuple[str, ...]:
    return tuple(f"r{replicas}" for replicas in STALENESS_REPLICAS)


def _staleness_run_shard(scale: ExperimentScale, key: str) -> StalenessRow:
    routing = _substrate(scale)
    replicas = int(key[1:])
    report = run_traffic(
        routing,
        _latency_workload(scale),
        replicas=replicas,
        virtual_nodes=8,
        refresh_interval=_REFRESH_INTERVAL,
        shard_events=_churn_events(routing, _DURATION_TICKS),
        cache_budget=_CACHE_BUDGET,
    )
    return StalenessRow(
        replicas=replicas,
        ring_hits=report.ring_hits,
        misses=report.misses,
        miss_rate=report.misses / report.lookups,
        max_staleness=max(report.staleness, default=0.0),
        staleness_cdf=tuple(cdf_points(report.staleness)),
        expired_records=report.expired_records,
        lost_records=sum(r.lost_records for r in report.rebalances),
        moved_copies=sum(r.moved_copies for r in report.rebalances),
    )


def _staleness_merge(
    scale: ExperimentScale, parts: dict
) -> ResolutionStalenessResult:
    routing = _substrate(scale)
    return ResolutionStalenessResult(
        num_nodes=_scenario_nodes(scale),
        num_shards=len(routing.landmarks),
        timeout=2.0 * _REFRESH_INTERVAL + 1.0,
        rows=tuple(
            parts[key] for key in _staleness_shard_keys(scale)
        ),
        scale_label=scale.label,
    )


@scenario(
    "resolution-staleness",
    title="Extension: served staleness under shard churn, by replication",
    family="gnm",
    protocols=("nd-disco",),
    metrics=("staleness", "availability"),
    workload="Zipf lookups under unannounced shard crashes and rejoins",
    aliases=("res-staleness",),
    tags=("study", "quick"),
    shards=_staleness_shard_keys,
    shard_runner=_staleness_run_shard,
    shard_merge=_staleness_merge,
)
def run_staleness(
    scale: ExperimentScale | None = None,
) -> ResolutionStalenessResult:
    """Sweep the replication factor under shard crashes."""
    scale = scale or default_scale()
    return _staleness_merge(
        scale,
        {
            key: _staleness_run_shard(scale, key)
            for key in _staleness_shard_keys(scale)
        },
    )


# ---------------------------------------------------------------------------
# resolution-balance
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BalanceRow:
    """One virtual-node count's storage/served load balance."""

    virtual_nodes: int
    storage_histogram: dict[int, int]
    storage_imbalance: float
    served_histogram: dict[int, int]
    served_imbalance: float


@dataclass(frozen=True)
class ResolutionBalanceResult:
    """Per-shard load histograms across the virtual-node sweep."""

    num_nodes: int
    num_shards: int
    replicas: int
    rows: tuple[BalanceRow, ...]
    scale_label: str


def _imbalance(histogram: dict[int, int]) -> float:
    """Peak-to-mean ratio of a per-shard load histogram."""
    if not histogram:
        return 0.0
    mean = sum(histogram.values()) / len(histogram)
    if mean == 0:
        return 0.0
    return max(histogram.values()) / mean


def _balance_shard_keys(scale: ExperimentScale) -> tuple[str, ...]:
    return tuple(f"v{vnodes}" for vnodes in BALANCE_VIRTUAL_NODES)


def _balance_run_shard(scale: ExperimentScale, key: str) -> BalanceRow:
    routing = _substrate(scale)
    virtual_nodes = int(key[1:])
    service = ShardedResolutionService(
        sorted(routing.landmarks),
        virtual_nodes=virtual_nodes,
        replicas=1,
        refresh_interval=float(_REFRESH_INTERVAL),
    )
    service.populate(routing.names, routing.addresses, now=0.0)
    storage = service.load_distribution()
    report = run_traffic(
        routing,
        _latency_workload(scale),
        replicas=1,
        virtual_nodes=virtual_nodes,
        refresh_interval=_REFRESH_INTERVAL,
        cache_budget=_CACHE_BUDGET,
    )
    served = {shard: 0 for shard in service.shards}
    served.update(report.shard_loads)
    return BalanceRow(
        virtual_nodes=virtual_nodes,
        storage_histogram=dict(sorted(storage.items())),
        storage_imbalance=_imbalance(storage),
        served_histogram=dict(sorted(served.items())),
        served_imbalance=_imbalance(served),
    )


def _balance_merge(
    scale: ExperimentScale, parts: dict
) -> ResolutionBalanceResult:
    routing = _substrate(scale)
    return ResolutionBalanceResult(
        num_nodes=_scenario_nodes(scale),
        num_shards=len(routing.landmarks),
        replicas=1,
        rows=tuple(parts[key] for key in _balance_shard_keys(scale)),
        scale_label=scale.label,
    )


@scenario(
    "resolution-balance",
    title="Extension: shard load balance across the virtual-node sweep",
    family="gnm",
    protocols=("nd-disco",),
    metrics=("load-balance",),
    workload="record placement + Zipf served load, virtual nodes 1/4/16",
    aliases=("res-balance",),
    tags=("study", "quick"),
    shards=_balance_shard_keys,
    shard_runner=_balance_run_shard,
    shard_merge=_balance_merge,
)
def run_balance(scale: ExperimentScale | None = None) -> ResolutionBalanceResult:
    """Sweep virtual-node counts and digest per-shard load histograms."""
    scale = scale or default_scale()
    return _balance_merge(
        scale,
        {key: _balance_run_shard(scale, key) for key in _balance_shard_keys(scale)},
    )


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


def _format_latency(result: ResolutionLatencyResult) -> str:
    table = format_table(
        ["outcome", "lookups", "share"],
        [
            ["group hit", result.group_hits, result.group_hits / result.lookups],
            ["ring hit", result.ring_hits, result.ring_hits / result.lookups],
            ["miss", result.misses, result.misses / result.lookups],
        ],
        float_format="{:.3f}",
    )
    cache = result.cache_stats
    lines = [
        header(
            f"Resolution lookup latency on a {result.num_nodes}-node G(n,m) "
            f"graph ({result.num_shards} landmark shards)",
            f"scale={result.scale_label}",
        ),
        table,
        (
            f"latency: mean {result.latency.mean:.2f}  "
            f"median {result.latency.median:.2f}  "
            f"p95 {result.latency.p95:.2f}  p99 {result.latency.p99:.2f}"
        ),
        (
            f"router cache: {cache['hits']} hits / {cache['misses']} misses "
            f"({cache['evictions']} evictions within {cache['max_bytes']} bytes)"
        ),
    ]
    return "\n".join(lines)


def _format_staleness(result: ResolutionStalenessResult) -> str:
    rows = [
        [
            row.replicas,
            row.ring_hits,
            row.misses,
            row.miss_rate,
            row.max_staleness,
            row.lost_records,
        ]
        for row in result.rows
    ]
    table = format_table(
        ["replicas", "ring hits", "misses", "miss rate", "max staleness", "lost"],
        rows,
        float_format="{:.3f}",
    )
    return "\n".join(
        [
            header(
                f"Served staleness under shard churn on a {result.num_nodes}-node "
                f"graph ({result.num_shards} shards, timeout {result.timeout:.0f})",
                f"scale={result.scale_label}",
            ),
            table,
            "no served record exceeds the 2t+1 timeout by construction",
        ]
    )


def _format_balance(result: ResolutionBalanceResult) -> str:
    rows = [
        [
            row.virtual_nodes,
            row.storage_imbalance,
            row.served_imbalance,
            max(row.storage_histogram.values(), default=0),
            max(row.served_histogram.values(), default=0),
        ]
        for row in result.rows
    ]
    table = format_table(
        [
            "virtual nodes",
            "storage peak/mean",
            "served peak/mean",
            "peak records",
            "peak served",
        ],
        rows,
        float_format="{:.3f}",
    )
    return "\n".join(
        [
            header(
                f"Shard load balance on a {result.num_nodes}-node graph "
                f"({result.num_shards} shards, r={result.replicas})",
                f"scale={result.scale_label}",
            ),
            table,
        ]
    )


def format_report(result: object) -> str:
    """Render whichever resolution-service result this module produced."""
    if isinstance(result, ResolutionLatencyResult):
        return _format_latency(result)
    if isinstance(result, ResolutionStalenessResult):
        return _format_staleness(result)
    if isinstance(result, ResolutionBalanceResult):
        return _format_balance(result)
    raise TypeError(f"unexpected result type {type(result).__name__}")
