"""§4.2 -- explicit-route (address) sizes on the router-level topology.

"We measured the size of explicit routes in CAIDA's router-level map of the
Internet by picking random landmarks and encoding shortest paths from each
node to its closest landmark as a sequence of these O(log d)-bit encodings of
the node identifiers on the path.  The maximum size of our addresses is just
10.625 bytes (less than an IPv6 address), the 95th percentile is 5 bytes, and
the mean -- the important metric for the per-node state bound -- is 2.93
bytes (less than an IPv4 address)."

The same measurement is performed here on the synthetic router-level-like
topology (and, for contrast, on a ring -- the worst case where addresses grow
to Θ̃(√n) bits).  The property to verify is not the exact byte values (they
depend on the CAIDA map) but their *order*: mean of a few bytes, comfortably
below an IPv6 address, despite the absence of any explicit bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nddisco import NDDiscoRouting
from repro.core.shortcutting import ShortcutMode
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import router_level_topology
from repro.graphs.generators import ring_graph
from repro.scenarios.cache import cached_scheme
from repro.scenarios.spec import scenario
from repro.utils.distributions import Summary, summarize
from repro.utils.formatting import format_table

__all__ = ["AddressSizeResult", "run", "format_report"]


@dataclass(frozen=True)
class AddressSizeResult:
    """Explicit-route size distributions (fractional bytes)."""

    router_level: Summary
    ring: Summary
    router_level_p95: float
    ring_p95: float
    scale_label: str


def _address_route_bytes(routing: NDDiscoRouting) -> list[float]:
    return [address.route.size_bytes for address in routing.addresses]


@scenario(
    "addr-sizes",
    title="§4.2: explicit-route address sizes (router-level vs ring)",
    family=("router-level", "ring"),
    protocols=("nd-disco",),
    metrics=("address-bytes",),
    workload="closest-landmark route encoding per node",
    aliases=("addr", "address-sizes"),
    tags=("study", "quick"),
)
def run(scale: ExperimentScale | None = None) -> AddressSizeResult:
    """Measure explicit-route sizes on the router-level-like graph and a ring."""
    scale = scale or default_scale()
    router_topology = router_level_topology(scale)
    # Same key shape as StaticSimulation's nd-disco substrate, so this
    # study shares fig07's converged routing on the router-level graph.
    router_routing = cached_scheme(
        router_topology,
        "nd-disco",
        lambda: NDDiscoRouting(router_topology, seed=scale.seed),
        seed=scale.seed,
        shortcut_mode=ShortcutMode.NO_PATH_KNOWLEDGE,
    )
    router_sizes = _address_route_bytes(router_routing)

    ring_topology = ring_graph(max(64, scale.comparison_nodes // 2))
    ring_routing = NDDiscoRouting(ring_topology, seed=scale.seed)
    ring_sizes = _address_route_bytes(ring_routing)

    router_summary = summarize(router_sizes)
    ring_summary = summarize(ring_sizes)
    return AddressSizeResult(
        router_level=router_summary,
        ring=ring_summary,
        router_level_p95=router_summary.p95,
        ring_p95=ring_summary.p95,
        scale_label=scale.label,
    )


def format_report(result: AddressSizeResult) -> str:
    """Render the address-size table (paper: mean 2.93 B, p95 5 B, max 10.625 B)."""
    table = format_table(
        ["topology", "mean bytes", "p95 bytes", "max bytes"],
        [
            [
                "router-level-like",
                result.router_level.mean,
                result.router_level_p95,
                result.router_level.maximum,
            ],
            ["ring (worst case)", result.ring.mean, result.ring_p95, result.ring.maximum],
        ],
    )
    note = (
        "Paper (CAIDA router-level map): mean 2.93 B, 95th percentile 5 B, "
        "max 10.625 B.  IPv4 address = 4 B, IPv6 address = 16 B."
    )
    return "\n".join(
        [
            header(
                "§4.2: explicit-route (address) sizes",
                f"scale={result.scale_label}",
            ),
            table,
            note,
        ]
    )
