"""Shared rendering of experiment results as paper-style text reports."""

from __future__ import annotations

from typing import Mapping

from repro.metrics.congestion import CongestionReport
from repro.metrics.state import StateReport
from repro.metrics.stretch import StretchReport
from repro.utils.formatting import format_cdf, format_table

__all__ = [
    "render_state_reports",
    "render_stretch_reports",
    "render_congestion_reports",
    "header",
]


def header(title: str, subtitle: str = "") -> str:
    """A section header used at the top of every experiment report."""
    lines = ["=" * 72, title]
    if subtitle:
        lines.append(subtitle)
    lines.append("=" * 72)
    return "\n".join(lines)


def render_state_reports(reports: Mapping[str, StateReport]) -> str:
    """Render per-protocol state distributions (the Fig. 2/4/5 left panels)."""
    cdf_series = {name: list(report.entries) for name, report in reports.items()}
    summary_rows = []
    for name, report in reports.items():
        summary = report.entry_summary
        summary_rows.append(
            [name, summary.mean, summary.median, summary.p95, summary.maximum]
        )
    parts = [
        "Per-node state (routing table entries), CDF quantiles over nodes:",
        format_cdf(cdf_series, float_format="{:.1f}"),
        "",
        "Summary:",
        format_table(
            ["protocol", "mean", "median", "p95", "max"],
            summary_rows,
            float_format="{:.1f}",
        ),
    ]
    return "\n".join(parts)


def render_stretch_reports(reports: Mapping[str, StretchReport]) -> str:
    """Render per-protocol stretch distributions (the Fig. 3/4/5 middle panels)."""
    cdf_series: dict[str, list[float]] = {}
    for name, report in reports.items():
        cdf_series[f"{name}-First"] = list(report.first_packet)
        cdf_series[f"{name}-Later"] = list(report.later_packets)
    summary_rows = []
    for name, report in reports.items():
        first = report.first_summary
        later = report.later_summary
        summary_rows.append(
            [name, first.mean, first.maximum, later.mean, later.maximum]
        )
    parts = [
        "Path stretch, CDF quantiles over source-destination pairs:",
        format_cdf(cdf_series),
        "",
        "Summary:",
        format_table(
            ["protocol", "first mean", "first max", "later mean", "later max"],
            summary_rows,
        ),
    ]
    return "\n".join(parts)


def render_congestion_reports(reports: Mapping[str, CongestionReport]) -> str:
    """Render per-protocol congestion (the Fig. 4/5 right panels and Fig. 10)."""
    cdf_series = {
        name: [float(v) for v in report.usage_values]
        for name, report in reports.items()
    }
    summary_rows = []
    for name, report in reports.items():
        summary = report.summary
        summary_rows.append(
            [
                name,
                summary.mean,
                summary.p99,
                report.max_usage(),
                report.fraction_above(int(summary.p99)),
            ]
        )
    parts = [
        "Congestion (paths per edge), CDF quantiles over edges:",
        format_cdf(cdf_series, quantiles=(50, 90, 99, 99.9, 100), float_format="{:.1f}"),
        "",
        "Summary:",
        format_table(
            ["protocol", "mean", "p99", "max", "frac edges > p99"],
            summary_rows,
            float_format="{:.3f}",
        ),
    ]
    return "\n".join(parts)
