"""Fig. 5 -- state, stretch, and congestion on a geometric random graph.

Same five-protocol comparison as Fig. 4 but on the latency-annotated
geometric random graph, where the stretch differences are starkest: "The
maximum stretch values seen for the first packets in the geometric random
graph are 2.4 for Disco, 30 for S4, and 39 for VRR" (§5.2).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.fig04_gnm_comparison import (
    ComparisonResult,
    merge_protocol_shards,
    run_protocol_shard,
)
from repro.experiments.reporting import (
    header,
    render_congestion_reports,
    render_state_reports,
    render_stretch_reports,
)
from repro.experiments.workloads import comparison_geometric
from repro.scenarios.spec import scenario
from repro.staticsim.simulation import StaticSimulation

__all__ = ["run", "format_report"]

_PROTOCOLS = ("disco", "nd-disco", "s4", "vrr", "path-vector")


def _run_shard(scale: ExperimentScale, protocol: str):
    """Fig. 4's protocol shard, pointed at the geometric topology."""
    return run_protocol_shard(
        scale, protocol, topology_builder=comparison_geometric
    )


@scenario(
    "fig05-geometric-comparison",
    title="Fig. 5: state/stretch/congestion, five protocols on geometric "
    "latencies",
    family="geometric",
    protocols=_PROTOCOLS,
    metrics=("state", "stretch", "congestion"),
    workload="converged-state comparison, shared sampled workloads",
    aliases=("fig05",),
    tags=("figure",),
    shards=_PROTOCOLS,
    shard_runner=_run_shard,
    shard_merge=merge_protocol_shards,
)
def run(scale: ExperimentScale | None = None) -> ComparisonResult:
    """Run the five-protocol comparison on the geometric topology."""
    scale = scale or default_scale()
    topology = comparison_geometric(scale)
    simulation = StaticSimulation(topology, _PROTOCOLS, seed=scale.seed)
    results = simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=True,
        measure_congestion_flag=True,
        pair_sample=scale.pair_sample,
    )
    return ComparisonResult(
        results=results, topology_label=topology.name, scale_label=scale.label
    )


def format_report(result: ComparisonResult) -> str:
    """Render the three panels of Fig. 5."""
    parts = [
        header(
            "Fig. 5: Disco vs ND-Disco vs S4 vs VRR vs path vector "
            f"on {result.topology_label} (link latencies)",
            f"scale={result.scale_label}",
        ),
        "\n[state]",
        render_state_reports(result.results.state),
        "\n[stretch]",
        render_stretch_reports(result.results.stretch),
        "\n[congestion]",
        render_congestion_reports(result.results.congestion),
    ]
    return "\n".join(parts)
