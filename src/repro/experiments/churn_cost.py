"""Extension experiment: incremental maintenance cost under churn.

The paper's Fig. 8 measures convergence from scratch and leaves "continuous
churn to future work" (§5.2).  This experiment provides that future-work
measurement for the converged-state model: it applies a sequence of
connectivity-preserving link failures/recoveries to the comparison G(n,m)
topology and, for each event, charges the incremental updates Disco needs
(address re-registrations, sloppy-group re-announcements, vicinity and
landmark route repairs), comparing the per-event cost against the cost of
reconverging from scratch.

Two engines produce those per-event bills, selected by ``REPRO_DYNAMICS``:

* ``event`` (default) -- the event-driven :class:`ChurnEngine`, which
  maintains the converged substrate incrementally and charges the bill
  without ever diffing full states.
* ``replay`` -- the seed-era oracle: rebuild a fully reconverged
  :class:`NDDiscoRouting` per event and diff
  (:func:`~repro.dynamics.maintenance.maintenance_cost`).

Both modes produce byte-identical scenario JSON (the differential tests
pin this), so the fast engine is safe by construction.

The scenario shards by churn *trial* and by *event-stream segment* within
a trial: each segment shard reconstructs its boundary topology by applying
the trial's event prefix and converges fresh state there (the state
handoff), so ``repro run churn-cost --workers N`` covers the former
serial-by-design scenario byte-identically for any worker count.

The quantity of interest: the mean per-event incremental cost should be a
small fraction of full reconvergence, which is what makes the protocol
practical under dynamics.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.landmarks import select_landmarks
from repro.core.nddisco import NDDiscoRouting
from repro.dynamics.churn import apply_event, generate_churn_workload
from repro.dynamics.engine import ChurnEngine
from repro.dynamics.maintenance import MaintenanceCost, maintenance_cost
from repro.dynamics.stream import events_from_workload
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import sweep_gnm
from repro.sim.convergence import simulate_nddisco_convergence
from repro.scenarios.spec import scenario
from repro.utils.formatting import format_table

__all__ = ["ChurnCostResult", "run", "format_report", "dynamics_mode"]

#: Default workload shape: trials x events, segments per trial for sharding.
DEFAULT_NUM_EVENTS = 6
DEFAULT_NUM_TRIALS = 1
SEGMENTS_PER_TRIAL = 2


def dynamics_mode() -> str:
    """The churn engine selection: ``event`` (default) or ``replay``."""
    mode = os.environ.get("REPRO_DYNAMICS", "event")
    if mode not in ("event", "replay"):
        raise ValueError(
            f"REPRO_DYNAMICS must be 'event' or 'replay', got {mode!r}"
        )
    return mode


@dataclass(frozen=True)
class ChurnCostResult:
    """Per-event incremental costs vs. the full-reconvergence baseline."""

    num_nodes: int
    events: int
    per_event: tuple[MaintenanceCost, ...]
    full_reconvergence_entries: float
    scale_label: str
    trials: int = 1

    @property
    def mean_incremental_entries(self) -> float:
        """Mean incremental updates per churn event."""
        if not self.per_event:
            return 0.0
        return sum(c.total_incremental_entries for c in self.per_event) / len(
            self.per_event
        )

    @property
    def mean_addresses_changed(self) -> float:
        """Mean number of addresses invalidated per event."""
        if not self.per_event:
            return 0.0
        return sum(c.addresses_changed for c in self.per_event) / len(self.per_event)

    @property
    def incremental_fraction(self) -> float:
        """Mean per-event cost as a fraction of full reconvergence."""
        if self.full_reconvergence_entries == 0:
            return 0.0
        return self.mean_incremental_entries / self.full_reconvergence_entries


def _scenario_nodes(scale: ExperimentScale) -> int:
    # The churn experiment converges full states (baseline and, in replay
    # mode, one per event), so it runs on a moderately sized topology
    # regardless of the global scale.
    return min(scale.comparison_nodes, 256)


def _trial_seed(scale: ExperimentScale, trial: int) -> int:
    # Trial 0 keeps the seed-era workload seed (scale.seed + 17) exactly.
    return scale.seed + 17 + 101 * trial


def _segment_bounds(num_events: int, segment: int, segments: int) -> tuple[int, int]:
    """Event range [lo, hi) of one segment (near-even contiguous split)."""
    base = num_events // segments
    extra = num_events % segments
    lo = segment * base + min(segment, extra)
    hi = lo + base + (1 if segment < extra else 0)
    return lo, hi


def _segment_costs(
    scale: ExperimentScale,
    trial: int,
    segment: int,
    *,
    num_events: int,
    segments: int,
) -> list[MaintenanceCost]:
    """One segment's per-event bills, with state handoff at the boundary.

    The boundary topology is the trial prefix applied to the base topology;
    converged state there is a pure function of (topology, seed, landmark
    set), so a segment shard reconstructs exactly the state the previous
    segment left behind -- byte-identical for any sharding.
    """
    num_nodes = _scenario_nodes(scale)
    topology = sweep_gnm(num_nodes, scale.seed)
    workload = generate_churn_workload(
        topology, num_events=num_events, seed=_trial_seed(scale, trial)
    )
    lo, hi = _segment_bounds(num_events, segment, segments)
    boundary = topology
    for event in workload.events[:lo]:
        boundary = apply_event(boundary, event)
    # NDDiscoRouting defaults its landmark set to select_landmarks(n, seed),
    # a pure function of (n, seed) -- every shard derives the same set
    # without shipping state.
    landmarks = select_landmarks(num_nodes, seed=scale.seed)
    segment_events = workload.events[lo:hi]
    if dynamics_mode() == "replay":
        state = NDDiscoRouting(boundary, seed=scale.seed, landmarks=landmarks)
        costs = []
        current = boundary
        for event in segment_events:
            current = apply_event(current, event)
            next_state = NDDiscoRouting(
                current, seed=scale.seed, landmarks=landmarks
            )
            costs.append(maintenance_cost(state, next_state))
            state = next_state
        return costs
    engine = ChurnEngine(boundary, seed=scale.seed, landmarks=landmarks)
    reports = engine.run(events_from_workload(segment_events))
    return [report.cost for report in reports]


def _shard_keys(scale: ExperimentScale) -> tuple[str, ...]:
    return ("full",) + tuple(
        f"t{trial}s{segment}"
        for trial in range(DEFAULT_NUM_TRIALS)
        for segment in range(SEGMENTS_PER_TRIAL)
    )


def _run_shard(scale: ExperimentScale, key: str):
    if key == "full":
        num_nodes = _scenario_nodes(scale)
        topology = sweep_gnm(num_nodes, scale.seed)
        landmarks = select_landmarks(num_nodes, seed=scale.seed)
        full = simulate_nddisco_convergence(
            topology, seed=scale.seed, landmarks=landmarks
        )
        return {"full_entries": full.total_entries}
    trial_part, segment_part = key[1:].split("s")
    costs = _segment_costs(
        scale,
        int(trial_part),
        int(segment_part),
        num_events=DEFAULT_NUM_EVENTS,
        segments=SEGMENTS_PER_TRIAL,
    )
    return {"costs": costs}


def _merge_shards(scale: ExperimentScale, parts: dict) -> ChurnCostResult:
    per_event: list[MaintenanceCost] = []
    for trial in range(DEFAULT_NUM_TRIALS):
        for segment in range(SEGMENTS_PER_TRIAL):
            per_event.extend(parts[f"t{trial}s{segment}"]["costs"])
    return ChurnCostResult(
        num_nodes=_scenario_nodes(scale),
        events=len(per_event),
        per_event=tuple(per_event),
        full_reconvergence_entries=parts["full"]["full_entries"],
        scale_label=scale.label,
        trials=DEFAULT_NUM_TRIALS,
    )


@scenario(
    "churn-cost",
    title="Extension: incremental maintenance cost under link churn",
    family="gnm",
    protocols=("nd-disco",),
    metrics=("maintenance",),
    workload="connectivity-preserving edge failures/recoveries",
    aliases=("churn",),
    tags=("study", "quick"),
    shards=_shard_keys,
    shard_runner=_run_shard,
    shard_merge=_merge_shards,
)
def run(
    scale: ExperimentScale | None = None,
    *,
    num_events: int = DEFAULT_NUM_EVENTS,
    num_trials: int = DEFAULT_NUM_TRIALS,
) -> ChurnCostResult:
    """Apply churn trials and measure the incremental cost of each event."""
    scale = scale or default_scale()
    if num_events == DEFAULT_NUM_EVENTS and num_trials == DEFAULT_NUM_TRIALS:
        # The default-parameter run IS the shard merge, so serial execution
        # and `repro run --workers N` are byte-identical by construction.
        return _merge_shards(
            scale, {key: _run_shard(scale, key) for key in _shard_keys(scale)}
        )
    num_nodes = _scenario_nodes(scale)
    topology = sweep_gnm(num_nodes, scale.seed)
    landmarks = select_landmarks(num_nodes, seed=scale.seed)
    per_event: list[MaintenanceCost] = []
    for trial in range(num_trials):
        workload = generate_churn_workload(
            topology, num_events=num_events, seed=_trial_seed(scale, trial)
        )
        if dynamics_mode() == "replay":
            current = topology
            state = NDDiscoRouting(current, seed=scale.seed, landmarks=landmarks)
            for event in workload:
                current = apply_event(current, event)
                next_state = NDDiscoRouting(
                    current, seed=scale.seed, landmarks=landmarks
                )
                per_event.append(maintenance_cost(state, next_state))
                state = next_state
        else:
            engine = ChurnEngine(topology, seed=scale.seed, landmarks=landmarks)
            per_event.extend(
                report.cost
                for report in engine.run(events_from_workload(workload.events))
            )
    full = simulate_nddisco_convergence(
        topology, seed=scale.seed, landmarks=landmarks
    )
    return ChurnCostResult(
        num_nodes=num_nodes,
        events=len(per_event),
        per_event=tuple(per_event),
        full_reconvergence_entries=full.total_entries,
        scale_label=scale.label,
        trials=num_trials,
    )


def format_report(result: ChurnCostResult) -> str:
    """Render the per-event incremental costs and the reconvergence comparison."""
    rows = []
    for index, cost in enumerate(result.per_event):
        rows.append(
            [
                index,
                cost.addresses_changed,
                cost.vicinity_entries_changed,
                cost.landmark_entries_changed,
                cost.dissemination_messages,
                cost.total_incremental_entries,
            ]
        )
    table = format_table(
        [
            "event",
            "addresses changed",
            "vicinity entries",
            "landmark entries",
            "dissemination msgs",
            "total incremental",
        ],
        rows,
        float_format="{:.0f}",
    )
    summary = (
        f"mean incremental updates per event: {result.mean_incremental_entries:.0f} "
        f"({result.incremental_fraction * 100.0:.2f}% of the "
        f"{result.full_reconvergence_entries:.0f} entries full reconvergence costs)"
    )
    return "\n".join(
        [
            header(
                f"Churn maintenance cost on a {result.num_nodes}-node G(n,m) graph "
                "(extension of Fig. 8)",
                f"scale={result.scale_label}",
            ),
            table,
            summary,
        ]
    )
