"""Extension experiment: incremental maintenance cost under churn.

The paper's Fig. 8 measures convergence from scratch and leaves "continuous
churn to future work" (§5.2).  This experiment provides that future-work
measurement for the converged-state model: it applies a sequence of
connectivity-preserving link failures/recoveries to the comparison G(n,m)
topology and, for each event, charges the incremental updates Disco needs
(address re-registrations, sloppy-group re-announcements, vicinity and
landmark route repairs), comparing the per-event cost against the cost of
reconverging from scratch.

The quantity of interest: the mean per-event incremental cost should be a
small fraction of full reconvergence, which is what makes the protocol
practical under dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nddisco import NDDiscoRouting
from repro.dynamics.churn import apply_event, generate_churn_workload
from repro.dynamics.maintenance import MaintenanceCost, maintenance_cost
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import sweep_gnm
from repro.sim.convergence import simulate_nddisco_convergence
from repro.scenarios.spec import scenario
from repro.utils.formatting import format_table

__all__ = ["ChurnCostResult", "run", "format_report"]


@dataclass(frozen=True)
class ChurnCostResult:
    """Per-event incremental costs vs. the full-reconvergence baseline."""

    num_nodes: int
    events: int
    per_event: tuple[MaintenanceCost, ...]
    full_reconvergence_entries: float
    scale_label: str

    @property
    def mean_incremental_entries(self) -> float:
        """Mean incremental updates per churn event."""
        if not self.per_event:
            return 0.0
        return sum(c.total_incremental_entries for c in self.per_event) / len(
            self.per_event
        )

    @property
    def mean_addresses_changed(self) -> float:
        """Mean number of addresses invalidated per event."""
        if not self.per_event:
            return 0.0
        return sum(c.addresses_changed for c in self.per_event) / len(self.per_event)

    @property
    def incremental_fraction(self) -> float:
        """Mean per-event cost as a fraction of full reconvergence."""
        if self.full_reconvergence_entries == 0:
            return 0.0
        return self.mean_incremental_entries / self.full_reconvergence_entries


@scenario(
    "churn-cost",
    title="Extension: incremental maintenance cost under link churn",
    family="gnm",
    protocols=("nd-disco",),
    metrics=("maintenance",),
    workload="connectivity-preserving edge failures/recoveries",
    aliases=("churn",),
    tags=("study", "quick"),
)
def run(
    scale: ExperimentScale | None = None, *, num_events: int = 6
) -> ChurnCostResult:
    """Apply ``num_events`` link events and measure the incremental cost of each."""
    scale = scale or default_scale()
    # The churn experiment diffs full converged states per event, so it runs
    # on a moderately sized topology regardless of the global scale.
    num_nodes = min(scale.comparison_nodes, 256)
    topology = sweep_gnm(num_nodes, scale.seed)
    workload = generate_churn_workload(
        topology, num_events=num_events, seed=scale.seed + 17
    )

    baseline = NDDiscoRouting(topology, seed=scale.seed)
    landmarks = baseline.landmarks
    full = simulate_nddisco_convergence(
        topology, seed=scale.seed, landmarks=landmarks
    )

    costs = []
    current_topology = topology
    current_state = baseline
    for event in workload:
        next_topology = apply_event(current_topology, event)
        next_state = NDDiscoRouting(next_topology, seed=scale.seed, landmarks=landmarks)
        costs.append(maintenance_cost(current_state, next_state))
        current_topology = next_topology
        current_state = next_state

    return ChurnCostResult(
        num_nodes=num_nodes,
        events=len(costs),
        per_event=tuple(costs),
        full_reconvergence_entries=full.total_entries,
        scale_label=scale.label,
    )


def format_report(result: ChurnCostResult) -> str:
    """Render the per-event incremental costs and the reconvergence comparison."""
    rows = []
    for index, cost in enumerate(result.per_event):
        rows.append(
            [
                index,
                cost.addresses_changed,
                cost.vicinity_entries_changed,
                cost.landmark_entries_changed,
                cost.dissemination_messages,
                cost.total_incremental_entries,
            ]
        )
    table = format_table(
        [
            "event",
            "addresses changed",
            "vicinity entries",
            "landmark entries",
            "dissemination msgs",
            "total incremental",
        ],
        rows,
        float_format="{:.0f}",
    )
    summary = (
        f"mean incremental updates per event: {result.mean_incremental_entries:.0f} "
        f"({result.incremental_fraction * 100.0:.2f}% of the "
        f"{result.full_reconvergence_entries:.0f} entries full reconvergence costs)"
    )
    return "\n".join(
        [
            header(
                f"Churn maintenance cost on a {result.num_nodes}-node G(n,m) graph "
                "(extension of Fig. 8)",
                f"scale={result.scale_label}",
            ),
            table,
            summary,
        ]
    )
