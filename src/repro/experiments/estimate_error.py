"""§5.2 -- robustness to errors in the estimate of n.

"Here, we inject random errors of up to 60% in this estimation.  With 60%
random error, across 5 runs on the 1024-node random graph, only one node
failed to find in its vicinity a node in only one of the sloppy groups, and
hence failed to reach all destinations in that group.  With 40% random error,
all nodes were able to reach all nodes and mean stretch increased marginally
by 0.6% from 1.253 to 1.261."

For each error level the experiment perturbs every node's estimate of n,
rebuilds the sloppy grouping (each node derives its own prefix length k from
its own estimate), and measures (a) reachability -- for every sampled pair,
does the source's vicinity contain a node that stores the destination's
address (or does the source know it directly / hold a direct route)? -- and
(b) mean first-packet stretch relative to the zero-error run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.disco import DiscoRouting
from repro.core.nddisco import NDDiscoRouting
from repro.estimation.error_injection import inject_estimate_error
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import comparison_gnm
from repro.graphs.sampling import sample_pairs
from repro.metrics.stretch import measure_stretch
from repro.scenarios.spec import scenario
from repro.utils.formatting import format_table

__all__ = ["EstimateErrorResult", "run", "format_report"]


@dataclass(frozen=True)
class EstimateErrorResult:
    """Per-error-level reachability and stretch."""

    error_levels: tuple[float, ...]
    mean_first_stretch: dict[float, float]
    resolution_fallback_fraction: dict[float, float]
    unreachable_fraction: dict[float, float]
    num_nodes: int
    scale_label: str

    def stretch_increase(self, level: float) -> float:
        """Relative mean-stretch increase of ``level`` vs the zero-error run."""
        base = self.mean_first_stretch[0.0]
        return (self.mean_first_stretch[level] - base) / base


@scenario(
    "estimate-error",
    title="§5.2: robustness to errors in the estimate of n",
    family="gnm",
    protocols=("disco",),
    metrics=("stretch", "reachability"),
    workload="per-node n-estimate error injection",
    aliases=("estimate",),
    tags=("study", "quick"),
)
def run(
    scale: ExperimentScale | None = None,
    *,
    error_levels: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6),
) -> EstimateErrorResult:
    """Measure Disco's behaviour under per-node n-estimate error."""
    scale = scale or default_scale()
    if 0.0 not in error_levels:
        error_levels = (0.0,) + tuple(error_levels)
    topology = comparison_gnm(scale)
    n = topology.num_nodes
    pairs = sample_pairs(topology, scale.pair_sample, seed=scale.seed + 11)
    nddisco = NDDiscoRouting(topology, seed=scale.seed)

    mean_stretch: dict[float, float] = {}
    fallback_fraction: dict[float, float] = {}
    unreachable_fraction: dict[float, float] = {}
    for level in error_levels:
        estimates = (
            None
            if level == 0.0
            else inject_estimate_error(
                n, max_error=level, seed=scale.seed + int(level * 100)
            )
        )
        disco = DiscoRouting(
            topology, seed=scale.seed, nddisco=nddisco, estimated_n=estimates
        )
        report = measure_stretch(disco, pairs=pairs)
        mean_stretch[level] = report.first_summary.mean

        # Reachability through the sloppy-group machinery alone: count pairs
        # whose first packet had to fall back to the landmark resolution
        # database, and pairs that could not be served at all (never happens
        # because the fallback exists, but tracked for completeness).
        fallbacks = 0
        unreachable = 0
        for source, target in pairs:
            result = disco.first_packet_route(source, target)
            if result.mechanism == "resolution-fallback":
                fallbacks += 1
            if not result.delivered:
                unreachable += 1
        fallback_fraction[level] = fallbacks / len(pairs)
        unreachable_fraction[level] = unreachable / len(pairs)
    return EstimateErrorResult(
        error_levels=tuple(error_levels),
        mean_first_stretch=mean_stretch,
        resolution_fallback_fraction=fallback_fraction,
        unreachable_fraction=unreachable_fraction,
        num_nodes=n,
        scale_label=scale.label,
    )


def format_report(result: EstimateErrorResult) -> str:
    """Render the error-injection table (paper: +0.6% stretch at 40% error)."""
    rows = []
    for level in result.error_levels:
        rows.append(
            [
                f"{level * 100:.0f}%",
                result.mean_first_stretch[level],
                result.stretch_increase(level) * 100.0,
                result.resolution_fallback_fraction[level] * 100.0,
                result.unreachable_fraction[level] * 100.0,
            ]
        )
    table = format_table(
        [
            "estimate error",
            "mean first stretch",
            "stretch increase %",
            "group-miss fallback %",
            "unreachable %",
        ],
        rows,
    )
    return "\n".join(
        [
            header(
                f"n-estimate error injection on a {result.num_nodes}-node G(n,m) graph",
                f"scale={result.scale_label}",
            ),
            table,
        ]
    )
