"""Ablation studies of Disco's design choices.

DESIGN.md calls out four design decisions whose alternatives the paper
discusses but does not quantify; each ablation here measures the trade-off:

1. **Vicinity size constant** (§4.2): vicinities are Θ(√(n log n)); scaling
   the constant trades state for first-packet stretch (too-small vicinities
   also threaten the landmark-in-vicinity property).
2. **Landmark selection policy** (§6): random vs highest-degree
   ("well-provisioned") vs spread (k-center) landmarks, at the same budget.
3. **Address design** (§4.2): explicit-route addresses vs the fixed-size
   hierarchical block addresses; the paper asserts the block scheme
   "actually increase[s] the mean address size in practice".
4. **Resolution-database load smoothing** (§4.5): consistent hashing with one
   hash function vs several virtual points per landmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.addressing.block_addresses import BlockAddressAllocator
from repro.core.disco import DiscoRouting
from repro.core.landmark_policies import (
    degree_based_landmarks,
    random_landmarks,
    spread_landmarks,
    target_landmark_count,
)
from repro.core.nddisco import NDDiscoRouting
from repro.core.resolution import LandmarkResolutionDatabase
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import comparison_gnm, router_level_topology
from repro.graphs.sampling import sample_pairs
from repro.metrics.state import measure_state
from repro.metrics.stretch import measure_stretch
from repro.naming.names import name_for_node
from repro.scenarios.spec import scenario
from repro.utils.distributions import summarize
from repro.utils.formatting import format_table

__all__ = [
    "VicinityAblationRow",
    "LandmarkPolicyRow",
    "AddressDesignResult",
    "ResolutionBalanceRow",
    "AblationResult",
    "run",
    "format_report",
]


@dataclass(frozen=True)
class VicinityAblationRow:
    """State/stretch trade-off for one vicinity-size constant."""

    scale_factor: float
    vicinity_size: int
    mean_state: float
    mean_first_stretch: float
    max_first_stretch: float


@dataclass(frozen=True)
class LandmarkPolicyRow:
    """State/stretch for one landmark-selection policy at a fixed budget."""

    policy: str
    num_landmarks: int
    mean_state: float
    max_state: float
    mean_first_stretch: float
    max_first_stretch: float


@dataclass(frozen=True)
class AddressDesignResult:
    """Mean/max address size for explicit routes vs block addresses."""

    explicit_mean_bytes: float
    explicit_max_bytes: float
    block_mean_bytes: float
    block_max_bytes: float
    block_bits: int


@dataclass(frozen=True)
class ResolutionBalanceRow:
    """Resolution-database load imbalance for one virtual-node setting."""

    virtual_nodes: int
    max_over_mean_load: float


@dataclass(frozen=True)
class AblationResult:
    """All four ablations bundled together."""

    vicinity: tuple[VicinityAblationRow, ...]
    landmark_policies: tuple[LandmarkPolicyRow, ...]
    address_design: AddressDesignResult
    resolution_balance: tuple[ResolutionBalanceRow, ...]
    num_nodes: int
    scale_label: str


def _vicinity_ablation(topology, scale, factors=(0.5, 1.0, 2.0)):
    pairs = sample_pairs(topology, min(scale.pair_sample, 300), seed=scale.seed + 31)
    rows = []
    for factor in factors:
        nddisco = NDDiscoRouting(topology, seed=scale.seed, vicinity_scale=factor)
        disco = DiscoRouting(topology, seed=scale.seed, nddisco=nddisco)
        stretch = measure_stretch(disco, pairs=pairs)
        state = measure_state(disco)
        rows.append(
            VicinityAblationRow(
                scale_factor=factor,
                vicinity_size=len(nddisco.vicinities[0]),
                mean_state=state.entry_summary.mean,
                mean_first_stretch=stretch.first_summary.mean,
                max_first_stretch=stretch.first_summary.maximum,
            )
        )
    return tuple(rows)


def _landmark_policy_ablation(topology, scale):
    budget = target_landmark_count(topology.num_nodes)
    policies = {
        "random": random_landmarks(topology, seed=scale.seed),
        "degree-based": degree_based_landmarks(topology, count=budget),
        "spread (k-center)": spread_landmarks(topology, count=budget, seed=scale.seed),
    }
    pairs = sample_pairs(topology, min(scale.pair_sample, 300), seed=scale.seed + 37)
    rows = []
    for label, landmarks in policies.items():
        nddisco = NDDiscoRouting(topology, seed=scale.seed, landmarks=landmarks)
        disco = DiscoRouting(topology, seed=scale.seed, nddisco=nddisco)
        stretch = measure_stretch(disco, pairs=pairs)
        state = measure_state(disco)
        rows.append(
            LandmarkPolicyRow(
                policy=label,
                num_landmarks=len(landmarks),
                mean_state=state.entry_summary.mean,
                max_state=state.entry_summary.maximum,
                mean_first_stretch=stretch.first_summary.mean,
                max_first_stretch=stretch.first_summary.maximum,
            )
        )
    return tuple(rows)


def _address_design_ablation(topology, scale):
    nddisco = NDDiscoRouting(topology, seed=scale.seed)
    explicit_sizes = [address.route.size_bytes for address in nddisco.addresses]
    explicit = summarize(explicit_sizes)

    # Block addresses: one allocator per landmark, partitioning an O(log n)-bit
    # block down that landmark's full shortest-path tree (§4.2 sketch).  A
    # node's block address comes from its closest landmark's allocator.
    allocators: dict[int, BlockAddressAllocator] = {}
    block_sizes = []
    block_bits = 0
    for node in topology.nodes():
        landmark = nddisco.closest_landmark(node)
        if landmark not in allocators:
            parents = {
                other: (
                    nddisco.landmark_path(landmark, other)[-2]
                    if other != landmark
                    else -1
                )
                for other in topology.nodes()
            }
            allocators[landmark] = BlockAddressAllocator(topology, landmark, parents)
        allocator = allocators[landmark]
        block_bits = allocator.block_bits
        block_sizes.append(allocator.address_of(node).size_bytes)
    block = summarize(block_sizes)
    return AddressDesignResult(
        explicit_mean_bytes=explicit.mean,
        explicit_max_bytes=explicit.maximum,
        block_mean_bytes=block.mean,
        block_max_bytes=block.maximum,
        block_bits=block_bits,
    )


def _resolution_balance_ablation(topology, scale, settings=(1, 4, 16)):
    names = [name_for_node(v) for v in topology.nodes()]
    landmarks = random_landmarks(topology, seed=scale.seed)
    rows = []
    for virtual_nodes in settings:
        database = LandmarkResolutionDatabase(landmarks, virtual_nodes=virtual_nodes)
        # Load balance depends only on key placement, so count home landmarks
        # directly rather than storing full records.
        loads = {landmark: 0 for landmark in landmarks}
        for name in names:
            loads[database.home_landmark(name)] += 1
        mean = sum(loads.values()) / len(loads)
        rows.append(
            ResolutionBalanceRow(
                virtual_nodes=virtual_nodes,
                max_over_mean_load=max(loads.values()) / max(mean, 1e-9),
            )
        )
    return tuple(rows)


# The four studies are independent measurements (each builds its own
# schemes from the topology and seed), so they are the scenario engine's
# shard unit.  Each shard returns ``(value, num_nodes | None)``; the gnm
# node count rides along so the merge does not rebuild the topology.
_ABLATION_SHARDS = (
    "vicinity",
    "landmark-policies",
    "address-design",
    "resolution-balance",
)


def _run_ablation_shard(scale: ExperimentScale, key: str):
    scale = scale or default_scale()
    if key == "address-design":
        return (_address_design_ablation(router_level_topology(scale), scale), None)
    gnm = comparison_gnm(scale)
    if key == "vicinity":
        return (_vicinity_ablation(gnm, scale), gnm.num_nodes)
    if key == "landmark-policies":
        return (_landmark_policy_ablation(gnm, scale), gnm.num_nodes)
    if key == "resolution-balance":
        return (_resolution_balance_ablation(gnm, scale), gnm.num_nodes)
    raise ValueError(f"unknown ablation shard {key!r}")


def _merge_ablation_shards(
    scale: ExperimentScale, parts: dict[str, tuple]
) -> AblationResult:
    return AblationResult(
        vicinity=parts["vicinity"][0],
        landmark_policies=parts["landmark-policies"][0],
        address_design=parts["address-design"][0],
        resolution_balance=parts["resolution-balance"][0],
        num_nodes=parts["vicinity"][1],
        scale_label=scale.label,
    )


@scenario(
    "ablations",
    title="Design ablations: vicinity constant, landmark policy, address "
    "design, resolution smoothing",
    family=("gnm", "router-level"),
    protocols=("disco", "nd-disco"),
    metrics=("state", "stretch", "address-bytes", "resolution-load"),
    workload="four independent design sweeps",
    aliases=("ablation",),
    tags=("study",),
    shards=_ABLATION_SHARDS,
    shard_runner=_run_ablation_shard,
    shard_merge=_merge_ablation_shards,
)
def run(scale: ExperimentScale | None = None) -> AblationResult:
    """Run all four ablations on the comparison topologies."""
    scale = scale or default_scale()
    gnm = comparison_gnm(scale)
    router = router_level_topology(scale)
    return AblationResult(
        vicinity=_vicinity_ablation(gnm, scale),
        landmark_policies=_landmark_policy_ablation(gnm, scale),
        address_design=_address_design_ablation(router, scale),
        resolution_balance=_resolution_balance_ablation(gnm, scale),
        num_nodes=gnm.num_nodes,
        scale_label=scale.label,
    )


def format_report(result: AblationResult) -> str:
    """Render all four ablation tables."""
    vicinity_table = format_table(
        ["vicinity scale", "size", "mean state", "mean first stretch", "max first stretch"],
        [
            [row.scale_factor, row.vicinity_size, row.mean_state,
             row.mean_first_stretch, row.max_first_stretch]
            for row in result.vicinity
        ],
        float_format="{:.2f}",
    )
    landmark_table = format_table(
        ["landmark policy", "landmarks", "mean state", "max state",
         "mean first stretch", "max first stretch"],
        [
            [row.policy, row.num_landmarks, row.mean_state, row.max_state,
             row.mean_first_stretch, row.max_first_stretch]
            for row in result.landmark_policies
        ],
        float_format="{:.2f}",
    )
    address = result.address_design
    address_table = format_table(
        ["address design", "mean bytes", "max bytes"],
        [
            ["explicit route (paper default)", address.explicit_mean_bytes,
             address.explicit_max_bytes],
            [f"fixed block ({address.block_bits}-bit offset)",
             address.block_mean_bytes, address.block_max_bytes],
        ],
    )
    resolution_table = format_table(
        ["virtual nodes per landmark", "max/mean resolution load"],
        [[row.virtual_nodes, row.max_over_mean_load] for row in result.resolution_balance],
        float_format="{:.2f}",
    )
    return "\n".join(
        [
            header(
                f"Design ablations on {result.num_nodes}-node topologies",
                f"scale={result.scale_label}",
            ),
            "\n[1] vicinity size constant (state vs stretch)",
            vicinity_table,
            "\n[2] landmark selection policy (§6)",
            landmark_table,
            "\n[3] address design (§4.2: explicit route vs fixed-size block)",
            address_table,
            "\n[4] resolution-database load smoothing (§4.5)",
            resolution_table,
        ]
    )
