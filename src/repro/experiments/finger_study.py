"""§4.4 / §5.2 -- the 1-finger vs 3-finger dissemination study.

"For a 1024-node G(n,m) topology, with each node picking 1 outgoing finger,
the average and maximum distances traveled by address announcements were
measured to be 5.77 and 24 respectively, while picking 3 random fingers
reduced these numbers to 3.04 and 16.  At the same time, the number of
messages increased by 3.3%." (§5.2)

This experiment builds the sloppy grouping and dissemination overlay on the
comparison G(n,m) topology, disseminates every node's address with 1 and with
3 outgoing fingers, and reports the mean/max announcement hop distances, the
message increase, and the overlay coverage (which should be 1.0 -- every node
that ought to store an address receives it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dissemination import AddressDissemination, DisseminationReport
from repro.core.overlay import DisseminationOverlay
from repro.core.sloppy_groups import SloppyGrouping
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import comparison_gnm
from repro.naming.names import name_for_node
from repro.scenarios.spec import scenario
from repro.utils.formatting import format_table

__all__ = ["FingerStudyResult", "run", "format_report"]


@dataclass(frozen=True)
class FingerStudyResult:
    """Dissemination statistics for each finger count."""

    reports: dict[int, DisseminationReport]
    overlay_degrees: dict[int, float]
    num_nodes: int
    scale_label: str

    def message_increase(self, low: int = 1, high: int = 3) -> float:
        """Relative message increase going from ``low`` to ``high`` fingers."""
        base = self.reports[low].total_messages
        more = self.reports[high].total_messages
        if base == 0:
            return 0.0
        return (more - base) / base


@scenario(
    "finger-study",
    title="§4.4/§5.2: 1-finger vs 3-finger overlay dissemination",
    family="gnm",
    protocols=("disco",),
    metrics=("coverage", "messages"),
    workload="address dissemination over the sloppy-group overlay",
    aliases=("fingers",),
    tags=("study",),
)
def run(
    scale: ExperimentScale | None = None,
    *,
    finger_counts: tuple[int, ...] = (1, 3),
) -> FingerStudyResult:
    """Disseminate every address with each finger count and compare."""
    scale = scale or default_scale()
    topology = comparison_gnm(scale)
    n = topology.num_nodes
    names = [name_for_node(v) for v in range(n)]
    grouping = SloppyGrouping(names)
    reports: dict[int, DisseminationReport] = {}
    degrees: dict[int, float] = {}
    for fingers in finger_counts:
        overlay = DisseminationOverlay(grouping, num_fingers=fingers, seed=scale.seed)
        dissemination = AddressDissemination(overlay)
        reports[fingers] = dissemination.run()
        degrees[fingers] = overlay.average_degree()
    return FingerStudyResult(
        reports=reports,
        overlay_degrees=degrees,
        num_nodes=n,
        scale_label=scale.label,
    )


def format_report(result: FingerStudyResult) -> str:
    """Render the finger study (paper: 5.77/24 vs 3.04/16 hops, +3.3% messages)."""
    rows = []
    for fingers, report in sorted(result.reports.items()):
        rows.append(
            [
                fingers,
                result.overlay_degrees[fingers],
                report.mean_hop_distance,
                report.max_hop_distance,
                report.messages_per_node,
                report.coverage,
            ]
        )
    table = format_table(
        [
            "fingers",
            "overlay degree",
            "mean announce hops",
            "max announce hops",
            "messages/node",
            "coverage",
        ],
        rows,
    )
    extra = ""
    if 1 in result.reports and 3 in result.reports:
        extra = (
            f"\nmessage increase 1->3 fingers: "
            f"{result.message_increase() * 100.0:.1f}% "
            "(paper: +3.3%; hop distances 5.77/24 -> 3.04/16)"
        )
    return "\n".join(
        [
            header(
                f"Finger study: address dissemination on a {result.num_nodes}-node "
                "G(n,m) graph",
                f"scale={result.scale_label}",
            ),
            table + extra,
        ]
    )
