"""Run every experiment and collect the reports.

``run_all_experiments`` is what ``examples/reproduce_paper.py`` and the
integration tests use; each entry maps an experiment id (the figure/table it
reproduces) to the rendered text report.  Individual experiments can be
selected by id, and the heavyweight ones can be excluded for quick runs.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.experiments import (
    ablations,
    addr_sizes,
    churn_cost,
    estimate_error,
    fig01_taxonomy,
    fig02_state_cdf,
    fig03_stretch_cdf,
    fig04_gnm_comparison,
    fig05_geometric_comparison,
    fig06_shortcutting,
    fig07_state_bytes,
    fig08_messaging,
    fig09_scaling,
    fig10_congestion_as,
    finger_study,
    guarantees,
    static_accuracy,
)
from repro.experiments.config import ExperimentScale, default_scale

__all__ = ["EXPERIMENTS", "run_all_experiments", "run_experiment"]

# Experiment id -> (run, format_report).
EXPERIMENTS: dict[str, tuple[Callable, Callable]] = {
    "fig01-taxonomy": (fig01_taxonomy.run, fig01_taxonomy.format_report),
    "fig02-state-cdf": (fig02_state_cdf.run, fig02_state_cdf.format_report),
    "fig03-stretch-cdf": (fig03_stretch_cdf.run, fig03_stretch_cdf.format_report),
    "fig04-gnm-comparison": (
        fig04_gnm_comparison.run,
        fig04_gnm_comparison.format_report,
    ),
    "fig05-geometric-comparison": (
        fig05_geometric_comparison.run,
        fig05_geometric_comparison.format_report,
    ),
    "fig06-shortcutting": (fig06_shortcutting.run, fig06_shortcutting.format_report),
    "fig07-state-bytes": (fig07_state_bytes.run, fig07_state_bytes.format_report),
    "fig08-messaging": (fig08_messaging.run, fig08_messaging.format_report),
    "fig09-scaling": (fig09_scaling.run, fig09_scaling.format_report),
    "fig10-congestion-as": (
        fig10_congestion_as.run,
        fig10_congestion_as.format_report,
    ),
    "addr-sizes": (addr_sizes.run, addr_sizes.format_report),
    "finger-study": (finger_study.run, finger_study.format_report),
    "estimate-error": (estimate_error.run, estimate_error.format_report),
    "static-accuracy": (static_accuracy.run, static_accuracy.format_report),
    "guarantees": (guarantees.run, guarantees.format_report),
    "churn-cost": (churn_cost.run, churn_cost.format_report),
    "ablations": (ablations.run, ablations.format_report),
}


def run_experiment(
    experiment_id: str, scale: ExperimentScale | None = None
) -> tuple[object, str]:
    """Run one experiment by id; returns (result object, rendered report).

    Raises
    ------
    KeyError
        If the experiment id is unknown.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    run, format_report = EXPERIMENTS[experiment_id]
    result = run(scale or default_scale())
    return result, format_report(result)


def run_all_experiments(
    scale: ExperimentScale | None = None,
    *,
    include: Iterable[str] | None = None,
    exclude: Iterable[str] = (),
) -> dict[str, str]:
    """Run the selected experiments and return their rendered reports.

    Parameters
    ----------
    scale:
        Experiment scale (default: :func:`repro.experiments.default_scale`).
    include:
        Experiment ids to run (default: all).
    exclude:
        Experiment ids to skip.
    """
    scale = scale or default_scale()
    selected = list(include) if include is not None else list(EXPERIMENTS)
    excluded = set(exclude)
    reports: dict[str, str] = {}
    for experiment_id in selected:
        if experiment_id in excluded:
            continue
        _, report = run_experiment(experiment_id, scale)
        reports[experiment_id] = report
    return reports
