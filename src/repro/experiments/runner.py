"""Legacy experiment API, backed by the scenario registry.

Importing this module pulls in every experiment module, whose ``@scenario``
decorators populate :mod:`repro.scenarios.registry`; ``EXPERIMENTS`` is then
materialized from the registry in the historical id order, so pre-existing
callers (``examples/reproduce_paper.py``, the integration tests, downstream
scripts) keep the exact ``{id: (run, format_report)}`` shape and behavior
they always had.  New code should prefer the scenario engine
(:func:`repro.scenarios.engine.run_scenarios`), which adds prerequisite
caching, sharded parallel execution, and structured JSON output on top of
the same registry.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.experiments import (  # noqa: F401  (imported for registration)
    ablations,
    addr_sizes,
    churn_cost,
    estimate_error,
    fig01_taxonomy,
    fig02_state_cdf,
    fig03_stretch_cdf,
    fig04_gnm_comparison,
    fig05_geometric_comparison,
    fig06_shortcutting,
    fig07_state_bytes,
    fig08_messaging,
    fig09_scaling,
    fig10_congestion_as,
    finger_study,
    guarantees,
    resolution_service,
    static_accuracy,
)
from repro.experiments.config import ExperimentScale, default_scale
from repro.scenarios import registry as _registry

__all__ = ["EXPERIMENTS", "run_all_experiments", "run_experiment"]

#: Historical presentation order of the experiment ids (figures first).
_CANONICAL_ORDER = (
    "fig01-taxonomy",
    "fig02-state-cdf",
    "fig03-stretch-cdf",
    "fig04-gnm-comparison",
    "fig05-geometric-comparison",
    "fig06-shortcutting",
    "fig07-state-bytes",
    "fig08-messaging",
    "fig09-scaling",
    "fig10-congestion-as",
    "addr-sizes",
    "finger-study",
    "estimate-error",
    "static-accuracy",
    "guarantees",
    "churn-cost",
    "resolution-latency",
    "resolution-staleness",
    "resolution-balance",
    "ablations",
)


def _experiments() -> dict[str, tuple[Callable, Callable]]:
    table: dict[str, tuple[Callable, Callable]] = {}
    registered = {
        scenario.scenario_id: scenario
        for scenario in _registry.all_scenarios()
    }
    ordered = [
        *(_id for _id in _CANONICAL_ORDER if _id in registered),
        *(_id for _id in registered if _id not in _CANONICAL_ORDER),
    ]
    for scenario_id in ordered:
        scenario = registered[scenario_id]
        table[scenario_id] = (scenario.run, scenario.format_report)
    return table


# Experiment id -> (run, format_report); built from the scenario registry.
EXPERIMENTS: dict[str, tuple[Callable, Callable]] = _experiments()


def run_experiment(
    experiment_id: str, scale: ExperimentScale | None = None
) -> tuple[object, str]:
    """Run one experiment by id; returns (result object, rendered report).

    Raises
    ------
    KeyError
        If the experiment id is unknown.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(EXPERIMENTS)}"
        )
    run, format_report = EXPERIMENTS[experiment_id]
    result = run(scale or default_scale())
    return result, format_report(result)


def run_all_experiments(
    scale: ExperimentScale | None = None,
    *,
    include: Iterable[str] | None = None,
    exclude: Iterable[str] = (),
) -> dict[str, str]:
    """Run the selected experiments and return their rendered reports.

    Parameters
    ----------
    scale:
        Experiment scale (default: :func:`repro.experiments.default_scale`).
    include:
        Experiment ids to run (default: all).
    exclude:
        Experiment ids to skip.
    """
    scale = scale or default_scale()
    selected = list(include) if include is not None else list(EXPERIMENTS)
    excluded = set(exclude)
    reports: dict[str, str] = {}
    for experiment_id in selected:
        if experiment_id in excluded:
            continue
        _, report = run_experiment(experiment_id, scale)
        reports[experiment_id] = report
    return reports
