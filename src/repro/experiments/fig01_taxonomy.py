"""Fig. 1 -- the protocol-property taxonomy, checked empirically.

Fig. 1 of the paper is a qualitative table: for each protocol, does it
guarantee o(n) state, O(1)/O(log n) stretch, and routing on flat names?  This
experiment reproduces the rows for the protocols implemented in this
repository and backs the qualitative claims with small empirical probes:

* *scalable* -- mean per-node state grows sublinearly between two network
  sizes (ratio of state growth well below the ratio of n);
* *low stretch* -- observed worst-case later-packet stretch stays within the
  protocol's claimed bound on a random topology;
* *flat names* -- whether the protocol routes on a location-independent name
  with bounded stretch (a property of the design, reported as claimed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, default_scale
from repro.graphs.generators import gnm_random_graph
from repro.metrics.state import measure_state
from repro.metrics.stretch import measure_stretch
from repro.protocols.registry import build_scheme
from repro.scenarios.spec import scenario
from repro.utils.formatting import format_table

__all__ = ["TaxonomyRow", "TaxonomyResult", "run", "format_report"]


@dataclass(frozen=True)
class TaxonomyRow:
    """One protocol's row of the Fig. 1 table plus the empirical probes."""

    protocol: str
    claims_scalable: bool
    claims_low_stretch: bool
    claims_flat_names: bool
    state_growth_ratio: float
    observed_max_later_stretch: float


@dataclass(frozen=True)
class TaxonomyResult:
    """All rows plus the sizes used by the empirical probes."""

    rows: tuple[TaxonomyRow, ...]
    small_n: int
    large_n: int


_CLAIMS = {
    "shortest-path": (False, True, False),
    "path-vector": (False, True, False),
    "vrr": (False, False, True),
    "s4": (False, True, False),
    "nd-disco": (True, True, False),
    "disco": (True, True, True),
}


@scenario(
    "fig01-taxonomy",
    title="Fig. 1: protocol-property taxonomy, checked empirically",
    family="gnm",
    protocols=tuple(_CLAIMS),
    metrics=("state", "stretch"),
    workload="two-size growth probe per protocol",
    aliases=("fig01", "taxonomy"),
    tags=("figure",),
)
def run(scale: ExperimentScale | None = None) -> TaxonomyResult:
    """Build every protocol at two sizes and probe the Fig. 1 properties."""
    scale = scale or default_scale()
    small_n = max(64, scale.comparison_nodes // 2)
    large_n = scale.comparison_nodes
    small = gnm_random_graph(small_n, seed=scale.seed, average_degree=8.0)
    large = gnm_random_graph(large_n, seed=scale.seed, average_degree=8.0)

    rows = []
    for name, claims in _CLAIMS.items():
        scheme_small = build_scheme(name, small, seed=scale.seed)
        scheme_large = build_scheme(name, large, seed=scale.seed)
        state_small = measure_state(scheme_small).entry_summary.mean
        state_large = measure_state(scheme_large).entry_summary.mean
        growth = state_large / max(state_small, 1e-9)
        stretch = measure_stretch(
            scheme_large, pair_sample=min(200, scale.pair_sample), seed=scale.seed
        )
        rows.append(
            TaxonomyRow(
                protocol=scheme_large.name,
                claims_scalable=claims[0],
                claims_low_stretch=claims[1],
                claims_flat_names=claims[2],
                state_growth_ratio=growth,
                observed_max_later_stretch=stretch.later_summary.maximum,
            )
        )
    return TaxonomyResult(rows=tuple(rows), small_n=small_n, large_n=large_n)


def format_report(result: TaxonomyResult) -> str:
    """Render the taxonomy table with the empirical probe columns."""
    size_ratio = result.large_n / result.small_n
    table = format_table(
        [
            "protocol",
            "scalable",
            "low stretch",
            "flat names",
            f"state growth (n×{size_ratio:.1f})",
            "max later stretch",
        ],
        [
            [
                row.protocol,
                "yes" if row.claims_scalable else "no",
                "yes" if row.claims_low_stretch else "no",
                "yes" if row.claims_flat_names else "no",
                row.state_growth_ratio,
                row.observed_max_later_stretch,
            ]
            for row in result.rows
        ],
        float_format="{:.2f}",
    )
    note = (
        "A 'scalable' protocol should show state growth well below the node-"
        "count ratio; stretch-bounded protocols should keep max later-packet "
        "stretch at or below 3."
    )
    return f"Fig. 1: distributed routing protocol taxonomy\n{table}\n{note}"
