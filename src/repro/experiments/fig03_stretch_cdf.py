"""Fig. 3 -- stretch CDFs on the three large topologies.

"Fig. 3 shows the distribution of stretch in S4, Disco, and NDDisco. ... In
the geometric random graph [which] includes link latencies ... S4 experiences
worst-case stretch of 72 while Disco's highest stretch is just over 2."
(§5.2)

We reproduce the Disco-First / Disco-Later / S4-First / S4-Later CDFs over
sampled source-destination pairs on the geometric, AS-level-like, and
router-level-like topologies.  The shape to verify: S4's first-packet stretch
(which includes the location-service detour) has a long tail, especially on
the latency-annotated geometric graph, while Disco's first-packet stretch
stays small; later-packet stretch is low for both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header, render_stretch_reports
from repro.experiments.workloads import (
    as_level_topology,
    large_geometric,
    real_topology,
    router_level_topology,
)
from repro.metrics.stretch import StretchReport
from repro.scenarios.spec import scenario
from repro.staticsim.simulation import StaticSimulation

__all__ = ["StretchCdfResult", "run", "format_report"]

_PROTOCOLS = ("disco", "s4")

_PANELS = {
    "geometric": large_geometric,
    "as_level": as_level_topology,
    "router_level": router_level_topology,
    # "real" joins dynamically when the scale names an ingested dataset.
    "real": real_topology,
}

_SYNTHETIC = ("geometric", "as_level", "router_level")


def _shard_keys(scale: ExperimentScale) -> tuple[str, ...]:
    """The three synthetic panels, plus "real" when a dataset is named."""
    if scale.topology_file is not None:
        return _SYNTHETIC + ("real",)
    return _SYNTHETIC


@dataclass(frozen=True)
class StretchCdfResult:
    """Stretch reports per protocol for each topology panel."""

    geometric: dict[str, StretchReport]
    as_level: dict[str, StretchReport]
    router_level: dict[str, StretchReport]
    scale_label: str
    #: Present only when the run ingested a real dataset
    #: (``--topology-file``); None keeps older result pickles loadable.
    real: dict[str, StretchReport] | None = None

    def panels(self) -> dict[str, dict[str, StretchReport]]:
        """The panels keyed by topology label."""
        panels = {
            "geometric": self.geometric,
            "as-level": self.as_level,
            "router-level": self.router_level,
        }
        if self.real is not None:
            panels["real"] = self.real
        return panels


def _run_panel(scale: ExperimentScale, label: str) -> dict[str, StretchReport]:
    """One topology panel -- the scenario engine's shard unit."""
    topology = _PANELS[label](scale)
    simulation = StaticSimulation(topology, _PROTOCOLS, seed=scale.seed)
    results = simulation.run(
        measure_state_flag=False,
        measure_stretch_flag=True,
        pair_sample=scale.pair_sample,
    )
    return results.stretch


def _merge_panels(
    scale: ExperimentScale, panels: dict[str, dict[str, StretchReport]]
) -> StretchCdfResult:
    return StretchCdfResult(
        geometric=panels["geometric"],
        as_level=panels["as_level"],
        router_level=panels["router_level"],
        scale_label=scale.label,
        real=panels.get("real"),
    )


@scenario(
    "fig03-stretch-cdf",
    title="Fig. 3: path-stretch CDFs (Disco vs S4, first/later packets)",
    family=("geometric", "as-level", "router-level"),
    protocols=_PROTOCOLS,
    metrics=("stretch",),
    workload="sampled source-destination pairs per topology panel",
    aliases=("fig03",),
    tags=("figure", "quick"),
    shards=_shard_keys,
    shard_runner=_run_panel,
    shard_merge=_merge_panels,
)
def run(scale: ExperimentScale | None = None) -> StretchCdfResult:
    """Measure first/later stretch for Disco and S4 on the three topologies."""
    scale = scale or default_scale()
    return _merge_panels(
        scale,
        {label: _run_panel(scale, label) for label in _shard_keys(scale)},
    )


def format_report(result: StretchCdfResult) -> str:
    """Render the three panels of Fig. 3."""
    parts = [
        header(
            "Fig. 3: path-stretch CDFs (Disco vs S4, first and later packets)",
            f"scale={result.scale_label}",
        )
    ]
    for label, reports in result.panels().items():
        parts.append(f"\n--- {label} topology ---")
        parts.append(render_stretch_reports(reports))
    return "\n".join(parts)
