"""Experiment harness: one module per table and figure of the paper.

Each experiment module exposes:

* a ``run(...)`` function returning a result dataclass, and
* a ``format_report(result)`` function rendering the result as the text
  equivalent of the paper's figure or table (CDF quantiles for the CDF plots,
  aligned rows for the tables).

The sizes the paper used (16,384-node synthetic graphs, the 30,610-node
AS-level map, the 192,244-node router-level map) are far beyond what a pure
Python run should default to, so every experiment takes its dimensions from
:class:`repro.experiments.config.ExperimentScale`, whose default is
laptop-sized and which can be scaled up via the ``REPRO_SCALE`` environment
variable or explicit arguments.  The benchmark suite under ``benchmarks/``
runs every experiment at the default scale; EXPERIMENTS.md records
paper-vs-measured values for each.
"""

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.runner import run_all_experiments

__all__ = ["ExperimentScale", "default_scale", "run_all_experiments"]
