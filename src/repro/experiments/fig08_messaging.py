"""Fig. 8 -- control messages per node until convergence.

"Fig. 8: Mean messages per node sent until convergence in path vector, S4,
NDDisco and Disco (with 1 and 3 fingers for address dissemination) for
G(n,m) graphs of increasing size."  (§5.2)

The discrete-event simulator exchanges batched path-vector updates; the
quantity reported here is *route entries sent per node* (one entry per
advertised destination), which is the classic per-destination UPDATE count --
see :mod:`repro.sim.agents.pathvector_agent` for the batching model and
EXPERIMENTS.md for how this maps onto the paper's absolute numbers.  The
shapes to verify: path vector grows linearly in n and dominates; S4 and
NDDisco grow much more slowly (S4 slightly below NDDisco, whose vicinities
are a bit larger); Disco adds only a modest overhead on top of NDDisco, and 3
fingers cost slightly more than 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.experiments.workloads import sweep_gnm
from repro.scenarios.spec import scenario
from repro.sim.convergence import (
    ConvergenceReport,
    simulate_disco_convergence,
    simulate_nddisco_convergence,
    simulate_path_vector_convergence,
    simulate_s4_convergence,
)
from repro.utils.formatting import format_table

__all__ = ["MessagingResult", "run", "format_report"]


@dataclass(frozen=True)
class MessagingResult:
    """Convergence-messaging sweep results.

    ``reports[protocol][n]`` is the :class:`ConvergenceReport` for one run.
    """

    reports: dict[str, dict[int, ConvergenceReport]]
    sweep: tuple[int, ...]
    scale_label: str

    def entries_per_node(self, protocol: str) -> dict[int, float]:
        """The Fig. 8 curve for one protocol: n -> entries sent per node."""
        return {
            n: report.entries_per_node
            for n, report in self.reports[protocol].items()
        }


_CURVES = (
    "Path-Vector",
    "S4",
    "ND-Disco",
    "Disco-1-Finger",
    "Disco-3-Finger",
)


def _run_size(scale: ExperimentScale, key: str) -> dict[str, ConvergenceReport]:
    """All five curves at one swept size -- the engine's shard unit."""
    n = int(key)
    topology = sweep_gnm(n, scale.seed + n)
    return {
        "Path-Vector": simulate_path_vector_convergence(topology),
        "S4": simulate_s4_convergence(topology, seed=scale.seed),
        "ND-Disco": simulate_nddisco_convergence(topology, seed=scale.seed),
        "Disco-1-Finger": simulate_disco_convergence(
            topology, seed=scale.seed, num_fingers=1
        ),
        "Disco-3-Finger": simulate_disco_convergence(
            topology, seed=scale.seed, num_fingers=3
        ),
    }


def _merge_sizes(
    scale: ExperimentScale, parts: dict[str, dict[str, ConvergenceReport]]
) -> MessagingResult:
    sweep = scale.messaging_sweep
    reports: dict[str, dict[int, ConvergenceReport]] = {
        curve: {n: parts[str(n)][curve] for n in sweep} for curve in _CURVES
    }
    return MessagingResult(reports=reports, sweep=sweep, scale_label=scale.label)


@scenario(
    "fig08-messaging",
    title="Fig. 8: control entries per node until convergence (G(n,m) sweep)",
    family="gnm",
    protocols=("path-vector", "s4", "nd-disco", "disco"),
    metrics=("messages",),
    workload="event-driven convergence per swept size",
    aliases=("fig08", "messaging"),
    tags=("figure",),
    shards=lambda scale: tuple(str(n) for n in scale.messaging_sweep),
    shard_runner=_run_size,
    shard_merge=_merge_sizes,
)
def run(scale: ExperimentScale | None = None) -> MessagingResult:
    """Run the convergence sweep for all five curves of Fig. 8."""
    scale = scale or default_scale()
    return _merge_sizes(
        scale,
        {str(n): _run_size(scale, str(n)) for n in scale.messaging_sweep},
    )


def format_report(result: MessagingResult) -> str:
    """Render the Fig. 8 curves as a protocol x n table."""
    rows = []
    for protocol, per_n in result.reports.items():
        rows.append(
            [protocol] + [per_n[n].entries_per_node for n in result.sweep]
        )
    table = format_table(
        ["protocol \\ n"] + [str(n) for n in result.sweep],
        rows,
        float_format="{:.1f}",
    )
    return "\n".join(
        [
            header(
                "Fig. 8: control entries sent per node until convergence "
                "(G(n,m) sweep)",
                f"scale={result.scale_label}",
            ),
            table,
        ]
    )
