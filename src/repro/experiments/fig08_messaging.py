"""Fig. 8 -- control messages per node until convergence.

"Fig. 8: Mean messages per node sent until convergence in path vector, S4,
NDDisco and Disco (with 1 and 3 fingers for address dissemination) for
G(n,m) graphs of increasing size."  (§5.2)

The discrete-event simulator exchanges batched path-vector updates; the
quantity reported here is *route entries sent per node* (one entry per
advertised destination), which is the classic per-destination UPDATE count --
see :mod:`repro.sim.agents.pathvector_agent` for the batching model and
EXPERIMENTS.md for how this maps onto the paper's absolute numbers.  The
shapes to verify: path vector grows linearly in n and dominates; S4 and
NDDisco grow much more slowly (S4 slightly below NDDisco, whose vicinities
are a bit larger); Disco adds only a modest overhead on top of NDDisco, and 3
fingers cost slightly more than 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.graphs.generators import gnm_random_graph
from repro.sim.convergence import (
    ConvergenceReport,
    simulate_disco_convergence,
    simulate_nddisco_convergence,
    simulate_path_vector_convergence,
    simulate_s4_convergence,
)
from repro.utils.formatting import format_table

__all__ = ["MessagingResult", "run", "format_report"]


@dataclass(frozen=True)
class MessagingResult:
    """Convergence-messaging sweep results.

    ``reports[protocol][n]`` is the :class:`ConvergenceReport` for one run.
    """

    reports: dict[str, dict[int, ConvergenceReport]]
    sweep: tuple[int, ...]
    scale_label: str

    def entries_per_node(self, protocol: str) -> dict[int, float]:
        """The Fig. 8 curve for one protocol: n -> entries sent per node."""
        return {
            n: report.entries_per_node
            for n, report in self.reports[protocol].items()
        }


def run(scale: ExperimentScale | None = None) -> MessagingResult:
    """Run the convergence sweep for all five curves of Fig. 8."""
    scale = scale or default_scale()
    sweep = scale.messaging_sweep
    reports: dict[str, dict[int, ConvergenceReport]] = {
        "Path-Vector": {},
        "S4": {},
        "ND-Disco": {},
        "Disco-1-Finger": {},
        "Disco-3-Finger": {},
    }
    for n in sweep:
        topology = gnm_random_graph(n, seed=scale.seed + n, average_degree=8.0)
        reports["Path-Vector"][n] = simulate_path_vector_convergence(topology)
        reports["S4"][n] = simulate_s4_convergence(topology, seed=scale.seed)
        reports["ND-Disco"][n] = simulate_nddisco_convergence(topology, seed=scale.seed)
        reports["Disco-1-Finger"][n] = simulate_disco_convergence(
            topology, seed=scale.seed, num_fingers=1
        )
        reports["Disco-3-Finger"][n] = simulate_disco_convergence(
            topology, seed=scale.seed, num_fingers=3
        )
    return MessagingResult(reports=reports, sweep=sweep, scale_label=scale.label)


def format_report(result: MessagingResult) -> str:
    """Render the Fig. 8 curves as a protocol x n table."""
    rows = []
    for protocol, per_n in result.reports.items():
        rows.append(
            [protocol] + [per_n[n].entries_per_node for n in result.sweep]
        )
    table = format_table(
        ["protocol \\ n"] + [str(n) for n in result.sweep],
        rows,
        float_format="{:.1f}",
    )
    return "\n".join(
        [
            header(
                "Fig. 8: control entries sent per node until convergence "
                "(G(n,m) sweep)",
                f"scale={result.scale_label}",
            ),
            table,
        ]
    )
