"""Fig. 2 -- per-node state CDFs on the three large topologies.

"Fig. 2 shows S4 does well on the random graphs, but is extremely unbalanced
on the Internet topologies. ... In contrast, Disco and NDDisco have very
balanced distributions of state in all cases."  (§5.2)

The paper plots the CDF over nodes of routing-table entries for Disco,
NDDisco, and S4 on a 16,384-node geometric random graph, the AS-level
Internet map, and the router-level Internet map.  We reproduce the same
three-panel structure on the scaled topologies (the Internet maps replaced by
the synthetic Internet-like generators, per DESIGN.md §5); the headline shape
to verify is that S4's *maximum* state far exceeds its mean on the
Internet-like graphs while Disco/NDDisco stay tightly concentrated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header, render_state_reports
from repro.experiments.workloads import (
    as_level_topology,
    large_geometric,
    real_topology,
    router_level_topology,
)
from repro.metrics.state import StateReport
from repro.scenarios.spec import scenario
from repro.staticsim.simulation import StaticSimulation

__all__ = ["StateCdfResult", "run", "format_report"]

_PROTOCOLS = ("disco", "nd-disco", "s4")

_PANELS = {
    "geometric": large_geometric,
    "as_level": as_level_topology,
    "router_level": router_level_topology,
    # "real" joins dynamically when the scale names an ingested dataset.
    "real": real_topology,
}

_SYNTHETIC = ("geometric", "as_level", "router_level")


def _shard_keys(scale: ExperimentScale) -> tuple[str, ...]:
    """The three synthetic panels, plus "real" when a dataset is named."""
    if scale.topology_file is not None:
        return _SYNTHETIC + ("real",)
    return _SYNTHETIC


@dataclass(frozen=True)
class StateCdfResult:
    """State reports per protocol for each topology panel."""

    geometric: dict[str, StateReport]
    as_level: dict[str, StateReport]
    router_level: dict[str, StateReport]
    scale_label: str
    #: Present only when the run ingested a real dataset
    #: (``--topology-file``); None keeps older result pickles loadable.
    real: dict[str, StateReport] | None = None

    def panels(self) -> dict[str, dict[str, StateReport]]:
        """The panels keyed by topology label."""
        panels = {
            "geometric": self.geometric,
            "as-level": self.as_level,
            "router-level": self.router_level,
        }
        if self.real is not None:
            panels["real"] = self.real
        return panels

    def imbalance(self, panel: str, protocol: str) -> float:
        """max/mean state ratio -- the quantity that exposes S4's imbalance."""
        report = self.panels()[panel][protocol]
        summary = report.entry_summary
        return summary.maximum / max(summary.mean, 1e-9)


def _run_panel(scale: ExperimentScale, label: str) -> dict[str, StateReport]:
    """One topology panel -- the scenario engine's shard unit."""
    topology = _PANELS[label](scale)
    simulation = StaticSimulation(topology, _PROTOCOLS, seed=scale.seed)
    results = simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=False,
        node_sample=scale.node_sample,
    )
    return results.state


def _merge_panels(
    scale: ExperimentScale, panels: dict[str, dict[str, StateReport]]
) -> StateCdfResult:
    return StateCdfResult(
        geometric=panels["geometric"],
        as_level=panels["as_level"],
        router_level=panels["router_level"],
        scale_label=scale.label,
        real=panels.get("real"),
    )


@scenario(
    "fig02-state-cdf",
    title="Fig. 2: per-node state CDFs on the three large topologies",
    family=("geometric", "as-level", "router-level"),
    protocols=_PROTOCOLS,
    metrics=("state",),
    workload="converged-state CDF per topology panel",
    aliases=("fig02",),
    tags=("figure", "quick"),
    shards=_shard_keys,
    shard_runner=_run_panel,
    shard_merge=_merge_panels,
)
def run(scale: ExperimentScale | None = None) -> StateCdfResult:
    """Measure per-node state for Disco, NDDisco and S4 on the three topologies."""
    scale = scale or default_scale()
    return _merge_panels(
        scale,
        {label: _run_panel(scale, label) for label in _shard_keys(scale)},
    )


def format_report(result: StateCdfResult) -> str:
    """Render the three panels of Fig. 2."""
    parts = [
        header(
            "Fig. 2: per-node state CDFs (Disco, ND-Disco, S4)",
            f"scale={result.scale_label}; Internet maps replaced by synthetic "
            "Internet-like generators",
        )
    ]
    for label, reports in result.panels().items():
        parts.append(f"\n--- {label} topology ---")
        parts.append(render_state_reports(reports))
        ratios = ", ".join(
            f"{name}: {reports[name].entry_summary.maximum / max(reports[name].entry_summary.mean, 1e-9):.1f}x"
            for name in reports
        )
        parts.append(f"max/mean state imbalance -> {ratios}")
    return "\n".join(parts)
