"""§5.2 -- accuracy of the static simulation.

"Our comparison of results from both the static simulator and the full
discrete event simulator shows that the static simulator achieves good
accuracy.  For instance, for the 1024-node random graph, the difference
between mean stretch as measured by the static simulator is within 0.9% for
Disco's later packets and 0.7% for S4's later packets."

This experiment runs NDDisco's route learning in the discrete-event simulator
(filtered path vector: landmarks plus capacity-bounded vicinities), converts
the converged per-node tables into vicinity tables, builds an NDDisco
instance *from those dynamically learned vicinities*, and compares its
later-packet stretch against the statically computed instance on the same
sampled pairs.  It also reports how much the dynamically learned vicinities
differ from the statically computed ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nddisco import NDDiscoRouting
from repro.core.vicinity import VicinityTable, compute_vicinities
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import header
from repro.graphs.generators import gnm_random_graph
from repro.graphs.sampling import sample_pairs
from repro.metrics.stretch import measure_stretch
from repro.scenarios.spec import scenario
from repro.sim.convergence import simulate_nddisco_convergence
from repro.utils.formatting import format_table

__all__ = ["StaticAccuracyResult", "run", "format_report"]


@dataclass(frozen=True)
class StaticAccuracyResult:
    """Static-vs-dynamic comparison on one topology."""

    num_nodes: int
    static_mean_later_stretch: float
    dynamic_mean_later_stretch: float
    vicinity_membership_agreement: float
    messages_per_node: float
    scale_label: str

    @property
    def relative_difference(self) -> float:
        """|dynamic - static| / static mean later-packet stretch."""
        if self.static_mean_later_stretch == 0:
            return 0.0
        return abs(
            self.dynamic_mean_later_stretch - self.static_mean_later_stretch
        ) / self.static_mean_later_stretch


def _tables_to_vicinities(
    topology,
    tables: dict[int, dict[int, tuple[float, tuple[int, ...]]]],
) -> list[VicinityTable]:
    """Convert converged path-vector tables into VicinityTable objects.

    Every destination the node installed a route for becomes a member
    (landmark routes included -- the node legitimately holds them), and the
    intermediate hops of each learned path are folded in as well, since a
    path-vector table stores the full path.  Routes are processed in
    ascending cost order and each hop's distance/predecessor is recorded only
    once (from the cheapest covering route), which yields an acyclic
    predecessor structure suitable for path extraction.
    """
    vicinities = []
    for node in topology.nodes():
        table = tables.get(node, {})
        distances: dict[int, float] = {node: 0.0}
        predecessors: dict[int, int] = {}
        entries = sorted(
            (
                (cost, destination, path)
                for destination, (cost, path) in table.items()
                if destination != node
            ),
            key=lambda item: (item[0], item[1]),
        )
        for _, _, path in entries:
            running = 0.0
            for previous, hop in zip(path, path[1:]):
                running += topology.edge_weight(previous, hop)
                if hop not in distances:
                    distances[hop] = running
                    predecessors[hop] = previous
        vicinities.append(
            VicinityTable(node=node, distances=distances, predecessors=predecessors)
        )
    return vicinities


@scenario(
    "static-accuracy",
    title="§5.2: accuracy of the static simulation vs the message "
    "simulator",
    family="gnm",
    protocols=("nd-disco",),
    metrics=("state", "vicinity-agreement"),
    workload="converged-state diff against event-driven convergence",
    aliases=("accuracy",),
    tags=("study", "quick"),
)
def run(scale: ExperimentScale | None = None) -> StaticAccuracyResult:
    """Compare static and dynamically converged NDDisco on a G(n,m) graph."""
    scale = scale or default_scale()
    n = min(scale.comparison_nodes, 256)
    topology = gnm_random_graph(n, seed=scale.seed + 5, average_degree=8.0)
    pairs = sample_pairs(topology, min(scale.pair_sample, 300), seed=scale.seed + 6)

    static_nddisco = NDDiscoRouting(topology, seed=scale.seed)
    static_report = measure_stretch(static_nddisco, pairs=pairs)

    dynamic = simulate_nddisco_convergence(
        topology, seed=scale.seed, landmarks=static_nddisco.landmarks, keep_tables=True
    )
    assert dynamic.tables is not None
    dynamic_vicinities = _tables_to_vicinities(topology, dynamic.tables)
    dynamic_nddisco = NDDiscoRouting(
        topology,
        seed=scale.seed,
        landmarks=static_nddisco.landmarks,
        vicinities=dynamic_vicinities,
    )
    dynamic_report = measure_stretch(dynamic_nddisco, pairs=pairs)

    # Vicinity agreement: fraction of statically computed vicinity members
    # that the dynamic protocol also learned routes for.
    static_vicinities = compute_vicinities(topology)
    total = 0
    agreed = 0
    for node in range(n):
        static_members = static_vicinities[node].members - {node}
        dynamic_members = dynamic_vicinities[node].members - {node}
        total += len(static_members)
        agreed += len(static_members & dynamic_members)
    agreement = agreed / total if total else 1.0

    return StaticAccuracyResult(
        num_nodes=n,
        static_mean_later_stretch=static_report.later_summary.mean,
        dynamic_mean_later_stretch=dynamic_report.later_summary.mean,
        vicinity_membership_agreement=agreement,
        messages_per_node=dynamic.messages_per_node,
        scale_label=scale.label,
    )


def format_report(result: StaticAccuracyResult) -> str:
    """Render the static-vs-dynamic accuracy comparison."""
    table = format_table(
        ["quantity", "value"],
        [
            ["nodes", result.num_nodes],
            ["static mean later-packet stretch", result.static_mean_later_stretch],
            ["dynamic mean later-packet stretch", result.dynamic_mean_later_stretch],
            ["relative difference", result.relative_difference],
            ["vicinity membership agreement", result.vicinity_membership_agreement],
            ["control messages per node", result.messages_per_node],
        ],
    )
    note = (
        "Paper: static-vs-dynamic mean-stretch difference within 0.9% for "
        "Disco later packets and 0.7% for S4 later packets."
    )
    return "\n".join(
        [
            header(
                "Static-simulation accuracy (static vs discrete-event NDDisco)",
                f"scale={result.scale_label}",
            ),
            table,
            note,
        ]
    )
