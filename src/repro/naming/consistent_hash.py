"""Consistent hashing over a set of servers.

Disco's name-resolution module (§4.3) runs "a consistent hashing database
over the (globally-known) set of landmarks": each node's (name, address)
record is stored at the landmark that owns the node's hash.  The same
mechanism also underlies the finger-lookup step of the dissemination overlay
(a node asks the database for the node whose hash is closest to a chosen
point, §4.4).

:class:`ConsistentHashRing` implements the classic construction of Karger et
al. [22]: servers are hashed onto the ring (optionally at multiple virtual
points to smooth the load imbalance, as §4.5 notes), and a key is owned by
the first server clockwise from the key's hash.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, Sequence

from repro.naming.hashspace import HASH_BITS, clockwise_distance

__all__ = ["ConsistentHashRing", "ring_point"]


def ring_point(server: Hashable, replica: int) -> int:
    """The ring position of ``server``'s ``replica``-th virtual node.

    The construction (sha256 over ``f"{server!r}#{replica}"``, top
    ``HASH_BITS`` bits) is shared with
    :class:`repro.resolution.service.VNodeRing` so both rings place
    records identically -- the service's placements are differentially
    pinned against this module's :class:`ConsistentHashRing`.
    """
    material = f"{server!r}#{replica}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[: HASH_BITS // 8], "big")


_point_for = ring_point


class ConsistentHashRing:
    """A consistent-hash ring mapping integer hash keys to servers.

    Parameters
    ----------
    servers:
        The initial server identifiers (landmark node ids, in Disco's use).
    virtual_nodes:
        Number of points each server is hashed to.  1 reproduces the simple
        single-hash-function construction whose most loaded server holds a
        Θ(log n) factor more than its fair share; larger values smooth the
        imbalance as discussed in §4.5.
    """

    def __init__(
        self, servers: Iterable[Hashable] = (), *, virtual_nodes: int = 1
    ) -> None:
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self._virtual_nodes = virtual_nodes
        self._points: list[int] = []
        self._point_owner: dict[int, Hashable] = {}
        self._servers: set[Hashable] = set()
        for server in servers:
            self.add_server(server)

    @property
    def servers(self) -> set[Hashable]:
        """The current set of servers (a copy)."""
        return set(self._servers)

    @property
    def virtual_nodes(self) -> int:
        """Number of ring points per server."""
        return self._virtual_nodes

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, server: Hashable) -> bool:
        return server in self._servers

    def add_server(self, server: Hashable) -> None:
        """Add ``server`` to the ring (no-op if already present)."""
        if server in self._servers:
            return
        self._servers.add(server)
        for replica in range(self._virtual_nodes):
            point = _point_for(server, replica)
            # Extremely unlikely collision: nudge deterministically.
            while point in self._point_owner:
                point = (point + 1) % (1 << HASH_BITS)
            self._point_owner[point] = server
            bisect.insort(self._points, point)

    def remove_server(self, server: Hashable) -> None:
        """Remove ``server`` from the ring.

        Raises
        ------
        KeyError
            If the server is not on the ring.
        """
        if server not in self._servers:
            raise KeyError(server)
        self._servers.discard(server)
        dead_points = [p for p, owner in self._point_owner.items() if owner == server]
        for point in dead_points:
            del self._point_owner[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def owner(self, key: int) -> Hashable:
        """Return the server that owns hash ``key`` (first point clockwise).

        Raises
        ------
        LookupError
            If the ring has no servers.
        """
        if not self._points:
            raise LookupError("consistent hash ring has no servers")
        index = bisect.bisect_left(self._points, key % (1 << HASH_BITS))
        if index == len(self._points):
            index = 0
        return self._point_owner[self._points[index]]

    def owners(self, key: int, count: int) -> list[Hashable]:
        """Return up to ``count`` distinct successive owners clockwise of ``key``.

        Useful for replicated storage of resolution entries.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not self._points:
            raise LookupError("consistent hash ring has no servers")
        result: list[Hashable] = []
        index = bisect.bisect_left(self._points, key % (1 << HASH_BITS))
        total_points = len(self._points)
        for offset in range(total_points):
            point = self._points[(index + offset) % total_points]
            server = self._point_owner[point]
            if server not in result:
                result.append(server)
                if len(result) == count:
                    break
        return result

    def closest_key_owner(self, key: int, candidate_keys: Sequence[int]) -> int:
        """Return the candidate key closest to ``key`` clockwise on the ring.

        Used by the overlay finger-selection procedure: given a target point
        ``a`` in hash space, find the stored key (node hash) whose position
        is nearest going clockwise from ``a`` -- i.e. the node that "owns"
        that region of the ring among the candidates.

        Raises
        ------
        ValueError
            If ``candidate_keys`` is empty.
        """
        if not candidate_keys:
            raise ValueError("candidate_keys must be non-empty")
        return min(
            candidate_keys,
            key=lambda candidate: (clockwise_distance(key, candidate), candidate),
        )

    def load_distribution(self, keys: Iterable[int]) -> dict[Hashable, int]:
        """Return how many of ``keys`` each server owns (servers may map to 0)."""
        counts: dict[Hashable, int] = {server: 0 for server in self._servers}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
