"""Flat names, the circular hash space, and consistent hashing.

Disco routes on *flat names*: arbitrary bit strings with no location
semantics (§2).  This package provides:

* :class:`repro.naming.FlatName` -- an immutable name with its SHA-256 hash,
  exposed both as an integer position in the circular hash space and as a
  bit string for prefix matching.
* :mod:`repro.naming.hashspace` -- arithmetic on the circular hash space
  (clockwise distances, prefix matching, successor ordering) used by the
  sloppy groups and the dissemination overlay.
* :class:`repro.naming.ConsistentHashRing` -- the consistent-hashing
  database abstraction run over the landmark set for name resolution (§4.3).
"""

from repro.naming.names import FlatName, name_for_node
from repro.naming.hashspace import (
    HASH_BITS,
    HASH_SPACE,
    circular_distance,
    clockwise_distance,
    common_prefix_length,
    hash_prefix,
    in_clockwise_interval,
)
from repro.naming.consistent_hash import ConsistentHashRing, ring_point

__all__ = [
    "ConsistentHashRing",
    "FlatName",
    "HASH_BITS",
    "HASH_SPACE",
    "circular_distance",
    "clockwise_distance",
    "common_prefix_length",
    "hash_prefix",
    "in_clockwise_interval",
    "name_for_node",
    "ring_point",
]
