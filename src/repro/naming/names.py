"""Flat, location-independent names.

"The name of a node is an arbitrary bit string; i.e., a flat,
location-independent name" (§4.1).  A :class:`FlatName` wraps that bit string
together with its SHA-256 hash, which the protocol uses for sloppy-group
membership, overlay ordering, and consistent-hashing name resolution.

The simulators identify nodes by dense integer ids (graph vertices); names
are a separate namespace deliberately unrelated to those ids, which is the
whole point of name-independent routing.  :func:`name_for_node` provides the
default synthetic naming used by experiments (``"node-<id>"``), but any byte
string or text label works -- a DNS name, a MAC address, or a self-certifying
key hash, per §1.
"""

from __future__ import annotations

import hashlib
from functools import total_ordering

from repro.naming.hashspace import HASH_BITS

__all__ = ["FlatName", "name_for_node"]


@total_ordering
class FlatName:
    """An immutable flat name plus its position in the hash space.

    Parameters
    ----------
    label:
        The name itself, as text or bytes.  Text is encoded as UTF-8.

    Attributes
    ----------
    label:
        The original text form of the name (bytes are shown as hex).
    raw:
        The name as bytes (what gets hashed).
    hash_value:
        The top ``HASH_BITS`` bits of SHA-256(raw), as an integer position in
        the circular hash space.
    """

    __slots__ = ("_label", "_raw", "_hash_value")

    def __init__(self, label: str | bytes) -> None:
        if isinstance(label, bytes):
            self._raw = label
            self._label = label.hex()
        elif isinstance(label, str):
            if not label:
                raise ValueError("flat name must be a non-empty string")
            self._raw = label.encode("utf-8")
            self._label = label
        else:
            raise TypeError(
                f"flat name must be str or bytes, got {type(label).__name__}"
            )
        if not self._raw:
            raise ValueError("flat name must be non-empty")
        digest = hashlib.sha256(self._raw).digest()
        self._hash_value = int.from_bytes(digest[: HASH_BITS // 8], "big")

    @property
    def label(self) -> str:
        """Human-readable form of the name."""
        return self._label

    @property
    def raw(self) -> bytes:
        """The name as the byte string that is hashed."""
        return self._raw

    @property
    def hash_value(self) -> int:
        """Position of this name in the circular hash space."""
        return self._hash_value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatName):
            return NotImplemented
        return self._raw == other._raw

    def __lt__(self, other: "FlatName") -> bool:
        if not isinstance(other, FlatName):
            return NotImplemented
        # Order by hash value (ring order), breaking ties by the raw name so
        # the ordering is total even under hash collisions.
        return (self._hash_value, self._raw) < (other._hash_value, other._raw)

    def __hash__(self) -> int:
        return hash(self._raw)

    def __repr__(self) -> str:
        return f"FlatName({self._label!r})"

    def __str__(self) -> str:
        return self._label


def name_for_node(node: int, *, prefix: str = "node") -> FlatName:
    """Return the default synthetic flat name for graph node ``node``."""
    if node < 0:
        raise ValueError(f"node id must be >= 0, got {node}")
    return FlatName(f"{prefix}-{node}")
