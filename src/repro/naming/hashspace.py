"""Arithmetic on the circular hash space.

Disco's distributed name database hashes every node name with "a well-known
hash function h(v) (e.g., SHA-2)" into a roughly uniform bit string (§4.4).
Sloppy groups are defined by shared hash prefixes; the dissemination overlay
orders nodes circularly by hash value and chooses Symphony-style fingers by
hash-space distance.  This module centralises the bit/interval arithmetic so
the group, overlay, and dissemination code all agree on conventions.

The hash space is the ring of integers modulo ``2**HASH_BITS`` with
``HASH_BITS = 64``: 64 bits are far more than the Θ(log n) bits the paper
requires and keep every value a cheap machine integer.
"""

from __future__ import annotations

__all__ = [
    "HASH_BITS",
    "HASH_SPACE",
    "clockwise_distance",
    "circular_distance",
    "in_clockwise_interval",
    "common_prefix_length",
    "hash_prefix",
]

HASH_BITS = 64
"""Number of bits in a hash-space position."""

HASH_SPACE = 1 << HASH_BITS
"""Size of the circular hash space (2**HASH_BITS)."""


def _check_position(name: str, value: int) -> None:
    if not 0 <= value < HASH_SPACE:
        raise ValueError(
            f"{name} must be in [0, 2**{HASH_BITS}), got {value!r}"
        )


def clockwise_distance(start: int, end: int) -> int:
    """Distance travelled going clockwise (increasing) from ``start`` to ``end``."""
    _check_position("start", start)
    _check_position("end", end)
    return (end - start) % HASH_SPACE


def circular_distance(a: int, b: int) -> int:
    """Shortest distance between ``a`` and ``b`` on the ring (either direction)."""
    forward = clockwise_distance(a, b)
    return min(forward, HASH_SPACE - forward)


def in_clockwise_interval(
    value: int, start: int, end: int, *, inclusive_end: bool = True
) -> bool:
    """Return True if ``value`` lies in the clockwise interval (start, end).

    The interval excludes ``start``; ``inclusive_end`` controls the endpoint.
    An empty interval (start == end) contains nothing unless
    ``inclusive_end`` and ``value == end == start`` -- matching the usual
    Chord/Symphony successor conventions.
    """
    _check_position("value", value)
    _check_position("start", start)
    _check_position("end", end)
    if start == end:
        return inclusive_end and value == end
    gap = clockwise_distance(start, end)
    offset = clockwise_distance(start, value)
    if inclusive_end:
        return 0 < offset <= gap
    return 0 < offset < gap


def common_prefix_length(a: int, b: int, *, bits: int = HASH_BITS) -> int:
    """Number of leading bits shared by ``a`` and ``b`` (viewed as ``bits``-bit words)."""
    _check_position("a", a)
    _check_position("b", b)
    if bits <= 0 or bits > HASH_BITS:
        raise ValueError(f"bits must be in [1, {HASH_BITS}], got {bits}")
    diff = (a ^ b) >> (HASH_BITS - bits)
    if diff == 0:
        return bits
    return bits - diff.bit_length()


def hash_prefix(value: int, num_bits: int) -> int:
    """Return the top ``num_bits`` bits of ``value`` as an integer.

    ``num_bits == 0`` returns 0 (everyone shares the empty prefix), which is
    what the sloppy-group computation needs for tiny networks where
    ``k = floor(log2(sqrt(n)/log n))`` is not positive.
    """
    _check_position("value", value)
    if num_bits < 0 or num_bits > HASH_BITS:
        raise ValueError(f"num_bits must be in [0, {HASH_BITS}], got {num_bits}")
    if num_bits == 0:
        return 0
    return value >> (HASH_BITS - num_bits)
