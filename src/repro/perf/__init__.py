"""Performance harness: kernel and end-to-end benchmarks.

``repro bench`` (see :mod:`repro.perf.kernel_bench`) times the dict-based
reference shortest-path engine against the CSR kernels -- both as raw kernel
microbenchmarks and as end-to-end :class:`StaticSimulation` construction --
and writes the results to ``BENCH_kernels.json``, seeding the repository's
perf trajectory: future PRs rerun the bench and compare against the
committed numbers.
"""

from repro.perf.kernel_bench import BENCH_SCHEMA, bench_kernels, write_bench_json

__all__ = ["BENCH_SCHEMA", "bench_kernels", "write_bench_json"]
