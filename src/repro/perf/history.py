"""Benchmark run history: append-only run records plus run comparison.

``repro bench`` writes its report to ``--out`` (``BENCH_kernels.json``)
*and* appends the same report to a history directory (default
``benchmarks/history/``) as one self-contained JSON document per run.
Each record wraps the report with the git revision it measured, so the
report's ``host`` block plus the record's ``git`` block together answer
"what code, on what machine" for every number ever recorded -- committed
``BENCH_kernels.json`` files only ever show the latest run, while the
history accumulates the trajectory.

``repro bench compare A B`` resolves two recorded runs (by history file
name prefix, git sha prefix, the literal ``latest``, or an explicit path
to any report JSON) and prints the per-benchmark speedup deltas -- the
"did this commit help" view that diffing two 60-line JSON files by hand
does not give.
"""

from __future__ import annotations

import json
import os
import subprocess

__all__ = [
    "DEFAULT_HISTORY_DIR",
    "HISTORY_SCHEMA",
    "compare_reports",
    "git_revision",
    "list_runs",
    "record_run",
    "resolve_run",
]

HISTORY_SCHEMA = "repro-bench-history/v1"

#: Where ``repro bench`` appends run records (relative to the cwd, which
#: for the committed history is the repository root).
DEFAULT_HISTORY_DIR = os.path.join("benchmarks", "history")


def git_revision(cwd: str | None = None) -> dict:
    """``{"sha": ..., "dirty": ...}`` of the working tree (best-effort).

    Both fields are ``None`` when git (or a repository) is unavailable --
    history records stay writable from an exported tarball.
    """

    def run(*argv: str) -> "subprocess.CompletedProcess[str]":
        return subprocess.run(
            argv, cwd=cwd, capture_output=True, text=True, timeout=10
        )

    try:
        proc = run("git", "rev-parse", "HEAD")
        if proc.returncode != 0:
            return {"sha": None, "dirty": None}
        sha = proc.stdout.strip() or None
        status = run("git", "status", "--porcelain")
        dirty = (
            bool(status.stdout.strip()) if status.returncode == 0 else None
        )
        return {"sha": sha, "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"sha": None, "dirty": None}


def _timestamp_slug(generated: str) -> str:
    """``2026-08-08T12:34:56+0000`` -> filename-safe ``20260808T123456``."""
    slug = "".join(c for c in generated.split("+")[0] if c.isalnum() or c == "T")
    return slug or "unknown"


def record_run(
    report: dict, directory: str, *, git: dict | None = None
) -> str:
    """Append one run record for ``report``; returns the record path.

    The filename is ``<generated>-<sha7>.json`` (``nogit`` without a
    repository); an existing name gets a numeric suffix rather than being
    overwritten, so records are append-only.
    """
    git = git_revision() if git is None else git
    sha = git.get("sha") or ""
    stem = "{}-{}".format(
        _timestamp_slug(str(report.get("generated", ""))),
        sha[:7] if sha else "nogit",
    )
    os.makedirs(directory, exist_ok=True)
    record = {"schema": HISTORY_SCHEMA, "git": git, "report": report}
    payload = json.dumps(record, indent=2, sort_keys=False) + "\n"
    path = os.path.join(directory, stem + ".json")
    suffix = 0
    while os.path.exists(path):
        suffix += 1
        path = os.path.join(directory, f"{stem}-{suffix}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return path


def _load(path: str) -> dict:
    """Load a history record or a bare ``BENCH_kernels.json`` report.

    Returns a normalized record: ``{"path", "git", "report"}``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: not a benchmark document")
    if "report" in document:  # history record
        report = document["report"]
        git = document.get("git") or {}
    elif "benchmarks" in document:  # bare bench_kernels report
        report = document
        git = {}
    else:
        raise ValueError(f"{path}: neither a history record nor a report")
    if not isinstance(report.get("benchmarks"), dict):
        raise ValueError(f"{path}: report has no benchmarks table")
    return {"path": path, "git": git, "report": report}


def list_runs(directory: str) -> list[str]:
    """History record paths under ``directory``, oldest first.

    Timestamped filenames make lexicographic order chronological.
    """
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    return [
        os.path.join(directory, name)
        for name in names
        if name.endswith(".json")
    ]


def resolve_run(token: str, directory: str) -> dict:
    """Resolve ``token`` to a loaded run record.

    ``token`` may be an explicit path to any report JSON, the literal
    ``latest`` (newest record in ``directory``), or a prefix of either a
    record filename or a recorded git sha.  Ambiguity and misses raise
    ``ValueError`` naming the candidates.
    """
    if os.path.isfile(token):
        return _load(token)
    runs = list_runs(directory)
    if token == "latest":
        if not runs:
            raise ValueError(f"no history records under {directory}")
        return _load(runs[-1])
    matches = []
    for path in runs:
        name = os.path.basename(path)
        if name.startswith(token) or name[: -len(".json")].startswith(token):
            matches.append(path)
            continue
        try:
            record = _load(path)
        except (OSError, ValueError):
            continue
        sha = record["git"].get("sha") or ""
        if token and sha.startswith(token):
            matches.append(path)
    if not matches:
        raise ValueError(
            f"no history record matches {token!r} under {directory} "
            f"({len(runs)} record(s) present)"
        )
    if len(matches) > 1:
        names = ", ".join(os.path.basename(m) for m in matches)
        raise ValueError(f"{token!r} is ambiguous: {names}")
    return _load(matches[0])


def compare_reports(a: dict, b: dict) -> dict:
    """Per-benchmark deltas between two ``bench_kernels`` reports.

    Returns ``{"common": [...], "only_a": [...], "only_b": [...]}`` where
    each ``common`` row carries both runs' ``after_s`` and ``speedup``
    plus the derived deltas:

    * ``after_ratio`` -- ``a.after_s / b.after_s``; > 1 means run B's
      measured implementation is faster on that workload;
    * ``speedup_delta`` -- ``b.speedup - a.speedup``.

    Comparing a ``--quick`` run against a full run is allowed but flagged
    (``quick_mismatch``): the workloads differ, so ``after_ratio`` is not
    meaningful there, only the speedup columns are.  Runs whose recorded
    in-kernel thread fan-out differs (``host.kernel_threads``) are flagged
    the same way (``thread_mismatch``, with both counts in
    ``thread_counts``): results are byte-identical for any width, but the
    threaded families' wall clocks are then not like-for-like.
    """
    bench_a = a.get("benchmarks", {})
    bench_b = b.get("benchmarks", {})
    common = []
    for name in sorted(set(bench_a) & set(bench_b)):
        entry_a, entry_b = bench_a[name], bench_b[name]
        after_a = float(entry_a.get("after_s", 0.0))
        after_b = float(entry_b.get("after_s", 0.0))
        common.append(
            {
                "name": name,
                "a_after_s": after_a,
                "b_after_s": after_b,
                "after_ratio": round(after_a / after_b, 3)
                if after_b > 0
                else None,
                "a_speedup": entry_a.get("speedup"),
                "b_speedup": entry_b.get("speedup"),
                "speedup_delta": round(
                    float(entry_b.get("speedup", 0.0))
                    - float(entry_a.get("speedup", 0.0)),
                    3,
                ),
            }
        )
    threads_a = (a.get("host") or {}).get("kernel_threads")
    threads_b = (b.get("host") or {}).get("kernel_threads")
    return {
        "common": common,
        "only_a": sorted(set(bench_a) - set(bench_b)),
        "only_b": sorted(set(bench_b) - set(bench_a)),
        "quick_mismatch": bool(a.get("quick")) != bool(b.get("quick")),
        "thread_counts": [threads_a, threads_b],
        "thread_mismatch": (
            threads_a is not None
            and threads_b is not None
            and threads_a != threads_b
        ),
    }
