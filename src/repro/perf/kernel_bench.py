"""Before/after benchmarks for the CSR shortest-path kernels.

Every benchmark times the same workload twice:

* **before** -- the dict-based reference engine
  (:mod:`repro.graphs._reference_paths`), run through the public API with
  ``use_engine("reference")``; the end-to-end benchmarks additionally pass
  ``share_substrate=False`` so the "before" side reproduces the seed
  implementation exactly (S4 rebuilding the landmark trees NDDisco already
  computed).
* **after** -- the CSR engine (:mod:`repro.graphs.csr`) exactly as the
  library runs by default: kernel auto-selected from the weight profile
  (BFS / Dial bucket queue / indexed 4-ary heap) and the C tier active
  whenever a C compiler is available.

Both engines return bit-identical results (enforced by the differential
tests in ``tests/``), so the ratio is a pure performance number.  Timings
are best-of-N wall clock; graphs use the experiments' canonical
``average_degree=8.0``.

The kernel microbenchmarks cover the paper's topology matrix -- G(n,m),
geometric (irregular float latencies), quantized geometric (bucket-queue
eligible), and the synthetic router-level / AS-level Internet maps -- so a
regression in any kernel shows up in the family that exercises it.  The
``kernel_scaling/*`` family adds per-kernel n-curves (Python tier vs C
tier at n = 2^10 .. 2^17) and the ``ingest/*`` family times streaming
file-to-CSR ingestion against the dict-mediated read path and a warm
content-addressed artifact attach.  ``substrate_build_threads/*`` sweeps
the in-kernel pthread fan-out of the batched entry points against the
pinned serial per-source loop (every entry byte-compared against the
serial slabs), and ``churn_scaling/*`` extends the churn engine's
event-vs-replay comparison to an n-curve.  Passing ``kernel=`` ("heap",
"bucket", or "bfs") forces that kernel on the CSR side wherever the
weight profile allows it, which is how ``repro bench --kernel`` A/Bs
the kernels on the same workload.

``repro bench`` runs :func:`bench_kernels` and writes
``BENCH_kernels.json``; see the "Performance architecture" section of
``ROADMAP.md`` for how to read the file.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from typing import Callable

from repro.core.vicinity import vicinity_size
from repro.graphs import _reference_paths as reference
from repro.graphs.csr import CSRGraph
from repro.graphs.engine import use_engine
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_as_level,
    internet_router_level,
)
from repro.graphs.sampling import sample_pairs
from repro.graphs.topology import Topology
from repro.staticsim.simulation import StaticSimulation

__all__ = ["BENCH_SCHEMA", "bench_kernels", "host_metadata", "write_bench_json"]

BENCH_SCHEMA = "repro-bench-kernels/v3"

#: Power-of-two latency quantum for the bucket-queue benchmark family.
BENCH_LATENCY_QUANTUM = 0.25


def _cpu_model() -> str:
    """Best-effort CPU model string (``/proc/cpuinfo`` on Linux)."""
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def host_metadata() -> dict:
    """Host facts that make committed benchmark numbers interpretable.

    Recorded in every ``BENCH_kernels.json`` so numbers measured on
    different machines (CPU model, core count, Python build, kernel tier)
    can be compared with eyes open rather than assumed equivalent.
    ``kernel_threads`` is the resolved in-kernel thread fan-out the run's
    batched entry points used (``REPRO_KERNEL_THREADS``, else the CPU
    count); ``repro bench compare`` flags runs whose counts differ, since
    the threaded families are then not like-for-like.
    """
    from repro.graphs import _ckernels
    from repro.graphs.csr import kernel_threads

    return {
        "cpu_model": _cpu_model(),
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "kernel_tier": "c" if _ckernels.load_kernels() is not None else "python",
        "kernel_threads": kernel_threads(),
        "kernel_threads_env": os.environ.get("REPRO_KERNEL_THREADS") or None,
    }


def _best_of(function: Callable[[], None], repeats: int) -> float:
    """Best-of-N wall-clock seconds for one call of ``function``."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _entry(
    name: str,
    params: dict,
    before: Callable[[], None],
    after: Callable[[], None],
    *,
    repeats: int,
    results: dict[str, dict],
) -> None:
    before_s = _best_of(before, repeats)
    after_s = _best_of(after, repeats)
    results[name] = {
        "params": params,
        "before_s": round(before_s, 6),
        "after_s": round(after_s, 6),
        "speedup": round(before_s / after_s, 3) if after_s > 0 else math.inf,
    }


def _fresh(topology: Topology) -> Topology:
    """Copy ``topology`` so CSR snapshot build cost lands inside the timer."""
    return topology.copy()


def _csr_for(topology: Topology, kernel: str | None) -> CSRGraph:
    """CSR snapshot honoring a forced kernel where the profile allows it."""
    if kernel is None:
        return topology.csr()
    try:
        return CSRGraph.from_topology(topology, kernel=kernel)
    except ValueError:
        # The forced kernel is not applicable to this family (e.g. bucket
        # on irregular floats); fall back to auto selection so the matrix
        # stays complete.
        return topology.csr()


def bench_kernels(
    *,
    quick: bool = False,
    workers: int | None = None,
    kernel: str | None = None,
) -> dict:
    """Run every kernel and end-to-end benchmark; return the report dict.

    Parameters
    ----------
    quick:
        Shrink every workload (used by CI smoke runs and the pytest
        benchmark); the numbers are then only a canary, not the headline.
    workers:
        If given and > 1, adds parallel variants of the end-to-end build
        using the multiprocessing fan-out.
    kernel:
        Force ``"heap"``, ``"bucket"``, or ``"bfs"`` on the CSR side
        wherever the weight profile permits (A/B harness for the kernels);
        default auto-selects per family.  The override applies to the
        kernel microbenchmarks only: the end-to-end ``staticsim/*`` cases
        build their snapshots inside ``StaticSimulation`` via
        ``Topology.csr()`` (always auto-selected), so they are skipped in an
        A/B run rather than silently reporting auto-kernel numbers.
    """
    results: dict[str, dict] = {}

    n_full = 512 if quick else 4096
    sources = list(range(0, n_full, max(1, n_full // (4 if quick else 8))))
    repeats = 2 if quick else 3

    # -- full single-source Dijkstra across the topology matrix ----------
    families = {
        "gnm": gnm_random_graph(n_full, seed=3, average_degree=8.0),
        "geometric": geometric_random_graph(
            n_full, seed=3, average_degree=8.0
        ),
        "geometric-q": geometric_random_graph(
            n_full,
            seed=3,
            average_degree=8.0,
            latency_quantum=BENCH_LATENCY_QUANTUM,
        ),
    }
    if not quick:
        families["router-level"] = internet_router_level(n_full, seed=3)
        families["as-level"] = internet_as_level(n_full, seed=3)

    csrs = {name: _csr_for(topo, kernel) for name, topo in families.items()}
    for family, topo in families.items():
        csr = csrs[family]
        _entry(
            f"dijkstra_full/{family}-{n_full}",
            {
                "family": family,
                "n": n_full,
                "sources": len(sources),
                "unit_weights": topo.weight_profile().unit,
                "kernel": csr.kernel,
                "tier": csr.tier,
            },
            lambda topo=topo: [reference.dijkstra(topo, s) for s in sources],
            lambda csr=csr: [csr.dijkstra(s) for s in sources],
            repeats=repeats,
            results=results,
        )

    # -- truncated and bounded kernels ----------------------------------
    k = vicinity_size(n_full)
    k_sources = range(64 if quick else 256)
    for family in ("gnm", "geometric") if not quick else ("gnm",):
        topo = families[family]
        csr = csrs[family]
        _entry(
            f"k_nearest/{family}-{n_full}",
            {
                "family": family,
                "n": n_full,
                "k": k,
                "sources": len(k_sources),
                "kernel": csr.kernel,
                "tier": csr.tier,
            },
            lambda topo=topo: [
                reference.dijkstra_k_nearest(topo, s, k) for s in k_sources
            ],
            lambda csr=csr: csr.batched_k_nearest(k, k_sources),
            repeats=repeats,
            results=results,
        )

    for family, radius in (("gnm", 3.0), ("geometric-q", 30.0)):
        if quick and family != "gnm":
            continue
        topo = families[family]
        csr = csrs[family]
        _entry(
            f"radius/{family}-{n_full}",
            {
                "family": family,
                "n": n_full,
                "radius": radius,
                "sources": len(k_sources),
                "kernel": csr.kernel,
                "tier": csr.tier,
            },
            lambda topo=topo, radius=radius: [
                reference.dijkstra_radius(topo, s, radius) for s in k_sources
            ],
            lambda csr=csr, radius=radius: csr.batched_radius(
                [radius] * len(k_sources), k_sources
            ),
            repeats=repeats,
            results=results,
        )

    gnm = families["gnm"]
    pairs = sample_pairs(gnm, 100 if quick else 500, seed=11)
    _entry(
        f"batched_targets/gnm-{n_full}",
        {
            "family": "gnm",
            "n": n_full,
            "pairs": len(pairs),
            "kernel": csrs["gnm"].kernel,
            "tier": csrs["gnm"].tier,
        },
        lambda: reference.all_pairs_sampled_distances(gnm, pairs),
        lambda: csrs["gnm"].batched_target_distances(pairs),
        repeats=repeats,
        results=results,
    )

    # -- unit-weight BFS vs the Dial bucket queue ------------------------
    # Both kernels are exact on unit weights and bit-identical (pinned by
    # tests/test_graphs_ingest.py); auto-selection prefers BFS, and this
    # entry records what that preference is worth on the same workload.
    if kernel is None:
        bucket_csr = CSRGraph.from_topology(gnm, kernel="bucket")
        bfs_csr = CSRGraph.from_topology(gnm, kernel="bfs")
        _entry(
            f"kernel_bfs/gnm-{n_full}",
            {
                "family": "gnm",
                "n": n_full,
                "sources": len(sources),
                "tier": bfs_csr.tier,
                "comparison": "Dial bucket queue vs level-ordered BFS "
                "on the same unit-weight graph (full SPTs)",
            },
            lambda: [bucket_csr.dijkstra(s) for s in sources],
            lambda: [bfs_csr.dijkstra(s) for s in sources],
            repeats=repeats,
            results=results,
        )

    _kernel_scaling_case(results, quick=quick, kernel=kernel)

    # -- end-to-end converged-state construction ------------------------
    # "before" = reference engine + no substrate sharing: exactly the work
    # the seed implementation performed.  "after" = the library's default
    # path, including the (freshly timed) CSR snapshot build.
    def staticsim_case(name: str, topology: Topology, *, repeats: int) -> None:
        def before() -> None:
            with use_engine("reference"):
                StaticSimulation(
                    _fresh(topology),
                    ("nd-disco", "s4"),
                    seed=1,
                    share_substrate=False,
                )

        def after() -> None:
            StaticSimulation(_fresh(topology), ("nd-disco", "s4"), seed=1)

        _entry(
            name,
            {
                "family": topology.name,
                "n": topology.num_nodes,
                "protocols": ["nd-disco", "s4"],
            },
            before,
            after,
            repeats=repeats,
            results=results,
        )
        if workers and workers > 1:
            options = {
                "nd-disco": {"workers": workers},
                "s4": {"workers": workers},
            }
            after_parallel = _best_of(
                lambda: StaticSimulation(
                    _fresh(topology),
                    ("nd-disco", "s4"),
                    seed=1,
                    scheme_options=options,
                ),
                repeats,
            )
            results[name + f"/workers-{workers}"] = {
                "params": {**results[name]["params"], "workers": workers},
                "before_s": results[name]["before_s"],
                "after_s": round(after_parallel, 6),
                "speedup": round(results[name]["before_s"] / after_parallel, 3),
            }

    if kernel is None:
        n_sim = 256 if quick else 2048
        staticsim_case(
            f"staticsim/gnm-{n_sim}",
            gnm_random_graph(n_sim, seed=3, average_degree=8.0),
            repeats=2 if quick else 3,
        )
        staticsim_case(
            f"staticsim/geometric-{256 if quick else 1024}",
            geometric_random_graph(
                256 if quick else 1024, seed=3, average_degree=8.0
            ),
            repeats=2,
        )
        _ingest_case(results, quick=quick)
        _substrate_build_case(results, quick=quick, workers=workers)
        _substrate_build_threads_case(results, quick=quick)
        _measurement_batch_case(results, quick=quick, repeats=repeats)
        _measurement_scaling_case(results, quick=quick)
        _resolution_scaling_case(results, quick=quick)
        _churn_case(results, quick=quick, repeats=2)
        _churn_scaling_case(results, quick=quick)
        _scenario_suite_case(
            results, quick=quick, workers=workers, repeats=1 if quick else 2
        )

    from repro.graphs import _ckernels

    return {
        "schema": BENCH_SCHEMA,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "kernel_override": kernel,
        "c_kernels": _ckernels.load_kernels() is not None,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host": host_metadata(),
        "benchmarks": results,
    }


#: The scenario subset of the ``scenario_suite*`` benchmarks: the five
#: quick-scale scenarios sharing the most prerequisites (see
#: :func:`_scenario_suite_case`).
SUITE_IDS = (
    "fig02-state-cdf",
    "fig03-stretch-cdf",
    "fig07-state-bytes",
    "fig10-congestion-as",
    "addr-sizes",
)


def suite_scale(n: int, *, quick: bool = False):
    """The ``scenario_suite*`` benchmark scale for ``n``-node topologies."""
    from repro.experiments.config import ExperimentScale

    return ExperimentScale(
        comparison_nodes=n,
        large_nodes=n,
        as_level_nodes=n,
        router_level_nodes=n + n // 4,
        pair_sample=60 if quick else 150,
        messaging_sweep=(24, 32) if quick else (48, 64),
        scaling_sweep=(n // 2, n) if quick else (n // 2, 3 * n // 4, n),
        seed=2010,
        label="bench-suite",
    )


def traced_suite_run(root: str, *, n: int = 384, quick: bool = False) -> tuple[int, int]:
    """Run the benchmark suite against ``root`` under ``tracemalloc``.

    Returns ``(retained_bytes, peak_bytes)`` measured with the run's cache
    still alive -- the number the ``scenario_suite_warm`` params record
    and the warm-memory canary asserts on.  Against a populated root this
    is a fully warm run; against an empty one, a cold run.
    """
    import gc
    import tracemalloc

    from repro.scenarios.cache import ArtifactCache
    from repro.scenarios.engine import run_scenarios

    cache = ArtifactCache(root)
    tracemalloc.start()
    try:
        run_scenarios(
            SUITE_IDS, scale=suite_scale(n, quick=quick), workers=1, cache=cache
        )
        gc.collect()
        current, peak = tracemalloc.get_traced_memory()
        return current, peak
    finally:
        tracemalloc.stop()
        del cache


def _kernel_scaling_case(
    results: dict[str, dict], *, quick: bool, kernel: str | None
) -> None:
    """Per-kernel scaling curves: Python tier vs C tier across sizes.

    One curve per kernel, each on the family whose weight profile selects
    it -- ``dijkstra_full`` on geometric (indexed 4-ary heap),
    ``k_nearest`` on G(n,m) (unit-weight BFS), ``radius`` on quantized
    geometric (Dial bucket queue) -- at n = 2^10 .. 2^17 (full mode; the
    quick run truncates the curve).  Both sides run the same kernel
    algorithm, so each entry isolates what the C tier is worth at that
    size; without a C compiler both sides coincide and the curve is a
    pure canary.  Source counts shrink with n to keep the Python tier's
    wall clock bounded; the per-size ``sources`` param records them.
    """
    sizes = [1024, 4096] if quick else [2**p for p in range(10, 18, 2)] + [2**17]
    for n in sizes:
        topo_heap = geometric_random_graph(n, seed=3, average_degree=8.0)
        topo_bfs = gnm_random_graph(n, seed=3, average_degree=8.0)
        topo_bucket = geometric_random_graph(
            n, seed=3, average_degree=8.0,
            latency_quantum=BENCH_LATENCY_QUANTUM,
        )
        full_sources = list(range(0, n, max(1, n // 2 if n >= 65536 else n // 4)))
        trunc_sources = range(16 if quick else 64)
        k = vicinity_size(n)
        cases = (
            ("dijkstra_full", topo_heap,
             lambda csr, sources=full_sources: [
                 csr.dijkstra(s) for s in sources
             ],
             {"sources": len(full_sources)}),
            ("k_nearest", topo_bfs,
             lambda csr, k=k, sources=trunc_sources: csr.batched_k_nearest(
                 k, sources
             ),
             {"k": k, "sources": len(trunc_sources)}),
            ("radius", topo_bucket,
             lambda csr, sources=trunc_sources: csr.batched_radius(
                 [30.0] * len(sources), sources
             ),
             {"radius": 30.0, "sources": len(trunc_sources)}),
        )
        for op, topo, workload, extra in cases:
            csr_c = _csr_for(topo, kernel)
            try:
                csr_py = CSRGraph.from_topology(
                    topo, kernel=csr_c.kernel, use_c=False
                )
            except ValueError:  # pragma: no cover - kernels match profile
                csr_py = CSRGraph.from_topology(topo, use_c=False)
            _entry(
                f"kernel_scaling/{op}-{n}",
                {
                    "family": topo.name,
                    "n": n,
                    "kernel": csr_c.kernel,
                    "tier_before": csr_py.tier,
                    "tier_after": csr_c.tier,
                    "comparison": "same kernel, Python tier vs C tier",
                    **extra,
                },
                lambda csr=csr_py, workload=workload: workload(csr),
                lambda csr=csr_c, workload=workload: workload(csr),
                repeats=1 if n >= 16384 else (2 if quick else 3),
                results=results,
            )


def _ingest_case(results: dict[str, dict], *, quick: bool) -> None:
    """Streaming file-to-CSR ingestion vs the dict-mediated read path.

    The workload is an on-disk edge list brought up to a ready-to-search
    CSR snapshot:

    * **before** -- ``read_edge_list``: parse into a dict-backed
      :class:`Topology` (per-node adjacency dicts, per-edge weight dict),
      then ``.csr()`` re-walks the dicts into slabs;
    * **after** -- :func:`repro.graphs.ingest.ingest_file` with the CSR
      backend: the same lines streamed straight into flat edge arrays,
      deduplicated and scattered into CSR slabs by the C kernels, with no
      per-edge Python objects; ``.csr()`` on the result is a zero-copy
      view of the slabs.

    Both sides produce byte-identical topologies (pinned by
    ``tests/test_graphs_ingest.py``), so the ratio is a pure performance
    number.  The ``artifact-warm`` entry re-ingests the largest tier
    against a populated on-disk artifact cache (fresh memory cache each
    call), timing the content-addressed attach path that ``repro run
    --topology-file`` hits on every run after the first.
    """
    import shutil
    import tempfile

    from repro.graphs.ingest import ingest_file, ingest_topology
    from repro.graphs.io import read_edge_list, write_edge_list
    from repro.scenarios.cache import ArtifactCache, activated

    sizes = [1024] if quick else [4096, 32768, 131072]
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-ingest-")
    try:
        largest = sizes[-1]
        largest_path = None
        for n in sizes:
            topology = gnm_random_graph(n, seed=3, average_degree=8.0)
            path = os.path.join(tmpdir, f"gnm-{n}.edges")
            write_edge_list(topology, path)
            if n == largest:
                largest_path = path
            _entry(
                f"ingest/edge-list-{n}",
                {
                    "family": "gnm",
                    "n": n,
                    "edges": topology.num_edges,
                    "comparison": "read_edge_list into dict Topology + "
                    "dict->CSR snapshot vs streaming ingest_file straight "
                    "to CSRTopology slabs",
                },
                lambda path=path: read_edge_list(path).csr(),
                lambda path=path: ingest_file(path, backend="csr").csr(),
                repeats=1 if n >= 32768 else (2 if quick else 3),
                results=results,
            )

        root = os.path.join(tmpdir, "cache")
        with activated(ArtifactCache(root)):
            ingest_topology(largest_path)  # populate, outside the timers

        def warm() -> None:
            with activated(ArtifactCache(root)):
                ingest_topology(largest_path)

        _entry(
            f"ingest/artifact-warm-{largest}",
            {
                "family": "gnm",
                "n": largest,
                "comparison": "cold streaming parse vs warm "
                "content-addressed artifact attach (fresh memory cache "
                "per call, keyed by file digest + format + params)",
            },
            lambda: ingest_file(largest_path, backend="csr"),
            warm,
            repeats=2,
            results=results,
        )
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def _substrate_build_case(
    results: dict[str, dict], *, quick: bool, workers: int | None
) -> None:
    """Slab-direct substrate construction vs the dict-mediated path.

    The workload is one converged NDDisco substrate on a G(n,m) topology:
    landmark SPT rows, closest-landmark rows, the vicinity CSR, and the
    label-encoded address payloads.

    * **before** -- the historical component-wise build: dense SPT rows
      collected per landmark, per-node ``VicinityTable`` dicts from
      ``compute_vicinities``, then one ``SubstrateTables.from_components``
      pass boxing everything back out of the dicts into slabs;
    * **after** -- :func:`repro.core.substrate_build.build_substrate_tables`
      writing the same kernel results straight into the preallocated
      row-major slabs (no per-node dict intermediates).

    Both sides produce byte-identical slabs (``tests/test_substrate_build.py``),
    so the ratio is a pure performance number.  The CSR snapshot is built
    outside the timers -- both sides run on the same kernels; only the
    assembly strategy differs.

    The scaling tail (n = 2^16 and 2^17, full mode only) drops the dict
    side -- at those sizes it is pure waiting -- and instead A/Bs slab
    placement: RAM arrays ("before") vs anonymous mmap ("after"), pinning
    the cost of going out-of-core at ~parity.
    """
    from repro.addressing.labels import LabelCodec
    from repro.core.landmarks import (
        closest_landmarks,
        landmark_spts,
        select_landmarks,
    )
    from repro.core.substrate_build import build_substrate_tables
    from repro.core.tables import SubstrateTables
    from repro.core.vicinity import compute_vicinities

    sizes = [1024] if quick else [1024, 2048, 4096, 8192, 16384, 32768]
    for n in sizes:
        topology = gnm_random_graph(n, seed=3, average_degree=8.0)
        landmarks = select_landmarks(n, seed=1)
        codec = LabelCodec(topology)
        csr = topology.csr()  # shared by both sides, outside the timers

        def before(
            topology=topology, landmarks=landmarks, codec=codec, n=n
        ) -> None:
            spts = landmark_spts(topology, landmarks)
            closest = closest_landmarks(spts, n)
            vicinities = compute_vicinities(topology)
            SubstrateTables.from_components(
                n, spts, closest, vicinities, codec
            )

        def after(topology=topology, landmarks=landmarks, codec=codec) -> None:
            build_substrate_tables(topology, landmarks, codec=codec)

        _entry(
            f"substrate_build/gnm-{n}",
            {
                "family": "gnm",
                "n": n,
                "landmarks": len(landmarks),
                "vicinity_k": vicinity_size(n),
                "kernel": csr.kernel,
                "tier": csr.tier,
                "comparison": "component-wise dict-mediated build + "
                "from_components vs slab-direct build",
            },
            before,
            after,
            repeats=1 if n >= 16384 else (2 if quick else 3),
            results=results,
        )
        if workers and workers > 1 and n == sizes[-1]:
            parallel_s = _best_of(
                lambda: build_substrate_tables(
                    topology, landmarks, codec=codec, workers=workers
                ),
                1,
            )
            base = results[f"substrate_build/gnm-{n}"]
            results[f"substrate_build/gnm-{n}/workers-{workers}"] = {
                "params": {**base["params"], "workers": workers},
                "before_s": base["before_s"],
                "after_s": round(parallel_s, 6),
                "speedup": round(base["before_s"] / parallel_s, 3)
                if parallel_s > 0
                else math.inf,
            }

    if quick:
        return

    # -- scaling tail: slab placement A/B at sizes the dict path cannot --
    for n in (65536, 131072):
        topology = gnm_random_graph(n, seed=3, average_degree=8.0)
        landmarks = select_landmarks(n, seed=1)
        codec = LabelCodec(topology)
        csr = topology.csr()
        _entry(
            f"substrate_build/gnm-{n}-mmap",
            {
                "family": "gnm",
                "n": n,
                "landmarks": len(landmarks),
                "vicinity_k": vicinity_size(n),
                "kernel": csr.kernel,
                "tier": csr.tier,
                "comparison": "slab-direct build, RAM arrays vs anonymous "
                "mmap placement (out-of-core parity; the dict path is "
                "omitted at this size)",
            },
            lambda topology=topology, landmarks=landmarks, codec=codec: (
                build_substrate_tables(topology, landmarks, codec=codec)
            ),
            lambda topology=topology, landmarks=landmarks, codec=codec: (
                build_substrate_tables(
                    topology, landmarks, codec=codec, storage="mmap"
                )
            ),
            repeats=1,
            results=results,
        )


def _substrate_build_threads_case(
    results: dict[str, dict], *, quick: bool
) -> None:
    """In-kernel thread fan-out vs the pinned serial per-source loop.

    The workload is the slab-direct NDDisco substrate build at the largest
    ``substrate_build/*`` size, repeated across thread counts:

    * **before** -- ``threads=0``: the historical serial per-source Python
      loop over the same C kernels (the differential anchor every other
      path is tested against);
    * **after** -- ``threads=T``: the batched C entry points
      (``spt_rows_batch`` / ``k_nearest_batch``) looping sources inside
      the kernel, fanned over ``T`` in-kernel pthreads with the GIL
      released for the whole call.

    Every entry's slabs are compared byte-for-byte against the serial
    build (``byte_identical_to_serial`` in params) -- thread fan-out is
    a pure scheduling change, never a results change.  On a machine
    without a C compiler the threaded path falls back to the serial loop
    and the entries degenerate to a canary at ~1x.  Thread counts beyond
    the CPU count are recorded anyway: oversubscription must still be
    byte-identical, and the curve shows where the machine stops paying.
    """
    from repro.addressing.labels import LabelCodec
    from repro.core.landmarks import select_landmarks
    from repro.core.substrate_build import build_substrate_tables

    n = 1024 if quick else 32768
    thread_counts = (1, 2) if quick else (1, 2, 4, 8)
    topology = gnm_random_graph(n, seed=3, average_degree=8.0)
    landmarks = select_landmarks(n, seed=1)
    codec = LabelCodec(topology)
    csr = topology.csr()  # shared by every side, outside the timers

    serial_start = time.perf_counter()
    serial = build_substrate_tables(
        topology, landmarks, codec=codec, threads=0
    )
    serial_s = time.perf_counter() - serial_start
    serial_slabs = {
        name: memoryview(slab).cast("B")
        for name, _, slab in serial.slab_items()
    }

    for threads in thread_counts:
        start = time.perf_counter()
        tables = build_substrate_tables(
            topology, landmarks, codec=codec, threads=threads
        )
        threaded_s = time.perf_counter() - start
        identical = all(
            serial_slabs[name] == memoryview(slab).cast("B")
            for name, _, slab in tables.slab_items()
        ) and len(serial_slabs) == len(tables.slab_items())
        del tables
        results[f"substrate_build_threads/gnm-{n}-threads-{threads}"] = {
            "params": {
                "family": "gnm",
                "n": n,
                "landmarks": len(landmarks),
                "vicinity_k": vicinity_size(n),
                "kernel": csr.kernel,
                "tier": csr.tier,
                "threads": threads,
                "byte_identical_to_serial": identical,
                "comparison": "pinned serial per-source loop (threads=0) "
                "vs in-kernel batched entry points fanned over "
                f"{threads} pthread(s)",
            },
            "before_s": round(serial_s, 6),
            "after_s": round(threaded_s, 6),
            "speedup": round(serial_s / threaded_s, 3)
            if threaded_s > 0
            else math.inf,
        }


def _churn_scaling_case(results: dict[str, dict], *, quick: bool) -> None:
    """Churn-engine n-curve: event-driven maintenance vs the replay oracle.

    The ``churn/*`` family pins the engine at one Fig. 8-scale size; this
    family extends it to an n-curve (n = 2^10 .. 2^15 in full mode) so a
    complexity regression in the incremental repair paths -- a repair
    quietly reconverging the world, a diff walking state it did not touch
    -- bends the curve instead of hiding at one point.  Per size:

    * **before** -- the replay oracle: rebuild a fully reconverged
      :class:`NDDiscoRouting` after every event and diff the states
      (:func:`~repro.dynamics.maintenance.maintenance_cost`);
    * **after** -- one :class:`~repro.dynamics.engine.ChurnEngine`
      convergence plus incremental per-event repairs (the one-time
      convergence stays inside the timer, so the ratio is end-to-end
      honest).

    Both sides produce bit-identical per-event bills (pinned by
    ``tests/test_dynamics_incremental.py``).  Event counts shrink with n
    to bound the replay side's wall clock -- the oracle pays a full
    reconvergence plus a full-state diff per event -- and the ``events``
    param records them.
    """
    from repro.core.landmarks import select_landmarks
    from repro.core.nddisco import NDDiscoRouting
    from repro.dynamics import (
        ChurnEngine,
        events_from_workload,
        generate_churn_workload,
        maintenance_cost,
    )
    from repro.dynamics.churn import apply_event

    seed = 3
    sizes = [1024] if quick else [2**p for p in range(10, 16)]
    for n in sizes:
        num_events = 4 if quick else (8 if n <= 4096 else (4 if n <= 16384 else 2))
        topology = gnm_random_graph(n, seed=seed, average_degree=8.0)
        landmarks = select_landmarks(n, seed=seed)
        workload = generate_churn_workload(
            topology, num_events=num_events, seed=seed + 17
        )
        events = events_from_workload(workload.events)

        def before(topology=topology, landmarks=landmarks, workload=workload) -> None:
            current = topology
            state = NDDiscoRouting(current, seed=seed, landmarks=landmarks)
            for event in workload.events:
                current = apply_event(current, event)
                next_state = NDDiscoRouting(
                    current, seed=seed, landmarks=landmarks
                )
                maintenance_cost(state, next_state)
                state = next_state

        def after(topology=topology, landmarks=landmarks, events=events) -> None:
            engine = ChurnEngine(topology, seed=seed, landmarks=landmarks)
            engine.run(events)

        _entry(
            f"churn_scaling/gnm-{n}-events-{num_events}",
            {
                "family": "gnm",
                "n": n,
                "events": num_events,
                "landmarks": len(landmarks),
                "comparison": "per-event full reconvergence + state diff "
                "(replay oracle) vs event-driven incremental engine "
                "(including its one-time convergence), one size per entry",
            },
            before,
            after,
            repeats=1 if n >= 8192 else 2,
            results=results,
        )


def _measurement_batch_case(
    results: dict[str, dict], *, quick: bool, repeats: int
) -> None:
    """Batched stretch measurement vs the historical per-pair loop.

    The workload is the stretch half of a ``StaticSimulation.run``: three
    converged schemes (Disco, ND-Disco, S4 on one shared substrate)
    measured over the same sampled pairs.

    * **before** -- ``measure_stretch(batch=False)`` per scheme: every pair
      routed one at a time through the scheme objects, each scheme
      recomputing its own shortest-distance table (exactly what
      ``StaticSimulation.run`` did before the batched engine);
    * **after** -- one shared distance table plus the batched measurement
      engine (:mod:`repro.metrics.batch`), sharing SPT path extractions,
      relay state, and group-contact rows across each batch.

    Both sides produce byte-identical reports (pinned by
    ``tests/test_metrics_batch.py``), so the ratio is a pure performance
    number.
    """
    from repro.graphs.shortest_paths import all_pairs_sampled_distances
    from repro.metrics.stretch import measure_stretch

    n = 256 if quick else 768
    pair_count = 150 if quick else 500
    topology = gnm_random_graph(n, seed=3, average_degree=8.0)
    simulation = StaticSimulation(topology, ("disco", "nd-disco", "s4"), seed=1)
    schemes = list(simulation.schemes.values())
    pairs = sample_pairs(topology, pair_count, seed=11)
    measured = [(s, t) for s, t in pairs if s != t]

    def before() -> None:
        for scheme in schemes:
            measure_stretch(scheme, pairs=pairs, batch=False)

    def after() -> None:
        distances = all_pairs_sampled_distances(topology, measured)
        for scheme in schemes:
            measure_stretch(
                scheme, pairs=pairs, distances=distances, batch=True
            )

    _entry(
        f"measurement_batch/gnm-{n}",
        {
            "family": "gnm",
            "n": n,
            "pairs": len(measured),
            "protocols": ["disco", "nd-disco", "s4"],
            "comparison": "per-pair stretch loop vs batched measurement "
            "engine (shared distance table)",
        },
        before,
        after,
        repeats=repeats,
        results=results,
    )


def _measurement_scaling_case(results: dict[str, dict], *, quick: bool) -> None:
    """Measurement-layer n-curve: per-pair stretch loop vs batched engine.

    The ``measurement_batch`` entry pins the batched engine at one size;
    this family extends it to an n-curve (n = 2^10 .. 2^15 in full mode)
    so a complexity regression *above* the kernels -- per-pair distance
    recomputation creeping back in, batch sharing lost -- shows up as a
    bend in the curve rather than noise at a single point.  Same workload
    shape as ``measurement_batch`` -- three converged schemes per size
    (built outside the timers; both sides measure the same objects):

    * **before** -- ``measure_stretch(batch=False)`` per scheme: every
      sampled pair routed one at a time, the shared shortest-distance
      table recomputed per scheme;
    * **after** -- one shared sampled-distance table plus the batched
      measurement engine for all three schemes.

    Both sides produce byte-identical reports (pinned by
    ``tests/test_metrics_batch.py``).  Pair counts shrink with n to bound
    the per-pair side's wall clock; the ``pairs`` param records them.
    """
    from repro.graphs.shortest_paths import all_pairs_sampled_distances
    from repro.metrics.stretch import measure_stretch

    protocols = ("disco", "nd-disco", "s4")
    sizes = [1024, 4096] if quick else [2**p for p in range(10, 16)]
    for n in sizes:
        topology = gnm_random_graph(n, seed=3, average_degree=8.0)
        simulation = StaticSimulation(topology, protocols, seed=1)
        schemes = list(simulation.schemes.values())
        pair_count = 192 if n <= 8192 else 96
        pairs = sample_pairs(topology, pair_count, seed=11)
        measured = [(s, t) for s, t in pairs if s != t]

        def before(schemes=schemes, pairs=pairs) -> None:
            for scheme in schemes:
                measure_stretch(scheme, pairs=pairs, batch=False)

        def after(
            topology=topology, schemes=schemes, pairs=pairs, measured=measured
        ) -> None:
            distances = all_pairs_sampled_distances(topology, measured)
            for scheme in schemes:
                measure_stretch(
                    scheme, pairs=pairs, distances=distances, batch=True
                )

        _entry(
            f"measurement_scaling/gnm-{n}",
            {
                "family": "gnm",
                "n": n,
                "pairs": len(measured),
                "protocols": list(protocols),
                "comparison": "per-pair stretch loop vs batched measurement "
                "engine (shared distance table), one size per entry",
            },
            before,
            after,
            repeats=1 if n >= 16384 else (2 if quick else 3),
            results=results,
        )


def _resolution_scaling_case(results: dict[str, dict], *, quick: bool) -> None:
    """Resolution-placement n-curve: full-scan oracle vs the service ring.

    The workload is replica-set placement for every one of n flat names
    on the landmark shard set Disco would use at that scale
    (``select_landmarks``, so the shard count grows ~sqrt(n)), with 4
    virtual nodes per shard and r=2:

    * **before** -- :func:`repro.resolution.service.naive_successors` per
      name: recompute and sort every ring point, walk clockwise -- the
      brute-force oracle the differential suite pins the service against;
    * **after** -- one immutable :class:`VNodeRing` build plus a bisect
      ``successors`` call per name (the build is inside the timer, so the
      entry is the end-to-end cost of serving the batch from scratch).

    Both sides produce identical replica sets (pinned by
    ``tests/test_resolution_service.py``).  Lookup counts shrink with n
    to bound the quadratic oracle's wall clock; the ``lookups`` param
    records them.  Name hashes are precomputed outside the timers --
    both sides consume the same keys.
    """
    from repro.core.landmarks import select_landmarks
    from repro.naming import name_for_node
    from repro.resolution.service import VNodeRing, naive_successors

    virtual_nodes = 4
    replicas = 2
    sizes = [1024, 4096] if quick else [2**p for p in range(10, 16)]
    for n in sizes:
        shards = sorted(select_landmarks(n, seed=3))
        lookups = 2048 if n <= 8192 else (1024 if n == 16384 else 512)
        keys = [name_for_node(node).hash_value for node in range(lookups)]

        def before(shards=shards, keys=keys) -> None:
            for key in keys:
                naive_successors(
                    shards, key, replicas, virtual_nodes=virtual_nodes
                )

        def after(shards=shards, keys=keys) -> None:
            ring = VNodeRing(shards, virtual_nodes=virtual_nodes)
            for key in keys:
                ring.successors(key, replicas)

        _entry(
            f"resolution_scaling/gnm-{n}",
            {
                "family": "gnm",
                "n": n,
                "shards": len(shards),
                "virtual_nodes": virtual_nodes,
                "replicas": replicas,
                "lookups": lookups,
                "comparison": "per-lookup full-scan placement oracle vs "
                "one VNodeRing build + bisect successors per lookup",
            },
            before,
            after,
            repeats=1 if n >= 16384 else (2 if quick else 3),
            results=results,
        )


def _churn_case(results: dict[str, dict], *, quick: bool, repeats: int) -> None:
    """Event-driven churn maintenance vs the per-event replay oracle.

    The workload is the churn-cost scenario's core loop at Fig. 8 scale:
    a connectivity-preserving edge-churn stream on the comparison G(n,m)
    topology, with a per-event maintenance bill for each event:

    * **before** -- the replay oracle: rebuild a fully reconverged
      :class:`NDDiscoRouting` after every event and diff the two states
      (:func:`~repro.dynamics.maintenance.maintenance_cost`), exactly what
      the seed-era serial scenario did;
    * **after** -- the event-driven :class:`~repro.dynamics.engine.ChurnEngine`:
      converge once, then repair landmark SPT rows, vicinities, closest
      folds and addresses incrementally per event (timer includes the
      one-time convergence, so the ratio is end-to-end honest).

    Both sides produce bit-identical per-event bills (pinned by the
    differential tests in ``tests/test_dynamics_incremental.py``), so the
    ratio is a pure performance number.  Two event counts form the
    event-rate scaling curve: the replay side scales linearly with events
    while the engine amortizes its single convergence, so the speedup
    grows with the event rate.
    """
    from repro.core.landmarks import select_landmarks
    from repro.core.nddisco import NDDiscoRouting
    from repro.dynamics import (
        ChurnEngine,
        events_from_workload,
        generate_churn_workload,
        maintenance_cost,
    )
    from repro.dynamics.churn import apply_event

    n = 96 if quick else 256
    event_counts = (4, 8) if quick else (8, 32)
    seed = 3
    topology = gnm_random_graph(n, seed=seed, average_degree=8.0)
    landmarks = select_landmarks(n, seed=seed)

    for num_events in event_counts:
        workload = generate_churn_workload(
            topology, num_events=num_events, seed=seed + 17
        )
        events = events_from_workload(workload.events)

        def before(workload=workload) -> None:
            current = topology
            state = NDDiscoRouting(current, seed=seed, landmarks=landmarks)
            for event in workload.events:
                current = apply_event(current, event)
                next_state = NDDiscoRouting(
                    current, seed=seed, landmarks=landmarks
                )
                maintenance_cost(state, next_state)
                state = next_state

        def after(events=events) -> None:
            engine = ChurnEngine(topology, seed=seed, landmarks=landmarks)
            engine.run(events)

        _entry(
            f"churn/gnm-{n}-events-{num_events}",
            {
                "family": "gnm",
                "n": n,
                "events": num_events,
                "landmarks": len(landmarks),
                "comparison": "per-event full reconvergence + state diff "
                "(replay oracle) vs event-driven incremental engine "
                "(including its one-time convergence)",
            },
            before,
            after,
            repeats=repeats,
            results=results,
        )

    # -- steady-state throughput -------------------------------------------
    # Both sides start from a converged state built OUTSIDE the timer (the
    # replay oracle reuses one prebuilt NDDiscoRouting; the engine side
    # draws from a pool of prebuilt engines, one per timed call, since a
    # run mutates its engine).  What remains inside the timer is exactly
    # the sustained per-event maintenance work, so before_s/after_s are
    # the steady-state costs of absorbing the same event stream and the
    # derived events_per_s_* params are the throughput numbers the
    # engine's >= 10x acceptance is judged on.
    num_events = event_counts[-1]
    workload = generate_churn_workload(
        topology, num_events=num_events, seed=seed + 17
    )
    events = events_from_workload(workload.events)
    base_state = NDDiscoRouting(topology, seed=seed, landmarks=landmarks)
    pool = [
        ChurnEngine(topology, seed=seed, landmarks=landmarks)
        for _ in range(repeats)
    ]

    def steady_before() -> None:
        current = topology
        state = base_state
        for event in workload.events:
            current = apply_event(current, event)
            next_state = NDDiscoRouting(
                current, seed=seed, landmarks=landmarks
            )
            maintenance_cost(state, next_state)
            state = next_state

    def steady_after() -> None:
        pool.pop().run(events)

    name = f"churn/gnm-{n}-steady-{num_events}"
    _entry(
        name,
        {
            "family": "gnm",
            "n": n,
            "events": num_events,
            "landmarks": len(landmarks),
            "comparison": "sustained per-event maintenance from a prebuilt "
            "converged state: replay oracle (rebuild + diff per event) vs "
            "event-driven incremental engine",
        },
        steady_before,
        steady_after,
        repeats=repeats,
        results=results,
    )
    entry = results[name]
    entry["params"]["events_per_s_before"] = round(
        num_events / entry["before_s"], 1
    )
    entry["params"]["events_per_s_after"] = round(
        num_events / entry["after_s"], 1
    )


def _scenario_suite_case(
    results: dict[str, dict], *, quick: bool, workers: int | None, repeats: int
) -> None:
    """End-to-end scenario-engine suite: caching (and fan-out) vs cold serial.

    The workload is the quick-scale scenario subset that shares the most
    prerequisites: Figs. 2 and 3 measure the same three converged substrates
    (large-geometric, AS-level, router-level) from different angles, Fig. 7
    and the address study share the router-level NDDisco, and Fig. 10
    shares the AS-level Disco/S4:

    * **before** -- the scenario engine run serially with caching disabled,
      which performs exactly the work the pre-engine experiment layer did
      (every scenario rebuilds its own prerequisites);
    * **after** -- the same scenarios with a fresh in-memory artifact cache,
      so shared topologies and converged ``StaticSimulation`` substrates are
      built once (the ``/workers-N`` variant adds the process-pool fan-out
      on top, sharing one on-disk cache between workers).
    """
    import shutil
    import tempfile

    from repro.scenarios.cache import ArtifactCache
    from repro.scenarios.engine import run_scenarios

    ids = SUITE_IDS
    n = 96 if quick else 384
    scale = suite_scale(n, quick=quick)
    name = f"scenario_suite/quick5-{n}"
    params = {
        "scenarios": list(ids),
        "n": n,
        "comparison": "no-cache serial vs cached serial (same engine)",
    }
    _entry(
        name,
        params,
        lambda: run_scenarios(ids, scale=scale, workers=1, cache=None),
        lambda: run_scenarios(
            ids, scale=scale, workers=1, cache=ArtifactCache()
        ),
        repeats=repeats,
        results=results,
    )

    # -- warm vs cold disk cache ----------------------------------------
    # "before" = a cold run populating a fresh on-disk cache root;
    # "after" = the same suite against the populated root with a fresh
    # process-level memory cache, so every prerequisite is a disk hit and
    # every scheme shell rewires onto the shared substrate artifacts.
    # Memory for both sides (measured on separate, untimed runs so
    # tracemalloc overhead stays out of the wall-clock numbers) lands in
    # params: ``*_end_kb`` is the retained footprint with the run's cache
    # still alive -- substrate rewire-on-load is what keeps the warm
    # number at cold parity instead of one substrate copy per scheme --
    # while ``*_peak_kb`` additionally includes transient build /
    # unpickle allocations.
    def run_with_root(root: str) -> None:
        run_scenarios(ids, scale=scale, workers=1, cache=ArtifactCache(root))

    def traced_run(root: str) -> tuple[int, int]:
        return traced_suite_run(root, n=n, quick=quick)

    warm_root = tempfile.mkdtemp(prefix="repro-bench-warmcache-")
    cold_roots: list[str] = []
    try:
        cold_best = math.inf
        for _ in range(repeats):
            cold_root = tempfile.mkdtemp(prefix="repro-bench-coldcache-")
            cold_roots.append(cold_root)
            start = time.perf_counter()
            run_with_root(cold_root)
            cold_best = min(cold_best, time.perf_counter() - start)
        run_with_root(warm_root)  # populate
        warm_best = _best_of(lambda: run_with_root(warm_root), repeats)
        cold_end, cold_peak = traced_run(
            tempfile.mkdtemp(dir=cold_roots[0], prefix="traced-")
        )
        warm_end, warm_peak = traced_run(warm_root)
        results[f"scenario_suite_warm/quick5-{n}"] = {
            "params": {
                **params,
                "comparison": "cold disk cache (populating) vs warm disk "
                "cache (fresh memory cache, substrate rewire on load)",
                "cold_end_kb": round(cold_end / 1024.0, 1),
                "warm_end_kb": round(warm_end / 1024.0, 1),
                "cold_peak_kb": round(cold_peak / 1024.0, 1),
                "warm_peak_kb": round(warm_peak / 1024.0, 1),
            },
            "before_s": round(cold_best, 6),
            "after_s": round(warm_best, 6),
            "speedup": round(cold_best / warm_best, 3)
            if warm_best > 0
            else math.inf,
        }
    finally:
        shutil.rmtree(warm_root, ignore_errors=True)
        for root in cold_roots:
            shutil.rmtree(root, ignore_errors=True)

    if workers and workers > 1:

        def run_parallel_cold() -> None:
            # Fresh cache root per repeat: measures within-run dedup plus
            # the fan-out, not a warm disk cache from the previous repeat.
            cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
            try:
                run_scenarios(
                    ids, scale=scale, workers=workers, cache=cache_root
                )
            finally:
                shutil.rmtree(cache_root, ignore_errors=True)

        after_parallel = _best_of(run_parallel_cold, repeats)
        results[name + f"/workers-{workers}"] = {
            "params": {**params, "workers": workers},
            "before_s": results[name]["before_s"],
            "after_s": round(after_parallel, 6),
            "speedup": round(results[name]["before_s"] / after_parallel, 3),
        }


def write_bench_json(report: dict, path: str) -> None:
    """Write a :func:`bench_kernels` report to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
