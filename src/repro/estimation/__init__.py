"""Estimating the network size n (§4.1) and injecting estimation error (§5.2).

Disco needs each node to know (approximately) the network size n: it controls
the landmark probability, the vicinity size, and the sloppy-group prefix
length.  The paper proposes synopsis diffusion [36] -- "extremely lightweight,
unstructured gossiping of small synopses with neighbors" that "produces
robust, accurate estimates (e.g., within 10% on average using 256-byte
synopses)".

* :mod:`repro.estimation.synopsis` implements Flajolet-Martin style synopsis
  diffusion over the topology's gossip graph.
* :mod:`repro.estimation.error_injection` produces per-node perturbed
  estimates of n for the robustness experiment ("we inject random errors of
  up to 60% in this estimation").
"""

from repro.estimation.synopsis import SynopsisDiffusion, SynopsisEstimate
from repro.estimation.error_injection import inject_estimate_error

__all__ = ["SynopsisDiffusion", "SynopsisEstimate", "inject_estimate_error"]
