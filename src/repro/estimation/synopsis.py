"""Synopsis diffusion: gossip-based estimation of the network size.

Synopsis diffusion (Nath et al., SenSys 2004) computes duplicate-insensitive
aggregates by gossiping small bitmaps.  For COUNT, each node contributes a
Flajolet-Martin synopsis: it hashes its identity into one of the synopsis's
bit positions with geometrically decreasing probability, and synopses combine
by bitwise OR -- so a synopsis is insensitive to how many times or along which
paths a contribution arrives, exactly what unstructured gossip needs.  The
count estimate is ``2**z / 0.77351`` where ``z`` is the index of the lowest
unset bit, and averaging many independent synopses tightens the estimate
(256 bytes of synopses ≈ within ~10 % on average, per the paper).

:class:`SynopsisDiffusion` runs the gossip rounds over an arbitrary topology
and returns per-node estimates, so experiments can feed *realistic* (rather
than synthetically perturbed) estimates of n into the sloppy grouping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.topology import Topology
from repro.utils.randomness import make_rng
from repro.utils.validation import require_positive

__all__ = ["SynopsisEstimate", "SynopsisDiffusion"]

_FM_CORRECTION = 0.77351
_SYNOPSIS_BITS = 32


@dataclass(frozen=True)
class SynopsisEstimate:
    """The outcome of a synopsis-diffusion run.

    Attributes
    ----------
    estimates:
        Per-node estimate of n (indexed by node id).
    rounds:
        Gossip rounds executed.
    num_synopses:
        Number of independent synopses averaged per node.
    """

    estimates: list[float]
    rounds: int
    num_synopses: int

    def mean_relative_error(self, true_n: int) -> float:
        """Mean |estimate - n| / n across nodes."""
        require_positive("true_n", true_n)
        return sum(abs(e - true_n) / true_n for e in self.estimates) / len(
            self.estimates
        )

    def max_relative_error(self, true_n: int) -> float:
        """Maximum |estimate - n| / n across nodes."""
        require_positive("true_n", true_n)
        return max(abs(e - true_n) / true_n for e in self.estimates)


class SynopsisDiffusion:
    """Gossip-based COUNT estimation over a topology.

    Parameters
    ----------
    topology:
        The gossip graph (the physical network).
    num_synopses:
        Independent Flajolet-Martin synopses per node.  64 synopses of 32
        bits each are 256 bytes, the size the paper quotes.
    seed:
        RNG seed for the per-node bit draws.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        num_synopses: int = 64,
        seed: int = 0,
    ) -> None:
        require_positive("num_synopses", num_synopses)
        self._topology = topology
        self._num_synopses = num_synopses
        self._seed = seed

    def _initial_synopses(self) -> list[list[int]]:
        """Each node's own contribution: one geometric bit per synopsis."""
        synopses = []
        for node in self._topology.nodes():
            rng = make_rng(self._seed, f"synopsis/{node}")
            node_bits = []
            for _ in range(self._num_synopses):
                # Geometric level: bit i set with probability 2^-(i+1).
                level = 0
                while rng.random() < 0.5 and level < _SYNOPSIS_BITS - 1:
                    level += 1
                node_bits.append(1 << level)
            synopses.append(node_bits)
        return synopses

    @staticmethod
    def _estimate_from(synopses: list[int]) -> float:
        """Average the Flajolet-Martin estimates of many synopses."""
        total_z = 0.0
        for bitmap in synopses:
            z = 0
            while bitmap & (1 << z):
                z += 1
            total_z += z
        mean_z = total_z / len(synopses)
        return (2.0**mean_z) / _FM_CORRECTION

    def run(self, *, rounds: int | None = None) -> SynopsisEstimate:
        """Run gossip for ``rounds`` rounds (default: the graph's diameter bound).

        In each round every node ORs its synopses with all of its neighbors'
        synopses from the previous round (flooding semantics; synopsis
        diffusion is insensitive to duplicates, so this is exact).  After
        ``rounds`` at least equal to the hop diameter, every node has the
        global synopsis.
        """
        n = self._topology.num_nodes
        if n == 0:
            raise ValueError("cannot estimate the size of an empty topology")
        if rounds is None:
            # Hop diameter is at most n - 1; use a generous but finite default
            # based on a BFS eccentricity from node 0.
            rounds = self._hop_eccentricity(0) + 2
        require_positive("rounds", rounds)
        current = self._initial_synopses()
        for _ in range(rounds):
            updated = [list(row) for row in current]
            for node in self._topology.nodes():
                for neighbor in self._topology.neighbors(node):
                    neighbor_row = current[neighbor]
                    row = updated[node]
                    for index in range(self._num_synopses):
                        row[index] |= neighbor_row[index]
            current = updated
        estimates = [self._estimate_from(row) for row in current]
        return SynopsisEstimate(
            estimates=estimates, rounds=rounds, num_synopses=self._num_synopses
        )

    def _hop_eccentricity(self, start: int) -> int:
        """Hop-count eccentricity of ``start`` (BFS depth)."""
        seen = {start}
        frontier = [start]
        depth = 0
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in self._topology.neighbors(node):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            if not next_frontier:
                break
            frontier = next_frontier
            depth += 1
        return depth

    @staticmethod
    def estimate_is_within_factor_two(estimate: float, true_n: int) -> bool:
        """The w.h.p. guarantee the sloppy grouping relies on (§4.4)."""
        require_positive("true_n", true_n)
        return 0.5 * true_n <= estimate <= 2.0 * true_n

    @staticmethod
    def synopsis_bytes(num_synopses: int) -> int:
        """Size in bytes of a node's gossip payload."""
        require_positive("num_synopses", num_synopses)
        return num_synopses * _SYNOPSIS_BITS // 8

    def __repr__(self) -> str:
        return (
            f"SynopsisDiffusion(n={self._topology.num_nodes}, "
            f"synopses={self._num_synopses}, "
            f"bytes={self.synopsis_bytes(self._num_synopses)})"
        )
