"""Synthetic error injection for the estimate of n (§5.2).

"The previous results assume all nodes know the value of n.  Here, we inject
random errors of up to 60% in this estimation."  Each node's estimate is
perturbed independently and uniformly within ±``max_error`` of the true
value; the perturbed per-node estimates are then fed to the sloppy grouping,
which derives each node's prefix length k from its own estimate.
"""

from __future__ import annotations

from repro.utils.randomness import make_rng
from repro.utils.validation import require_in_range, require_positive

__all__ = ["inject_estimate_error"]


def inject_estimate_error(
    true_n: int,
    *,
    max_error: float,
    num_nodes: int | None = None,
    seed: int = 0,
) -> dict[int, float]:
    """Return per-node estimates of n with uniform relative error.

    Parameters
    ----------
    true_n:
        The actual network size.
    max_error:
        Maximum relative error, e.g. ``0.6`` for the paper's 60 % case.  Each
        node's estimate is drawn uniformly from
        ``[(1 - max_error) * n, (1 + max_error) * n]`` and clamped to be at
        least 2.
    num_nodes:
        How many nodes to produce estimates for (defaults to ``true_n``).
    seed:
        RNG seed; each node's draw is independent and reproducible.

    Returns
    -------
    dict[int, float]
        Mapping node id -> perturbed estimate.
    """
    require_positive("true_n", true_n)
    require_in_range("max_error", max_error, 0.0, 1.0)
    count = num_nodes if num_nodes is not None else true_n
    require_positive("num_nodes", count)
    estimates: dict[int, float] = {}
    for node in range(count):
        rng = make_rng(seed, f"estimate-error/{node}")
        factor = 1.0 + max_error * (2.0 * rng.random() - 1.0)
        estimates[node] = max(2.0, true_n * factor)
    return estimates
